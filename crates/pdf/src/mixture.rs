//! Convex combinations of component densities.
//!
//! Mixtures model multi-modal uncertainty (e.g. an object that is near one
//! of several plausible locations) and close the model family under the
//! existential-uncertainty extension mentioned in §I-A.

use rand::Rng;
use serde::{Deserialize, Serialize};
use udb_geometry::{Point, Rect};

use crate::math::search_cumulative;
use crate::Pdf;

/// A normalized convex combination of component PDFs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixturePdf {
    components: Vec<(f64, Pdf)>,
    cumulative: Vec<f64>,
    support: Rect,
}

impl MixturePdf {
    /// Builds a mixture from `(weight, component)` pairs; weights are
    /// normalized.
    ///
    /// # Panics
    /// Panics if `components` is empty, weights are negative or all zero,
    /// or components disagree on dimensionality.
    pub fn new(components: Vec<(f64, Pdf)>) -> Self {
        assert!(
            !components.is_empty(),
            "mixture needs at least one component"
        );
        assert!(
            components.iter().all(|(w, _)| w.is_finite() && *w >= 0.0),
            "weights must be non-negative and finite"
        );
        let d = components[0].1.dims();
        assert!(
            components.iter().all(|(_, p)| p.dims() == d),
            "components must share dimensionality"
        );
        let total: f64 = components.iter().map(|(w, _)| w).sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let components: Vec<(f64, Pdf)> = components
            .into_iter()
            .map(|(w, p)| (w / total, p))
            .collect();
        let mut cumulative = Vec::with_capacity(components.len());
        let mut acc = 0.0;
        for (w, _) in &components {
            acc += w;
            cumulative.push(acc);
        }
        let support = Rect::union_all(components.iter().map(|(_, p)| p.support()));
        MixturePdf {
            components,
            cumulative,
            support,
        }
    }

    /// The components with their normalized weights.
    pub fn components(&self) -> &[(f64, Pdf)] {
        &self.components
    }

    /// Union of component supports.
    pub fn support(&self) -> &Rect {
        &self.support
    }

    /// `P(X ∈ region)` — weighted sum over components.
    pub fn mass_in(&self, region: &Rect) -> f64 {
        self.components
            .iter()
            .map(|(w, p)| w * p.mass_in(region))
            .sum()
    }

    /// `P(X ∈ region ∧ X_axis < x)`.
    pub fn mass_below(&self, region: &Rect, axis: usize, x: f64) -> f64 {
        self.components
            .iter()
            .map(|(w, p)| w * p.mass_below(region, axis, x))
            .sum()
    }

    /// Samples a component by weight, then from the component.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let u: f64 = rng.gen();
        let c = search_cumulative(&self.cumulative, u);
        self.components[c].1.sample(rng)
    }

    /// Weighted mean of component means.
    pub fn mean(&self) -> Point {
        let d = self.support.dims();
        let mut acc = vec![0.0f64; d];
        for (w, p) in &self.components {
            let m = p.mean();
            for (a, &c) in acc.iter_mut().zip(m.coords()) {
                *a += w * c;
            }
        }
        Point::new(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use udb_geometry::Interval;

    fn bimodal() -> MixturePdf {
        let left = Pdf::uniform(Rect::new(vec![
            Interval::new(0.0, 1.0),
            Interval::new(0.0, 1.0),
        ]));
        let right = Pdf::uniform(Rect::new(vec![
            Interval::new(3.0, 4.0),
            Interval::new(0.0, 1.0),
        ]));
        MixturePdf::new(vec![(1.0, left), (3.0, right)])
    }

    #[test]
    fn support_covers_all_components() {
        let m = bimodal();
        assert_eq!(m.support().lo(), Point::from([0.0, 0.0]));
        assert_eq!(m.support().hi(), Point::from([4.0, 1.0]));
    }

    #[test]
    fn mass_weights_components() {
        let m = bimodal();
        let left = Rect::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)]);
        let right = Rect::new(vec![Interval::new(3.0, 4.0), Interval::new(0.0, 1.0)]);
        assert!((m.mass_in(&left) - 0.25).abs() < 1e-12);
        assert!((m.mass_in(&right) - 0.75).abs() < 1e-12);
        // the gap between the modes carries no mass
        let gap = Rect::new(vec![Interval::new(1.5, 2.5), Interval::new(0.0, 1.0)]);
        assert_eq!(m.mass_in(&gap), 0.0);
    }

    #[test]
    fn total_mass_is_one() {
        let m = bimodal();
        assert!((m.mass_in(m.support()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mass_below_spans_components() {
        let m = bimodal();
        let s = m.support().clone();
        assert!((m.mass_below(&s, 0, 2.0) - 0.25).abs() < 1e-12);
        assert!((m.mass_below(&s, 0, 3.5) - 0.25 - 0.375).abs() < 1e-12);
    }

    #[test]
    fn median_lands_in_heavier_mode() {
        let m: Pdf = bimodal().into();
        let s = m.support().clone();
        let x = m.split_coordinate(&s, 0);
        // 25% of mass is left of x=1; the median must sit inside the right
        // mode [3, 4]
        assert!(x > 3.0 && x < 4.0, "median {x}");
    }

    #[test]
    fn sampling_matches_mode_weights() {
        let m = bimodal();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let right = (0..n).filter(|_| m.sample(&mut rng)[0] > 2.0).count() as f64 / n as f64;
        assert!((right - 0.75).abs() < 0.02, "right fraction {right}");
    }

    #[test]
    fn mean_is_weighted_mean() {
        let m = bimodal();
        // 0.25 * 0.5 + 0.75 * 3.5
        assert!((m.mean()[0] - 2.75).abs() < 1e-12);
        assert!((m.mean()[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_mixture_rejected() {
        let _ = MixturePdf::new(vec![]);
    }

    #[test]
    fn nested_mixture() {
        let inner: Pdf = bimodal().into();
        let outer = MixturePdf::new(vec![
            (1.0, inner),
            (
                1.0,
                Pdf::uniform(Rect::new(vec![
                    Interval::new(10.0, 11.0),
                    Interval::new(0.0, 1.0),
                ])),
            ),
        ]);
        let far = Rect::new(vec![Interval::new(10.0, 11.0), Interval::new(0.0, 1.0)]);
        assert!((outer.mass_in(&far) - 0.5).abs() < 1e-12);
    }
}
