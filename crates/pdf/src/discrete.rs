//! Discrete densities: finite weighted alternatives.
//!
//! "In many applications, a discrete uncertainty model is appropriate,
//! meaning that the probability distribution of an uncertain object is
//! given by a finite number of alternatives assigned with probabilities.
//! This can be seen as a special case of our model." (§I-A). The
//! Monte-Carlo comparison baseline of §VII also runs entirely on this
//! model.

use rand::Rng;
use serde::{Deserialize, Serialize};
use udb_geometry::{Point, Rect};

use crate::math::search_cumulative;

/// A finite set of weighted point alternatives (weights normalized to one).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiscretePdf {
    points: Vec<Point>,
    weights: Vec<f64>,
    cumulative: Vec<f64>,
    support: Rect,
}

impl DiscretePdf {
    /// Builds a discrete density; weights are normalized.
    ///
    /// # Panics
    /// Panics if `points` is empty, lengths mismatch, weights are negative
    /// or all zero, or dimensionalities differ.
    pub fn new(points: Vec<Point>, weights: Vec<f64>) -> Self {
        assert!(
            !points.is_empty(),
            "discrete pdf needs at least one alternative"
        );
        assert_eq!(
            points.len(),
            weights.len(),
            "points/weights length mismatch"
        );
        let d = points[0].dims();
        assert!(
            points.iter().all(|p| p.dims() == d),
            "all alternatives must share dimensionality"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative and finite"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let weights: Vec<f64> = weights.into_iter().map(|w| w / total).collect();
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        let support = bbox(&points);
        DiscretePdf {
            points,
            weights,
            cumulative,
            support,
        }
    }

    /// Discrete density with uniform weights (the shape produced by
    /// Monte-Carlo discretization).
    pub fn equally_weighted(points: Vec<Point>) -> Self {
        let n = points.len();
        DiscretePdf::new(points, vec![1.0; n])
    }

    /// Number of alternatives.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether there are no alternatives (never true for a constructed
    /// value; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over `(point, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Point, f64)> {
        self.points.iter().zip(self.weights.iter().copied())
    }

    /// The alternatives.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The normalized weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Minimal bounding box of the alternatives.
    pub fn support(&self) -> &Rect {
        &self.support
    }

    /// `P(X ∈ region)` — sum of weights of contained alternatives.
    pub fn mass_in(&self, region: &Rect) -> f64 {
        self.iter()
            .filter(|(p, _)| region.contains(p))
            .map(|(_, w)| w)
            .sum()
    }

    /// `P(X ∈ region ∧ X_axis < x)` — strict, so a split coordinate that
    /// coincides with an alternative assigns that alternative entirely to
    /// the upper side.
    pub fn mass_below(&self, region: &Rect, axis: usize, x: f64) -> f64 {
        self.iter()
            .filter(|(p, _)| region.contains(p) && p[axis] < x)
            .map(|(_, w)| w)
            .sum()
    }

    /// Categorical sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let u: f64 = rng.gen();
        self.points[search_cumulative(&self.cumulative, u)].clone()
    }

    /// Weighted mean.
    pub fn mean(&self) -> Point {
        let d = self.points[0].dims();
        let mut acc = vec![0.0f64; d];
        for (p, w) in self.iter() {
            for (a, &c) in acc.iter_mut().zip(p.coords()) {
                *a += w * c;
            }
        }
        Point::new(acc)
    }

    /// Weighted-median split coordinate inside `region` along `axis`:
    /// picks the smallest alternative coordinate `x` such that the strict
    /// below-mass reaches half of the region's mass, which balances the
    /// two halves as well as a single cut can.
    pub fn split_coordinate(&self, region: &Rect, axis: usize) -> f64 {
        let mut inside: Vec<(f64, f64)> = self
            .iter()
            .filter(|(p, _)| region.contains(p))
            .map(|(p, w)| (p[axis], w))
            .collect();
        if inside.is_empty() {
            return region.dim(axis).center();
        }
        inside.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN coordinate"));
        let total: f64 = inside.iter().map(|(_, w)| w).sum();
        let half = 0.5 * total;
        // candidate cuts are the distinct coordinates; a cut at `c` puts
        // every alternative with coordinate < c strictly below — pick the
        // cut whose below-mass is closest to half the total
        let mut best = (inside[0].0, half); // (cut, |below − half|); below = 0 initially
        let mut acc = 0.0;
        let mut i = 0;
        while i < inside.len() {
            let coord = inside[i].0;
            let err = (acc - half).abs();
            if err < best.1 {
                best = (coord, err);
            }
            // accumulate all alternatives sharing this coordinate
            while i < inside.len() && inside[i].0 == coord {
                acc += inside[i].1;
                i += 1;
            }
        }
        best.0
    }

    /// Tight bounding box of alternatives inside `region`, or `None` if the
    /// region contains none.
    pub fn tighten(&self, region: &Rect) -> Option<Rect> {
        let contained: Vec<&Point> = self.points.iter().filter(|p| region.contains(p)).collect();
        if contained.is_empty() {
            return None;
        }
        Some(bbox_refs(&contained))
    }
}

fn bbox(points: &[Point]) -> Rect {
    let refs: Vec<&Point> = points.iter().collect();
    bbox_refs(&refs)
}

fn bbox_refs(points: &[&Point]) -> Rect {
    let d = points[0].dims();
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for p in points {
        for i in 0..d {
            lo[i] = lo[i].min(p[i]);
            hi[i] = hi[i].max(p[i]);
        }
    }
    Rect::from_corners(&Point::new(lo), &Point::new(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use udb_geometry::Interval;

    fn three_points() -> DiscretePdf {
        DiscretePdf::new(
            vec![
                Point::from([0.0, 0.0]),
                Point::from([1.0, 0.0]),
                Point::from([0.0, 2.0]),
            ],
            vec![1.0, 2.0, 1.0],
        )
    }

    #[test]
    fn weights_are_normalized() {
        let d = three_points();
        let w = d.weights();
        assert!((w[0] - 0.25).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
        assert!((w[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn support_is_bbox() {
        let d = three_points();
        assert_eq!(d.support().lo(), Point::from([0.0, 0.0]));
        assert_eq!(d.support().hi(), Point::from([1.0, 2.0]));
    }

    #[test]
    fn mass_in_counts_contained() {
        let d = three_points();
        let left = Rect::new(vec![Interval::new(-0.5, 0.5), Interval::new(-0.5, 2.5)]);
        assert!((d.mass_in(&left) - 0.5).abs() < 1e-12);
        assert!((d.mass_in(d.support()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mass_below_is_strict() {
        let d = three_points();
        let all = d.support().clone();
        // two alternatives have x == 0.0; strict comparison excludes them
        assert_eq!(d.mass_below(&all, 0, 0.0), 0.0);
        assert!((d.mass_below(&all, 0, 0.5) - 0.5).abs() < 1e-12);
        assert!((d.mass_below(&all, 0, 1.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn split_coordinate_balances_mass() {
        let d = three_points();
        let all = d.support().clone();
        let x = d.split_coordinate(&all, 0);
        // cutting at x = 1.0 puts mass 0.5 strictly below and 0.5 at/above
        assert_eq!(x, 1.0);
        assert!((d.mass_below(&all, 0, x) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn split_coordinate_empty_region_falls_back() {
        let d = three_points();
        let empty = Rect::new(vec![Interval::new(5.0, 6.0), Interval::new(5.0, 6.0)]);
        assert!((d.split_coordinate(&empty, 0) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn tighten_shrinks_to_contained_points() {
        let d = three_points();
        let left = Rect::new(vec![Interval::new(-0.5, 0.5), Interval::new(-0.5, 2.5)]);
        let t = d.tighten(&left).unwrap();
        assert_eq!(t.lo(), Point::from([0.0, 0.0]));
        assert_eq!(t.hi(), Point::from([0.0, 2.0]));
        let nothing = Rect::new(vec![Interval::new(5.0, 6.0), Interval::new(5.0, 6.0)]);
        assert!(d.tighten(&nothing).is_none());
    }

    #[test]
    fn sampling_matches_weights() {
        let d = three_points();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mut hit1 = 0usize;
        for _ in 0..n {
            if d.sample(&mut rng) == Point::from([1.0, 0.0]) {
                hit1 += 1;
            }
        }
        let f = hit1 as f64 / n as f64;
        assert!((f - 0.5).abs() < 0.02, "fraction {f}");
    }

    #[test]
    fn mean_is_weighted() {
        let d = three_points();
        let m = d.mean();
        assert!((m[0] - 0.5).abs() < 1e-12);
        assert!((m[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_point_is_certain() {
        let d = DiscretePdf::equally_weighted(vec![Point::from([3.0, 4.0])]);
        assert_eq!(d.len(), 1);
        assert!(d.support().is_point());
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng), Point::from([3.0, 4.0]));
    }

    #[test]
    #[should_panic(expected = "at least one alternative")]
    fn empty_rejected() {
        let _ = DiscretePdf::new(vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_weights_rejected() {
        let _ = DiscretePdf::new(vec![Point::from([0.0])], vec![1.0, 2.0]);
    }
}
