//! Uniform density over a rectangular uncertainty region.
//!
//! This is the model of the paper's synthetic workload: "10,000 objects
//! modeled as 2D rectangles" with extents drawn uniformly — the density
//! inside each rectangle is uniform.

use rand::Rng;
use serde::{Deserialize, Serialize};
use udb_geometry::{Point, Rect};

/// Uniform density over a support rectangle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UniformPdf {
    support: Rect,
    /// Cached `1 / volume`; `None` for degenerate (zero-volume) supports,
    /// in which case the mass concentrates uniformly on the degenerate box.
    inv_volume: Option<f64>,
}

impl UniformPdf {
    /// Uniform density over `support`. Degenerate boxes (zero extent in
    /// some dimension) are allowed and treated as lower-dimensional uniform
    /// distributions (a point box is a certain object).
    pub fn new(support: Rect) -> Self {
        let vol = support.volume();
        UniformPdf {
            support,
            inv_volume: (vol > 0.0).then(|| 1.0 / vol),
        }
    }

    /// The support rectangle.
    pub fn support(&self) -> &Rect {
        &self.support
    }

    /// Fraction of the support contained in `region`, handling degenerate
    /// dimensions (where containment of the single coordinate decides).
    fn fraction(&self, region: &Rect) -> f64 {
        let Some(clip) = self.support.intersection(region) else {
            return 0.0;
        };
        let mut frac = 1.0;
        for i in 0..self.support.dims() {
            let s = self.support.dim(i);
            let c = clip.dim(i);
            if s.is_degenerate() {
                // the full mass of this dimension sits at s.lo(); the clip
                // already guarantees it is contained
                continue;
            }
            frac *= c.len() / s.len();
        }
        frac
    }

    /// `P(X ∈ region)`.
    pub fn mass_in(&self, region: &Rect) -> f64 {
        self.fraction(region)
    }

    /// `P(X ∈ region ∧ X_axis < x)`; the open boundary is mass-free for a
    /// continuous density, so the closed computation applies.
    pub fn mass_below(&self, region: &Rect, axis: usize, x: f64) -> f64 {
        let iv = region.dim(axis);
        if x <= iv.lo() {
            return 0.0;
        }
        let clipped_hi = x.min(iv.hi());
        let mut dims = region.intervals().to_vec();
        dims[axis] = udb_geometry::Interval::new(iv.lo(), clipped_hi);
        self.mass_in(&Rect::new(dims))
    }

    /// Uniform sample from the support.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        Point::new(
            self.support
                .intervals()
                .iter()
                .map(|iv| {
                    if iv.is_degenerate() {
                        iv.lo()
                    } else {
                        rng.gen_range(iv.lo()..=iv.hi())
                    }
                })
                .collect::<Vec<_>>(),
        )
    }

    /// Conditional median of `X_axis` given `X ∈ region` — exact for the
    /// uniform model: the marginal along `axis` is uniform over the
    /// region clipped to the support, so the median is the clip's
    /// midpoint. This is the O(1) answer the generic bisection of
    /// `Pdf::split_coordinate` converges to in 60 `mass_below`
    /// evaluations. Returns `None` when the region carries no mass or is
    /// degenerate along `axis`, letting the caller fall back to its
    /// generic handling.
    pub fn split_coordinate(&self, region: &Rect, axis: usize) -> Option<f64> {
        let clip = self.support.intersection(region)?;
        let iv = clip.dim(axis);
        (!iv.is_degenerate()).then(|| iv.center())
    }

    /// The center of the support.
    pub fn mean(&self) -> Point {
        self.support.center()
    }

    /// Whether the support has zero volume.
    pub fn is_degenerate(&self) -> bool {
        self.inv_volume.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use udb_geometry::Interval;

    fn unit_square() -> Rect {
        Rect::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)])
    }

    #[test]
    fn full_mass_on_support() {
        let p = UniformPdf::new(unit_square());
        assert!((p.mass_in(&unit_square()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quarter_mass_on_quadrant() {
        let p = UniformPdf::new(unit_square());
        let q = Rect::new(vec![Interval::new(0.0, 0.5), Interval::new(0.0, 0.5)]);
        assert!((p.mass_in(&q) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_mass_outside() {
        let p = UniformPdf::new(unit_square());
        let out = Rect::new(vec![Interval::new(2.0, 3.0), Interval::new(2.0, 3.0)]);
        assert_eq!(p.mass_in(&out), 0.0);
    }

    #[test]
    fn mass_below_is_cdf_along_axis() {
        let p = UniformPdf::new(unit_square());
        assert!((p.mass_below(&unit_square(), 0, 0.25) - 0.25).abs() < 1e-12);
        assert_eq!(p.mass_below(&unit_square(), 0, 0.0), 0.0);
        assert!((p.mass_below(&unit_square(), 0, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_support_is_certain_point() {
        let pt = Rect::from_point(&Point::from([0.3, 0.7]));
        let p = UniformPdf::new(pt);
        assert!(p.is_degenerate());
        assert!((p.mass_in(&unit_square()) - 1.0).abs() < 1e-12);
        let missing = Rect::new(vec![Interval::new(0.4, 1.0), Interval::new(0.0, 1.0)]);
        assert_eq!(p.mass_in(&missing), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.sample(&mut rng), Point::from([0.3, 0.7]));
    }

    #[test]
    fn partially_degenerate_support() {
        // a vertical segment: certain x, uncertain y
        let seg = Rect::new(vec![Interval::point(0.5), Interval::new(0.0, 1.0)]);
        let p = UniformPdf::new(seg);
        let lower_half = Rect::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 0.5)]);
        assert!((p.mass_in(&lower_half) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn samples_inside_support() {
        let p = UniformPdf::new(unit_square());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            assert!(unit_square().contains(&p.sample(&mut rng)));
        }
    }

    #[test]
    fn mean_is_center() {
        let p = UniformPdf::new(unit_square());
        assert_eq!(p.mean(), Point::from([0.5, 0.5]));
    }

    proptest! {
        #[test]
        fn prop_mass_additive_under_split(split in 0.001..0.999f64) {
            let p = UniformPdf::new(unit_square());
            let below = p.mass_below(&unit_square(), 0, split);
            let upper = Rect::new(vec![Interval::new(split, 1.0), Interval::new(0.0, 1.0)]);
            prop_assert!((below + p.mass_in(&upper) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn prop_mass_monotone_in_region(a in 0.0..0.5f64, b in 0.5..1.0f64) {
            let p = UniformPdf::new(unit_square());
            let small = Rect::new(vec![Interval::new(a, b), Interval::new(a, b)]);
            let big = Rect::new(vec![Interval::new(a / 2.0, (b + 1.0) / 2.0), Interval::new(a / 2.0, (b + 1.0) / 2.0)]);
            prop_assert!(p.mass_in(&small) <= p.mass_in(&big) + 1e-12);
        }
    }
}
