//! Numerical helpers: error function, standard-normal CDF/PDF and
//! Box–Muller sampling.
//!
//! Implemented in-house so the workspace only depends on the approved
//! `rand` crate (no `rand_distr`, no `libm`).

use rand::Rng;

/// Error function, absolute error below `1.5e-7` (Abramowitz & Stegun
/// 7.1.26). Monotonicity — which the bisection-based median search relies
/// on — is preserved by the approximation.
pub fn erf(x: f64) -> f64 {
    // constants of the A&S rational approximation
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal CDF `Φ(x)`.
#[inline]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal density `φ(x)`.
#[inline]
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse of [`normal_cdf`]: the `x` with `normal_cdf(x) = p`.
///
/// Acklam's rational approximation of the probit function seeds a few
/// Newton steps **against this crate's own `normal_cdf`**, so the result
/// inverts the same (A&S-approximated) CDF every mass/median computation
/// in this workspace uses — not the mathematically exact `Φ⁻¹`. That is
/// deliberate: the exact O(1) split-coordinate paths must agree with the
/// generic `mass_below` bisection to float precision, and the bisection
/// inverts the approximated CDF.
///
/// `p` outside `(0, 1)` clamps to the nearest representable quantile.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    // quantiles beyond ~±8.2σ are indistinguishable from the clamp under
    // the A&S approximation's absolute error
    const P_MIN: f64 = 1e-16;
    let p = p.clamp(P_MIN, 1.0 - P_MIN);

    // Acklam's approximation (relative error < 1.15e-9 vs the exact
    // probit): central rational fit, matched tail fits
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let mut x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // Newton against our normal_cdf: converges onto the root the 60-step
    // bisection would find (the derivative of the approximated CDF is
    // within ~1e-5 of normal_pdf, so three steps reach float precision)
    for _ in 0..3 {
        let density = normal_pdf(x);
        if density <= f64::MIN_POSITIVE {
            break; // extreme tail: flat CDF, Newton step undefined
        }
        x -= (normal_cdf(x) - p) / density;
    }
    x
}

/// Density of a bivariate normal with correlation `rho` at standardized
/// coordinates `(zx, zy)`.
pub fn bivariate_normal_pdf(zx: f64, zy: f64, rho: f64) -> f64 {
    debug_assert!(rho.abs() < 1.0, "correlation must be in (-1, 1)");
    let omr2 = 1.0 - rho * rho;
    let q = (zx * zx - 2.0 * rho * zx * zy + zy * zy) / omr2;
    (-0.5 * q).exp() / (2.0 * std::f64::consts::PI * omr2.sqrt())
}

/// One standard-normal draw via the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log never sees zero
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Binary search in a cumulative-weight table: returns the smallest index
/// `i` with `cumulative[i] >= u`. The table must be non-decreasing and end
/// at (approximately) the total weight.
pub fn search_cumulative(cumulative: &[f64], u: f64) -> usize {
    debug_assert!(!cumulative.is_empty());
    match cumulative.binary_search_by(|c| c.partial_cmp(&u).expect("NaN in cumulative table")) {
        Ok(i) => i,
        Err(i) => i.min(cumulative.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_known_values() {
        // reference values from tables
        assert!((erf(0.0)).abs() < 1e-12);
        assert!((erf(1.0) - 0.8427007929).abs() < 2e-7);
        assert!((erf(2.0) - 0.9953222650).abs() < 2e-7);
        assert!((erf(-1.0) + 0.8427007929).abs() < 2e-7);
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in 0..100 {
            let x = i as f64 * 0.1;
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
            assert!(erf(x) <= 1.0 && erf(x) >= -1.0);
        }
    }

    #[test]
    fn erf_is_monotone() {
        let mut prev = erf(-6.0);
        for i in -599..600 {
            let cur = erf(i as f64 / 100.0);
            assert!(cur >= prev - 1e-12, "erf not monotone at {}", i);
            prev = cur;
        }
    }

    #[test]
    fn normal_cdf_properties() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!(normal_cdf(-8.0) < 1e-6);
        assert!(normal_cdf(8.0) > 1.0 - 1e-6);
    }

    #[test]
    fn inverse_normal_cdf_inverts_normal_cdf() {
        // round trip over the practically relevant quantile range
        for i in 1..999 {
            let p = i as f64 / 1000.0;
            let x = inverse_normal_cdf(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-12,
                "p={p}: cdf(inv)={}",
                normal_cdf(x)
            );
        }
        // tails still round-trip to the approximation's precision
        for p in [1e-10, 1e-6, 1.0 - 1e-6] {
            let x = inverse_normal_cdf(p);
            assert!((normal_cdf(x) - p).abs() < 1e-9, "p={p}");
        }
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-12);
        // out-of-range inputs clamp instead of returning NaN
        assert!(inverse_normal_cdf(0.0).is_finite());
        assert!(inverse_normal_cdf(1.0).is_finite());
        assert!(inverse_normal_cdf(0.0) < -8.0);
        assert!(inverse_normal_cdf(1.0) > 8.0);
    }

    #[test]
    fn inverse_normal_cdf_is_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..2000 {
            let x = inverse_normal_cdf(i as f64 / 2000.0);
            assert!(x >= prev - 1e-12, "not monotone at {i}");
            prev = x;
        }
    }

    #[test]
    fn normal_pdf_peak() {
        assert!((normal_pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!(normal_pdf(1.0) < normal_pdf(0.0));
    }

    #[test]
    fn bivariate_reduces_to_product_when_uncorrelated() {
        let (zx, zy) = (0.3, -1.2);
        let joint = bivariate_normal_pdf(zx, zy, 0.0);
        assert!((joint - normal_pdf(zx) * normal_pdf(zy)).abs() < 1e-12);
    }

    #[test]
    fn bivariate_correlation_raises_diagonal_density() {
        // positively correlated mass concentrates along zx == zy
        assert!(bivariate_normal_pdf(1.0, 1.0, 0.8) > bivariate_normal_pdf(1.0, 1.0, 0.0));
        assert!(bivariate_normal_pdf(1.0, -1.0, 0.8) < bivariate_normal_pdf(1.0, -1.0, 0.0));
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn cumulative_search() {
        let table = [0.1, 0.3, 0.6, 1.0];
        assert_eq!(search_cumulative(&table, 0.0), 0);
        assert_eq!(search_cumulative(&table, 0.1), 0);
        assert_eq!(search_cumulative(&table, 0.1001), 1);
        assert_eq!(search_cumulative(&table, 0.95), 3);
        assert_eq!(search_cumulative(&table, 1.0), 3);
        // u beyond the table clamps to the last index
        assert_eq!(search_cumulative(&table, 1.5), 3);
    }
}
