//! Numerical helpers: error function, standard-normal CDF/PDF and
//! Box–Muller sampling.
//!
//! Implemented in-house so the workspace only depends on the approved
//! `rand` crate (no `rand_distr`, no `libm`).

use rand::Rng;

/// Error function, absolute error below `1.5e-7` (Abramowitz & Stegun
/// 7.1.26). Monotonicity — which the bisection-based median search relies
/// on — is preserved by the approximation.
pub fn erf(x: f64) -> f64 {
    // constants of the A&S rational approximation
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal CDF `Φ(x)`.
#[inline]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal density `φ(x)`.
#[inline]
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Density of a bivariate normal with correlation `rho` at standardized
/// coordinates `(zx, zy)`.
pub fn bivariate_normal_pdf(zx: f64, zy: f64, rho: f64) -> f64 {
    debug_assert!(rho.abs() < 1.0, "correlation must be in (-1, 1)");
    let omr2 = 1.0 - rho * rho;
    let q = (zx * zx - 2.0 * rho * zx * zy + zy * zy) / omr2;
    (-0.5 * q).exp() / (2.0 * std::f64::consts::PI * omr2.sqrt())
}

/// One standard-normal draw via the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log never sees zero
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Binary search in a cumulative-weight table: returns the smallest index
/// `i` with `cumulative[i] >= u`. The table must be non-decreasing and end
/// at (approximately) the total weight.
pub fn search_cumulative(cumulative: &[f64], u: f64) -> usize {
    debug_assert!(!cumulative.is_empty());
    match cumulative.binary_search_by(|c| c.partial_cmp(&u).expect("NaN in cumulative table")) {
        Ok(i) => i,
        Err(i) => i.min(cumulative.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_known_values() {
        // reference values from tables
        assert!((erf(0.0)).abs() < 1e-12);
        assert!((erf(1.0) - 0.8427007929).abs() < 2e-7);
        assert!((erf(2.0) - 0.9953222650).abs() < 2e-7);
        assert!((erf(-1.0) + 0.8427007929).abs() < 2e-7);
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in 0..100 {
            let x = i as f64 * 0.1;
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
            assert!(erf(x) <= 1.0 && erf(x) >= -1.0);
        }
    }

    #[test]
    fn erf_is_monotone() {
        let mut prev = erf(-6.0);
        for i in -599..600 {
            let cur = erf(i as f64 / 100.0);
            assert!(cur >= prev - 1e-12, "erf not monotone at {}", i);
            prev = cur;
        }
    }

    #[test]
    fn normal_cdf_properties() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!(normal_cdf(-8.0) < 1e-6);
        assert!(normal_cdf(8.0) > 1.0 - 1e-6);
    }

    #[test]
    fn normal_pdf_peak() {
        assert!((normal_pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!(normal_pdf(1.0) < normal_pdf(0.0));
    }

    #[test]
    fn bivariate_reduces_to_product_when_uncorrelated() {
        let (zx, zy) = (0.3, -1.2);
        let joint = bivariate_normal_pdf(zx, zy, 0.0);
        assert!((joint - normal_pdf(zx) * normal_pdf(zy)).abs() < 1e-12);
    }

    #[test]
    fn bivariate_correlation_raises_diagonal_density() {
        // positively correlated mass concentrates along zx == zy
        assert!(bivariate_normal_pdf(1.0, 1.0, 0.8) > bivariate_normal_pdf(1.0, 1.0, 0.0));
        assert!(bivariate_normal_pdf(1.0, -1.0, 0.8) < bivariate_normal_pdf(1.0, -1.0, 0.0));
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn cumulative_search() {
        let table = [0.1, 0.3, 0.6, 1.0];
        assert_eq!(search_cumulative(&table, 0.0), 0);
        assert_eq!(search_cumulative(&table, 0.1), 0);
        assert_eq!(search_cumulative(&table, 0.1001), 1);
        assert_eq!(search_cumulative(&table, 0.95), 3);
        assert_eq!(search_cumulative(&table, 1.0), 3);
        // u beyond the table clamps to the last index
        assert_eq!(search_cumulative(&table, 1.5), 3);
    }
}
