//! Piecewise-constant grid densities.
//!
//! The paper's uncertainty model explicitly allows *mutually dependent*
//! attributes: "the object PDF can have any arbitrary form, and in general,
//! cannot simply be derived from the marginal distribution of the uncertain
//! attributes". A histogram over a regular grid represents any such
//! correlated density up to the grid resolution and keeps the mass /
//! median primitives exact with respect to the represented model.

use rand::Rng;
use serde::{Deserialize, Serialize};
use udb_geometry::{Interval, Point, Rect};

use crate::math::{bivariate_normal_pdf, search_cumulative};

/// A normalized piecewise-constant density on a regular grid over a
/// rectangular support.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramPdf {
    support: Rect,
    /// Cells per dimension.
    resolution: Box<[usize]>,
    /// Normalized cell weights in row-major order (last dimension varies
    /// fastest).
    weights: Box<[f64]>,
    /// Cumulative weights for sampling.
    cumulative: Box<[f64]>,
}

impl HistogramPdf {
    /// Builds a histogram from raw (non-negative) cell weights, normalizing
    /// them to sum to one.
    ///
    /// # Panics
    /// Panics if the weight count does not match the grid, if any weight is
    /// negative / non-finite, or if all weights are zero.
    pub fn new(support: Rect, resolution: Vec<usize>, weights: Vec<f64>) -> Self {
        assert_eq!(
            support.dims(),
            resolution.len(),
            "resolution dimensionality mismatch"
        );
        assert!(
            resolution.iter().all(|&r| r > 0),
            "resolution must be positive"
        );
        let cells: usize = resolution.iter().product();
        assert_eq!(weights.len(), cells, "weight count must match the grid");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative and finite"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let weights: Vec<f64> = weights.into_iter().map(|w| w / total).collect();
        let mut cumulative = Vec::with_capacity(cells);
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        HistogramPdf {
            support,
            resolution: resolution.into(),
            weights: weights.into(),
            cumulative: cumulative.into(),
        }
    }

    /// Rasterizes a density function `f` (up to proportionality) by
    /// midpoint evaluation on a `resolution` grid.
    pub fn from_fn(
        support: Rect,
        resolution: Vec<usize>,
        mut f: impl FnMut(&Point) -> f64,
    ) -> Self {
        let cells: usize = resolution.iter().product();
        let mut weights = Vec::with_capacity(cells);
        let tmp = HistogramGrid::new(&support, &resolution);
        for c in 0..cells {
            let mid = tmp.cell_rect(c).center();
            let w = f(&mid);
            assert!(w.is_finite() && w >= 0.0, "density must be non-negative");
            weights.push(w * tmp.cell_rect(c).volume().max(f64::MIN_POSITIVE));
        }
        HistogramPdf::new(support, resolution, weights)
    }

    /// A correlated bivariate Gaussian (correlation `rho`), truncated to
    /// `support` and rasterized on a `res × res` grid. This is the
    /// workspace's representation of non-axis-aligned (dependent) attribute
    /// uncertainty.
    pub fn from_correlated_gaussian(
        mean: Point,
        std: [f64; 2],
        rho: f64,
        support: Rect,
        res: usize,
    ) -> Self {
        assert_eq!(mean.dims(), 2, "correlated Gaussian helper is 2-D");
        assert_eq!(support.dims(), 2);
        assert!(std[0] > 0.0 && std[1] > 0.0);
        assert!(rho.abs() < 1.0, "correlation must be in (-1, 1)");
        HistogramPdf::from_fn(support.clone(), vec![res, res], |p| {
            let zx = (p[0] - mean[0]) / std[0];
            let zy = (p[1] - mean[1]) / std[1];
            bivariate_normal_pdf(zx, zy, rho)
        })
    }

    /// The support rectangle.
    pub fn support(&self) -> &Rect {
        &self.support
    }

    /// Cells per dimension.
    pub fn resolution(&self) -> &[usize] {
        &self.resolution
    }

    /// Normalized cell weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    fn grid(&self) -> HistogramGrid<'_> {
        HistogramGrid::new(&self.support, &self.resolution)
    }

    /// `P(X ∈ region)`: accumulates, per cell, `weight × overlapFraction`.
    pub fn mass_in(&self, region: &Rect) -> f64 {
        let Some(clip) = self.support.intersection(region) else {
            return 0.0;
        };
        let grid = self.grid();
        let mut total = 0.0;
        for (c, &w) in self.weights.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let cell = grid.cell_rect(c);
            if let Some(ov) = cell.intersection(&clip) {
                let cv = cell.volume();
                let frac = if cv > 0.0 {
                    ov.volume() / cv
                } else {
                    // degenerate cell: all-or-nothing on containment
                    1.0
                };
                total += w * frac;
            }
        }
        total
    }

    /// `P(X ∈ region ∧ X_axis < x)`.
    pub fn mass_below(&self, region: &Rect, axis: usize, x: f64) -> f64 {
        let iv = region.dim(axis);
        if x <= iv.lo() {
            return 0.0;
        }
        let mut dims = region.intervals().to_vec();
        dims[axis] = Interval::new(iv.lo(), x.min(iv.hi()));
        self.mass_in(&Rect::new(dims))
    }

    /// Conditional median of `X_axis` given `X ∈ region` — exact for the
    /// piecewise-constant model via a single bin scan: clipped cell
    /// masses accumulate into the grid's slices along `axis`, the slice
    /// where the cumulative mass crosses half the total is located, and
    /// the crossing coordinate is interpolated linearly inside it (the
    /// density is constant per cell, so the conditional mass-below
    /// function is exactly linear across a slice's clipped span — the
    /// interpolation is the exact median, the same value the 60-step
    /// `mass_below` bisection of `Pdf::split_coordinate` converges to).
    ///
    /// Returns `None` when the region carries (numerically) no mass or
    /// is degenerate along `axis` after clipping, letting the caller
    /// fall back to its generic handling.
    pub fn split_coordinate(&self, region: &Rect, axis: usize) -> Option<f64> {
        let clip = self.support.intersection(region)?;
        if clip.dim(axis).is_degenerate() {
            return None;
        }
        let grid = self.grid();
        let res_axis = self.resolution[axis];
        // row-major, last dimension fastest: cells of axis-slice `k` are
        // exactly those with (c / stride) % res_axis == k
        let stride: usize = self.resolution[axis + 1..].iter().product();
        let mut slice_mass = vec![0.0f64; res_axis];
        let mut total = 0.0f64;
        // zero-volume cells (the support is degenerate along some other
        // dimension — per-dimension grid geometry makes this uniform
        // across cells) follow mass_in's all-or-nothing convention: a
        // cell's whole weight appears the moment the probe touches it,
        // so mass-below is a *step* at each slice's span start rather
        // than a linear ramp across it
        let mut stepped = false;
        for (c, &w) in self.weights.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let cell = grid.cell_rect(c);
            if let Some(ov) = cell.intersection(&clip) {
                let cv = cell.volume();
                let frac = if cv > 0.0 {
                    ov.volume() / cv
                } else {
                    // degenerate cell: all-or-nothing on containment
                    stepped = true;
                    1.0
                };
                slice_mass[(c / stride) % res_axis] += w * frac;
                total += w * frac;
            }
        }
        if total <= crate::MASS_EPSILON {
            return None;
        }
        let target = 0.5 * total;
        let clip_iv = clip.dim(axis);
        let mut cum = 0.0f64;
        let mut last_x = clip_iv.lo();
        for (k, &mass) in slice_mass.iter().enumerate() {
            if mass <= 0.0 {
                continue;
            }
            // the slice's clipped span: where its mass actually lives
            let slice_iv = grid.dim_interval(axis, k);
            let span_lo = slice_iv.lo().max(clip_iv.lo());
            let span_hi = slice_iv.hi().min(clip_iv.hi());
            if cum + mass >= target {
                let span_len = span_hi - span_lo;
                let x = if stepped || span_len <= 0.0 {
                    // step semantics: the whole slice mass lands at the
                    // first coordinate touching it
                    span_lo
                } else {
                    span_lo + (target - cum) / mass * span_len
                };
                return Some(x.clamp(clip_iv.lo(), clip_iv.hi()));
            }
            cum += mass;
            last_x = if stepped { span_lo } else { span_hi };
        }
        // float shortfall: the cumulative never quite reached half the
        // re-summed total; the median is where the last mass appeared
        Some(last_x)
    }

    /// Samples a cell by weight, then uniformly within the cell.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let u: f64 = rng.gen();
        let c = search_cumulative(&self.cumulative, u);
        let cell = self.grid().cell_rect(c);
        Point::new(
            cell.intervals()
                .iter()
                .map(|iv| {
                    if iv.is_degenerate() {
                        iv.lo()
                    } else {
                        rng.gen_range(iv.lo()..=iv.hi())
                    }
                })
                .collect::<Vec<_>>(),
        )
    }

    /// Weighted mean of the cell centers.
    pub fn mean(&self) -> Point {
        let d = self.support.dims();
        let grid = self.grid();
        let mut acc = vec![0.0f64; d];
        for (c, &w) in self.weights.iter().enumerate() {
            let center = grid.cell_rect(c).center();
            for (a, &v) in acc.iter_mut().zip(center.coords()) {
                *a += w * v;
            }
        }
        Point::new(acc)
    }
}

/// Cell-indexing helper shared by construction and queries.
struct HistogramGrid<'a> {
    support: &'a Rect,
    resolution: &'a [usize],
}

impl<'a> HistogramGrid<'a> {
    fn new(support: &'a Rect, resolution: &'a [usize]) -> Self {
        HistogramGrid {
            support,
            resolution,
        }
    }

    /// The interval of grid slice `idx` along dimension `i`.
    fn dim_interval(&self, i: usize, idx: usize) -> Interval {
        let iv = self.support.dim(i);
        let step = iv.len() / self.resolution[i] as f64;
        let lo = iv.lo() + idx as f64 * step;
        let hi = if idx + 1 == self.resolution[i] {
            iv.hi() // avoid floating-point shortfall on the last cell
        } else {
            lo + step
        };
        Interval::new(lo, hi.max(lo))
    }

    /// The rectangle of the cell with flat index `c` (row-major, last
    /// dimension fastest).
    fn cell_rect(&self, mut c: usize) -> Rect {
        let d = self.resolution.len();
        let mut idx = vec![0usize; d];
        for i in (0..d).rev() {
            idx[i] = c % self.resolution[i];
            c /= self.resolution[i];
        }
        Rect::new(
            (0..d)
                .map(|i| self.dim_interval(i, idx[i]))
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unit_square() -> Rect {
        Rect::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)])
    }

    #[test]
    fn uniform_histogram_behaves_uniform() {
        let h = HistogramPdf::new(unit_square(), vec![4, 4], vec![1.0; 16]);
        assert!((h.mass_in(&unit_square()) - 1.0).abs() < 1e-12);
        let q = Rect::new(vec![Interval::new(0.0, 0.5), Interval::new(0.0, 0.5)]);
        assert!((h.mass_in(&q) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn partial_cell_overlap_is_fractional() {
        let h = HistogramPdf::new(unit_square(), vec![2, 2], vec![1.0; 4]);
        // region covering the left 30% of the box
        let r = Rect::new(vec![Interval::new(0.0, 0.3), Interval::new(0.0, 1.0)]);
        assert!((h.mass_in(&r) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn skewed_weights() {
        // all mass in the top-right cell of a 2x2 grid
        let h = HistogramPdf::new(unit_square(), vec![2, 2], vec![0.0, 0.0, 0.0, 1.0]);
        let tr = Rect::new(vec![Interval::new(0.5, 1.0), Interval::new(0.5, 1.0)]);
        assert!((h.mass_in(&tr) - 1.0).abs() < 1e-12);
        let bl = Rect::new(vec![Interval::new(0.0, 0.5), Interval::new(0.0, 0.5)]);
        assert_eq!(h.mass_in(&bl), 0.0);
        // mean sits at the top-right cell center
        assert_eq!(h.mean(), Point::from([0.75, 0.75]));
    }

    #[test]
    fn row_major_order_last_dim_fastest() {
        // resolution [2, 2]: index 1 must be cell (x=0, y=1)
        let h = HistogramPdf::new(unit_square(), vec![2, 2], vec![0.0, 1.0, 0.0, 0.0]);
        let cell_x0_y1 = Rect::new(vec![Interval::new(0.0, 0.5), Interval::new(0.5, 1.0)]);
        assert!((h.mass_in(&cell_x0_y1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlated_gaussian_concentrates_on_diagonal() {
        let sup = Rect::new(vec![Interval::new(-3.0, 3.0), Interval::new(-3.0, 3.0)]);
        let h = HistogramPdf::from_correlated_gaussian(
            Point::from([0.0, 0.0]),
            [1.0, 1.0],
            0.9,
            sup,
            32,
        );
        let on_diag = Rect::new(vec![Interval::new(0.5, 1.5), Interval::new(0.5, 1.5)]);
        let off_diag = Rect::new(vec![Interval::new(0.5, 1.5), Interval::new(-1.5, -0.5)]);
        assert!(h.mass_in(&on_diag) > 4.0 * h.mass_in(&off_diag));
    }

    #[test]
    fn correlated_gaussian_marginal_unaffected_by_rho_sign() {
        let sup = Rect::new(vec![Interval::new(-3.0, 3.0), Interval::new(-3.0, 3.0)]);
        let slab = Rect::new(vec![Interval::new(-3.0, 0.0), Interval::new(-3.0, 3.0)]);
        let pos = HistogramPdf::from_correlated_gaussian(
            Point::from([0.0, 0.0]),
            [1.0, 1.0],
            0.7,
            sup.clone(),
            32,
        );
        let neg = HistogramPdf::from_correlated_gaussian(
            Point::from([0.0, 0.0]),
            [1.0, 1.0],
            -0.7,
            sup,
            32,
        );
        assert!((pos.mass_in(&slab) - neg.mass_in(&slab)).abs() < 1e-9);
        assert!((pos.mass_in(&slab) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sampling_respects_weights() {
        let h = HistogramPdf::new(unit_square(), vec![2, 1], vec![3.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 10_000;
        let left = (0..n).filter(|_| h.sample(&mut rng)[0] < 0.5).count() as f64 / n as f64;
        assert!((left - 0.75).abs() < 0.02, "left fraction {left}");
    }

    #[test]
    fn mass_below_is_consistent() {
        let h = HistogramPdf::new(unit_square(), vec![4, 4], vec![1.0; 16]);
        let below = h.mass_below(&unit_square(), 1, 0.37);
        assert!((below - 0.37).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "weight count")]
    fn wrong_weight_count_rejected() {
        let _ = HistogramPdf::new(unit_square(), vec![2, 2], vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn all_zero_weights_rejected() {
        let _ = HistogramPdf::new(unit_square(), vec![2, 2], vec![0.0; 4]);
    }

    #[test]
    fn from_fn_uniform_density() {
        let h = HistogramPdf::from_fn(unit_square(), vec![8, 8], |_| 1.0);
        let q = Rect::new(vec![Interval::new(0.25, 0.75), Interval::new(0.25, 0.75)]);
        assert!((h.mass_in(&q) - 0.25).abs() < 1e-9);
    }
}
