//! Truncated axis-independent Gaussian density.
//!
//! The paper's iceberg workload attaches Gaussian positional noise to each
//! sighting and — following the convention the paper cites from related
//! work — truncates the tails to a bounded uncertainty region and
//! renormalizes. Dimensions are independent here; correlated Gaussians are
//! represented through [`crate::HistogramPdf::from_correlated_gaussian`].

use rand::Rng;
use serde::{Deserialize, Serialize};
use udb_geometry::{Point, Rect};

use crate::math::{inverse_normal_cdf, normal_cdf, normal_pdf, sample_standard_normal};

/// A Gaussian with diagonal covariance, truncated to a rectangular support
/// and renormalized.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianPdf {
    mean: Point,
    std: Box<[f64]>,
    support: Rect,
    /// Per-dimension normalization `Φ(β_i) − Φ(α_i)` over the support.
    dim_mass: Box<[f64]>,
}

impl GaussianPdf {
    /// Creates a truncated Gaussian.
    ///
    /// # Panics
    /// Panics on dimension mismatches, non-positive standard deviations or
    /// a support that carries (numerically) no Gaussian mass.
    pub fn new(mean: Point, std: Vec<f64>, support: Rect) -> Self {
        assert_eq!(mean.dims(), std.len(), "mean/std dimensionality mismatch");
        assert_eq!(
            mean.dims(),
            support.dims(),
            "mean/support dimensionality mismatch"
        );
        assert!(
            std.iter().all(|&s| s > 0.0),
            "standard deviations must be positive"
        );
        let dim_mass: Vec<f64> = (0..mean.dims())
            .map(|i| {
                let iv = support.dim(i);
                let a = (iv.lo() - mean[i]) / std[i];
                let b = (iv.hi() - mean[i]) / std[i];
                normal_cdf(b) - normal_cdf(a)
            })
            .collect();
        assert!(
            dim_mass.iter().all(|&m| m > 1e-12),
            "support carries no Gaussian mass in some dimension"
        );
        GaussianPdf {
            mean,
            std: std.into(),
            support,
            dim_mass: dim_mass.into(),
        }
    }

    /// Convenience constructor: common `sigma` for every dimension.
    pub fn isotropic(mean: Point, sigma: f64, support: Rect) -> Self {
        let d = mean.dims();
        GaussianPdf::new(mean, vec![sigma; d], support)
    }

    /// A Gaussian truncated at `k` standard deviations around the mean.
    pub fn truncated_at_sigmas(mean: Point, std: Vec<f64>, k: f64) -> Self {
        assert!(k > 0.0);
        let half: Vec<f64> = std.iter().map(|s| k * s).collect();
        let support = Rect::centered(&mean, &half);
        GaussianPdf::new(mean, std, support)
    }

    /// The support rectangle.
    pub fn support(&self) -> &Rect {
        &self.support
    }

    /// The (pre-truncation) mean.
    pub fn raw_mean(&self) -> &Point {
        &self.mean
    }

    /// Per-dimension standard deviations.
    pub fn std(&self) -> &[f64] {
        &self.std
    }

    /// Mass of `[lo, hi]` in dimension `i` under the *truncated* marginal.
    fn dim_mass_between(&self, i: usize, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        let a = (lo - self.mean[i]) / self.std[i];
        let b = (hi - self.mean[i]) / self.std[i];
        ((normal_cdf(b) - normal_cdf(a)) / self.dim_mass[i]).clamp(0.0, 1.0)
    }

    /// `P(X ∈ region)`.
    pub fn mass_in(&self, region: &Rect) -> f64 {
        let Some(clip) = self.support.intersection(region) else {
            return 0.0;
        };
        (0..self.mean.dims())
            .map(|i| self.dim_mass_between(i, clip.dim(i).lo(), clip.dim(i).hi()))
            .product()
    }

    /// `P(X ∈ region ∧ X_axis < x)` (boundary is mass-free).
    pub fn mass_below(&self, region: &Rect, axis: usize, x: f64) -> f64 {
        let iv = region.dim(axis);
        if x <= iv.lo() {
            return 0.0;
        }
        let mut dims = region.intervals().to_vec();
        dims[axis] = udb_geometry::Interval::new(iv.lo(), x.min(iv.hi()));
        self.mass_in(&Rect::new(dims))
    }

    /// Rejection-samples the truncated Gaussian (the support typically
    /// covers ≥ 95 % of the mass so a handful of retries suffice); falls
    /// back to per-dimension clamping after a bounded number of attempts to
    /// keep the sampler total.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        const MAX_ATTEMPTS: usize = 256;
        for _ in 0..MAX_ATTEMPTS {
            let coords: Vec<f64> = (0..self.mean.dims())
                .map(|i| self.mean[i] + self.std[i] * sample_standard_normal(rng))
                .collect();
            let p = Point::new(coords);
            if self.support.contains(&p) {
                return p;
            }
        }
        // pathological truncation: clamp into the support
        let coords: Vec<f64> = (0..self.mean.dims())
            .map(|i| {
                let iv = self.support.dim(i);
                (self.mean[i] + self.std[i] * sample_standard_normal(rng)).clamp(iv.lo(), iv.hi())
            })
            .collect();
        Point::new(coords)
    }

    /// Conditional median of `X_axis` given `X ∈ region` — exact for the
    /// truncated Gaussian via the inverse CDF: dimensions are
    /// independent, so the conditional marginal along `axis` is the
    /// Gaussian restricted to the clipped interval `[a, b]` and its
    /// median is `μ + σ·Φ⁻¹((Φ(α) + Φ(β)) / 2)`. This is the O(1) answer
    /// the generic bisection of `Pdf::split_coordinate` converges to in
    /// 60 `mass_below` evaluations ([`inverse_normal_cdf`] deliberately
    /// inverts the same approximated `Φ` the bisection evaluates).
    ///
    /// Returns `None` when the region carries (numerically) no mass or
    /// is degenerate along `axis` after clipping, letting the caller
    /// fall back to its generic handling.
    pub fn split_coordinate(&self, region: &Rect, axis: usize) -> Option<f64> {
        let clip = self.support.intersection(region)?;
        if self.mass_in(region) <= crate::MASS_EPSILON {
            return None;
        }
        let iv = clip.dim(axis);
        if iv.is_degenerate() {
            return None;
        }
        let (m, s) = (self.mean[axis], self.std[axis]);
        let alpha = normal_cdf((iv.lo() - m) / s);
        let beta = normal_cdf((iv.hi() - m) / s);
        if beta - alpha <= crate::MASS_EPSILON {
            return None; // axis marginal numerically flat: bisect instead
        }
        let x = m + s * inverse_normal_cdf(0.5 * (alpha + beta));
        Some(x.clamp(iv.lo(), iv.hi()))
    }

    /// Mean of the *truncated* distribution (per-dimension closed form
    /// `μ + σ·(φ(α) − φ(β)) / (Φ(β) − Φ(α))`).
    pub fn mean(&self) -> Point {
        Point::new(
            (0..self.mean.dims())
                .map(|i| {
                    let iv = self.support.dim(i);
                    let a = (iv.lo() - self.mean[i]) / self.std[i];
                    let b = (iv.hi() - self.mean[i]) / self.std[i];
                    self.mean[i] + self.std[i] * (normal_pdf(a) - normal_pdf(b)) / self.dim_mass[i]
                })
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use udb_geometry::Interval;

    fn sym() -> GaussianPdf {
        GaussianPdf::truncated_at_sigmas(Point::from([0.0, 0.0]), vec![1.0, 1.0], 3.0)
    }

    #[test]
    fn support_is_three_sigma_box() {
        let g = sym();
        assert_eq!(g.support().lo(), Point::from([-3.0, -3.0]));
        assert_eq!(g.support().hi(), Point::from([3.0, 3.0]));
    }

    #[test]
    fn full_support_mass_is_one() {
        let g = sym();
        let m = g.mass_in(g.support());
        assert!((m - 1.0).abs() < 1e-9, "m={m}");
    }

    #[test]
    fn symmetric_half_mass() {
        let g = sym();
        let left = Rect::new(vec![Interval::new(-3.0, 0.0), Interval::new(-3.0, 3.0)]);
        assert!((g.mass_in(&left) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn central_box_mass_matches_tables() {
        let g = sym();
        // [-1, 1] of a 3-sigma-truncated standard normal:
        // (Φ(1) − Φ(−1)) / (Φ(3) − Φ(−3)) ≈ 0.6827 / 0.9973 ≈ 0.6845
        let c = Rect::new(vec![Interval::new(-1.0, 1.0), Interval::new(-3.0, 3.0)]);
        assert!((g.mass_in(&c) - 0.6845).abs() < 1e-3);
    }

    #[test]
    fn mass_outside_support_is_zero() {
        let g = sym();
        let out = Rect::new(vec![Interval::new(4.0, 5.0), Interval::new(0.0, 1.0)]);
        assert_eq!(g.mass_in(&out), 0.0);
    }

    #[test]
    fn mass_below_matches_mass_in_of_slab() {
        let g = sym();
        let region = g.support().clone();
        let below = g.mass_below(&region, 0, 0.7);
        let slab = Rect::new(vec![Interval::new(-3.0, 0.7), Interval::new(-3.0, 3.0)]);
        assert!((below - g.mass_in(&slab)).abs() < 1e-12);
    }

    #[test]
    fn samples_in_support_and_centered() {
        let g = sym();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 5_000;
        let mut mean = [0.0f64; 2];
        for _ in 0..n {
            let p = g.sample(&mut rng);
            assert!(g.support().contains(&p));
            mean[0] += p[0];
            mean[1] += p[1];
        }
        assert!((mean[0] / n as f64).abs() < 0.05);
        assert!((mean[1] / n as f64).abs() < 0.05);
    }

    #[test]
    fn truncated_mean_shifts_toward_support() {
        // support cut asymmetrically: [−1σ, 3σ] pulls the mean right
        let g = GaussianPdf::new(
            Point::from([0.0]),
            vec![1.0],
            Rect::new(vec![Interval::new(-1.0, 3.0)]),
        );
        assert!(g.mean()[0] > 0.05);
    }

    #[test]
    fn symmetric_truncation_keeps_mean() {
        let g = sym();
        let m = g.mean();
        assert!(m[0].abs() < 1e-9 && m[1].abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_sigma_rejected() {
        let _ = GaussianPdf::new(
            Point::from([0.0]),
            vec![0.0],
            Rect::new(vec![Interval::new(-1.0, 1.0)]),
        );
    }

    #[test]
    #[should_panic(expected = "no Gaussian mass")]
    fn empty_support_rejected() {
        // support 40 sigmas away from the mean
        let _ = GaussianPdf::new(
            Point::from([0.0]),
            vec![1.0],
            Rect::new(vec![Interval::new(40.0, 41.0)]),
        );
    }

    #[test]
    fn anisotropic_mass_factorizes() {
        let g = GaussianPdf::new(
            Point::from([0.0, 0.0]),
            vec![1.0, 2.0],
            Rect::new(vec![Interval::new(-3.0, 3.0), Interval::new(-6.0, 6.0)]),
        );
        let region = Rect::new(vec![Interval::new(-1.0, 1.0), Interval::new(-6.0, 6.0)]);
        let gx = GaussianPdf::new(
            Point::from([0.0]),
            vec![1.0],
            Rect::new(vec![Interval::new(-3.0, 3.0)]),
        );
        let rx = Rect::new(vec![Interval::new(-1.0, 1.0)]);
        assert!((g.mass_in(&region) - gx.mass_in(&rx)).abs() < 1e-12);
    }
}
