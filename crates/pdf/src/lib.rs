//! Probability density models for uncertain objects.
//!
//! The paper's uncertainty model (Definition 1) attaches to every object a
//! multi-dimensional PDF `f_i` that is zero outside a bounded rectangular
//! uncertainty region and integrates to one inside it. Attributes may be
//! *mutually dependent*, so the object PDF cannot in general be factored
//! into marginals; the discrete model (finite alternatives with
//! probabilities) is a special case.
//!
//! This crate provides the [`Pdf`] enum with the model family used across
//! the workspace:
//!
//! * [`UniformPdf`] — uniform density over the uncertainty region (the
//!   synthetic workload of §VII),
//! * [`GaussianPdf`] — axis-independent truncated Gaussian (the iceberg
//!   workload of §VII),
//! * [`HistogramPdf`] — piecewise-constant density on a regular grid;
//!   represents *arbitrarily correlated* attributes,
//! * [`DiscretePdf`] — finite weighted alternatives (the discrete special
//!   case; also the output of Monte-Carlo discretization),
//! * [`MixturePdf`] — convex combinations of the above.
//!
//! Every model supports the three primitives the pruning machinery needs:
//! probability mass inside an axis-aligned region ([`Pdf::mass_in`]),
//! conditional median split coordinates ([`Pdf::split_coordinate`], used by
//! the kd-tree decomposition of §V) and random sampling ([`Pdf::sample`],
//! used by the Monte-Carlo baseline).

pub mod discrete;
pub mod gaussian;
pub mod histogram;
pub mod math;
pub mod mixture;
pub mod uniform;

pub use discrete::DiscretePdf;
pub use gaussian::GaussianPdf;
pub use histogram::HistogramPdf;
pub use mixture::MixturePdf;
pub use uniform::UniformPdf;

use rand::Rng;
use serde::{Deserialize, Serialize};
use udb_geometry::{Point, Rect};

/// Probability mass below which a region is treated as mass-free by the
/// decomposition machinery.
pub const MASS_EPSILON: f64 = 1e-12;

/// A bounded multi-dimensional probability density (Definition 1 of the
/// paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Pdf {
    /// Uniform over the uncertainty region.
    Uniform(UniformPdf),
    /// Truncated axis-independent Gaussian.
    Gaussian(GaussianPdf),
    /// Piecewise-constant grid density (supports correlated attributes).
    Histogram(HistogramPdf),
    /// Finite set of weighted alternatives.
    Discrete(DiscretePdf),
    /// Convex combination of component PDFs.
    Mixture(MixturePdf),
}

impl Pdf {
    /// Uniform density over `region`.
    pub fn uniform(region: Rect) -> Self {
        Pdf::Uniform(UniformPdf::new(region))
    }

    /// The minimal bounding rectangle outside which the density is zero
    /// (the `R_i` of Definition 1).
    pub fn support(&self) -> &Rect {
        match self {
            Pdf::Uniform(p) => p.support(),
            Pdf::Gaussian(p) => p.support(),
            Pdf::Histogram(p) => p.support(),
            Pdf::Discrete(p) => p.support(),
            Pdf::Mixture(p) => p.support(),
        }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.support().dims()
    }

    /// `P(X ∈ region)` for the closed box `region` (clipped against the
    /// support). Always in `[0, 1]`.
    pub fn mass_in(&self, region: &Rect) -> f64 {
        match self {
            Pdf::Uniform(p) => p.mass_in(region),
            Pdf::Gaussian(p) => p.mass_in(region),
            Pdf::Histogram(p) => p.mass_in(region),
            Pdf::Discrete(p) => p.mass_in(region),
            Pdf::Mixture(p) => p.mass_in(region),
        }
        .clamp(0.0, 1.0)
    }

    /// `P(X ∈ region ∧ X_axis < x)` — strict in the split coordinate so
    /// that sibling partitions of a decomposition never double-count mass
    /// (relevant only for discrete models; continuous boundaries are
    /// mass-free).
    pub fn mass_below(&self, region: &Rect, axis: usize, x: f64) -> f64 {
        match self {
            Pdf::Uniform(p) => p.mass_below(region, axis, x),
            Pdf::Gaussian(p) => p.mass_below(region, axis, x),
            Pdf::Histogram(p) => p.mass_below(region, axis, x),
            Pdf::Discrete(p) => p.mass_below(region, axis, x),
            Pdf::Mixture(p) => p.mass_below(region, axis, x),
        }
        .clamp(0.0, 1.0)
    }

    /// Draws one sample from the density.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        match self {
            Pdf::Uniform(p) => p.sample(rng),
            Pdf::Gaussian(p) => p.sample(rng),
            Pdf::Histogram(p) => p.sample(rng),
            Pdf::Discrete(p) => p.sample(rng),
            Pdf::Mixture(p) => p.sample(rng),
        }
    }

    /// Expected value of the density.
    pub fn mean(&self) -> Point {
        match self {
            Pdf::Uniform(p) => p.mean(),
            Pdf::Gaussian(p) => p.mean(),
            Pdf::Histogram(p) => p.mean(),
            Pdf::Discrete(p) => p.mean(),
            Pdf::Mixture(p) => p.mean(),
        }
    }

    /// Conditional median of `X_axis` given `X ∈ region`: the coordinate
    /// `x` such that the mass of `region` splits as evenly as possible
    /// between `X_axis < x` and `X_axis ≥ x`.
    ///
    /// This is the "precomputed split point" of §V: the kd-tree
    /// decomposition bisects each object at per-axis medians so that every
    /// node at level `l` carries (close to) `0.5^l` probability mass.
    ///
    /// Every non-mixture model answers exactly in closed form — uniform
    /// (clip midpoint), Gaussian (inverse CDF), histogram (bin scan) and
    /// discrete (weighted median) — so only mixtures (and the models'
    /// massless/degenerate edge cases) run the 60-step `mass_below`
    /// bisection of [`Pdf::split_coordinate_bisect`].
    ///
    /// Falls back to the geometric center when the region carries no mass.
    pub fn split_coordinate(&self, region: &Rect, axis: usize) -> f64 {
        match self {
            Pdf::Discrete(p) => {
                // the generic bisection assumes a continuous CDF; the
                // discrete model has an exact weighted-median answer
                return p.split_coordinate(region, axis);
            }
            // exact O(1) / one-pass medians (massless/degenerate regions
            // fall through to the generic handling below)
            Pdf::Uniform(p) => {
                if let Some(x) = p.split_coordinate(region, axis) {
                    return x;
                }
            }
            Pdf::Gaussian(p) => {
                if let Some(x) = p.split_coordinate(region, axis) {
                    return x;
                }
            }
            Pdf::Histogram(p) => {
                if let Some(x) = p.split_coordinate(region, axis) {
                    return x;
                }
            }
            Pdf::Mixture(_) => {}
        }
        self.split_coordinate_bisect(region, axis)
    }

    /// Generic split-coordinate search: 60 bisection steps on
    /// [`Pdf::mass_below`]. This is the reference path the exact
    /// per-model medians of [`Pdf::split_coordinate`] must agree with
    /// (equivalence-tested per model); mixtures and degenerate regions
    /// always take it.
    pub fn split_coordinate_bisect(&self, region: &Rect, axis: usize) -> f64 {
        let iv = region.dim(axis);
        let total = self.mass_in(region);
        if total <= MASS_EPSILON || iv.is_degenerate() {
            return iv.center();
        }
        let target = 0.5 * total;
        let (mut lo, mut hi) = (iv.lo(), iv.hi());
        // 60 bisection steps push the bracket below f64 resolution for any
        // realistic coordinate range
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.mass_below(region, axis, mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Tight bounding box of the mass inside `region`: the intersection of
    /// `region` with the support, further tightened for discrete models to
    /// the bounding box of the contained alternatives. Returns `None` when
    /// the region carries no mass.
    pub fn tighten(&self, region: &Rect) -> Option<Rect> {
        match self {
            Pdf::Discrete(p) => p.tighten(region),
            _ => {
                let clipped = self.support().intersection(region)?;
                (self.mass_in(&clipped) > MASS_EPSILON).then_some(clipped)
            }
        }
    }

    /// Approximates this density by `n` Monte-Carlo samples of equal weight
    /// (the discretization step of the paper's §VII comparison baseline).
    pub fn discretize<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> DiscretePdf {
        assert!(n > 0, "discretization needs at least one sample");
        let pts: Vec<Point> = (0..n).map(|_| self.sample(rng)).collect();
        DiscretePdf::equally_weighted(pts)
    }
}

impl From<UniformPdf> for Pdf {
    fn from(p: UniformPdf) -> Self {
        Pdf::Uniform(p)
    }
}
impl From<GaussianPdf> for Pdf {
    fn from(p: GaussianPdf) -> Self {
        Pdf::Gaussian(p)
    }
}
impl From<HistogramPdf> for Pdf {
    fn from(p: HistogramPdf) -> Self {
        Pdf::Histogram(p)
    }
}
impl From<DiscretePdf> for Pdf {
    fn from(p: DiscretePdf) -> Self {
        Pdf::Discrete(p)
    }
}
impl From<MixturePdf> for Pdf {
    fn from(p: MixturePdf) -> Self {
        Pdf::Mixture(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use udb_geometry::Interval;

    fn unit_square() -> Rect {
        Rect::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)])
    }

    #[test]
    fn uniform_split_coordinate_is_center() {
        let pdf = Pdf::uniform(unit_square());
        let x = pdf.split_coordinate(&unit_square(), 0);
        assert!((x - 0.5).abs() < 1e-9);
    }

    #[test]
    fn uniform_split_in_subregion() {
        let pdf = Pdf::uniform(unit_square());
        let region = Rect::new(vec![Interval::new(0.5, 1.0), Interval::new(0.0, 1.0)]);
        let x = pdf.split_coordinate(&region, 0);
        assert!((x - 0.75).abs() < 1e-9);
    }

    #[test]
    fn split_of_empty_region_falls_back_to_center() {
        let pdf = Pdf::uniform(unit_square());
        let region = Rect::new(vec![Interval::new(5.0, 6.0), Interval::new(5.0, 6.0)]);
        assert!((pdf.split_coordinate(&region, 0) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn split_halves_mass_for_gaussian() {
        let pdf: Pdf = GaussianPdf::isotropic(Point::from([0.5, 0.5]), 0.2, unit_square()).into();
        let region = unit_square();
        let x = pdf.split_coordinate(&region, 0);
        let below = pdf.mass_below(&region, 0, x);
        let total = pdf.mass_in(&region);
        assert!(
            (below - 0.5 * total).abs() < 1e-6,
            "below={below} total={total}"
        );
    }

    #[test]
    fn discretize_produces_points_in_support() {
        let mut rng = StdRng::seed_from_u64(7);
        let pdf = Pdf::uniform(unit_square());
        let d = pdf.discretize(64, &mut rng);
        assert_eq!(d.len(), 64);
        for (p, w) in d.iter() {
            assert!(unit_square().contains(p));
            assert!((w - 1.0 / 64.0).abs() < 1e-12);
        }
    }

    #[test]
    fn tighten_clips_to_support() {
        let pdf = Pdf::uniform(unit_square());
        let region = Rect::new(vec![Interval::new(0.5, 2.0), Interval::new(-1.0, 0.5)]);
        let t = pdf.tighten(&region).unwrap();
        assert_eq!(t.lo(), Point::from([0.5, 0.0]));
        assert_eq!(t.hi(), Point::from([1.0, 0.5]));
        let outside = Rect::new(vec![Interval::new(2.0, 3.0), Interval::new(2.0, 3.0)]);
        assert!(pdf.tighten(&outside).is_none());
    }

    #[test]
    fn split_halves_mass_for_skewed_histogram() {
        // 3/4 of the mass in the left half: the median along x sits inside
        // the left half, at the point where cumulative mass reaches 1/2
        let h = HistogramPdf::new(unit_square(), vec![2, 1], vec![3.0, 1.0]);
        let pdf: Pdf = h.into();
        let x = pdf.split_coordinate(&unit_square(), 0);
        // left cell density 1.5/unit: cumulative reaches 0.5 at x = 1/3
        assert!((x - 1.0 / 3.0).abs() < 1e-6, "median {x}");
        let below = pdf.mass_below(&unit_square(), 0, x);
        assert!((below - 0.5).abs() < 1e-6);
    }

    #[test]
    fn split_coordinate_of_mixture_respects_gap() {
        let left = Pdf::uniform(Rect::new(vec![
            Interval::new(0.0, 1.0),
            Interval::new(0.0, 1.0),
        ]));
        let right = Pdf::uniform(Rect::new(vec![
            Interval::new(9.0, 10.0),
            Interval::new(0.0, 1.0),
        ]));
        let m: Pdf = MixturePdf::new(vec![(1.0, left), (1.0, right)]).into();
        let support = m.support().clone();
        let x = m.split_coordinate(&support, 0);
        // equal halves: any cut inside the empty gap splits mass 50/50
        let below = m.mass_below(&support, 0, x);
        assert!((below - 0.5).abs() < 1e-6, "below {below} at cut {x}");
        assert!(x > 1.0 - 1e-6 && x < 9.0 + 1e-6, "cut {x} outside gap");
    }

    #[test]
    fn mass_in_is_clamped() {
        let pdf = Pdf::uniform(unit_square());
        assert_eq!(pdf.mass_in(&unit_square()), 1.0);
        let big = Rect::new(vec![Interval::new(-9.0, 9.0), Interval::new(-9.0, 9.0)]);
        assert_eq!(pdf.mass_in(&big), 1.0);
    }

    mod split_equivalence {
        //! The exact per-model split medians must agree with the 60-step
        //! `mass_below` bisection they replace, across random regions.

        use super::*;
        use proptest::prelude::*;
        use rand::Rng;

        /// Exact and bisected medians must agree to float precision
        /// relative to the searched interval, and the exact answer must
        /// actually halve the region's mass.
        fn assert_split_matches(pdf: &Pdf, region: &Rect, axis: usize) {
            let exact = pdf.split_coordinate(region, axis);
            let bisect = pdf.split_coordinate_bisect(region, axis);
            let width = region.dim(axis).len();
            assert!(
                (exact - bisect).abs() <= 1e-9 * (1.0 + width),
                "axis {axis}: exact {exact} vs bisect {bisect} (region {region:?})"
            );
            let total = pdf.mass_in(region);
            if total > 1e-9 {
                let below = pdf.mass_below(region, axis, exact);
                assert!(
                    (below - 0.5 * total).abs() <= 1e-6 * total,
                    "axis {axis}: below {below} vs half of {total}"
                );
            }
        }

        fn arb_region() -> impl Strategy<Value = Rect> {
            // regions overlapping (and sticking out of) a ~unit support
            (-0.5..0.8f64, 0.05..1.6f64, -0.5..0.8f64, 0.05..1.6f64).prop_map(|(x, w, y, h)| {
                Rect::new(vec![Interval::new(x, x + w), Interval::new(y, y + h)])
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn prop_gaussian_split_matches_bisection(
                region in arb_region(),
                mx in 0.2..0.8f64,
                my in 0.2..0.8f64,
                sx in 0.05..0.5f64,
                sy in 0.05..0.5f64,
                axis in 0usize..2,
            ) {
                let pdf: Pdf = GaussianPdf::new(
                    Point::from([mx, my]),
                    vec![sx, sy],
                    Rect::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)]),
                ).into();
                assert_split_matches(&pdf, &region, axis);
            }

            #[test]
            fn prop_histogram_split_matches_bisection(
                region in arb_region(),
                seed in 0u64..1000,
                rx in 1usize..7,
                ry in 1usize..7,
                axis in 0usize..2,
            ) {
                use rand::rngs::StdRng;
                use rand::SeedableRng;
                let mut rng = StdRng::seed_from_u64(seed);
                // random weights with zero runs (empty-slice edge cases)
                let weights: Vec<f64> = (0..rx * ry)
                    .map(|_| if rng.gen_range(0..3) == 0 { 0.0 } else { rng.gen_range(0.1..4.0) })
                    .collect();
                if weights.iter().sum::<f64>() <= 0.0 {
                    return Ok(());
                }
                let pdf: Pdf = HistogramPdf::new(
                    Rect::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)]),
                    vec![rx, ry],
                    weights,
                ).into();
                assert_split_matches(&pdf, &region, axis);
            }
        }

        #[test]
        fn gaussian_split_off_center_support() {
            // asymmetric truncation: the median must sit left of the mean
            let pdf: Pdf = GaussianPdf::new(
                Point::from([0.9]),
                vec![0.3],
                Rect::new(vec![Interval::new(0.0, 1.0)]),
            )
            .into();
            let region = Rect::new(vec![Interval::new(0.0, 1.0)]);
            assert_split_matches(&pdf, &region, 0);
            assert!(pdf.split_coordinate(&region, 0) < 0.9);
        }

        #[test]
        fn histogram_split_with_degenerate_support_matches_step_semantics() {
            // zero-volume cells (support degenerate along y): mass_below
            // is a step function under mass_in's all-or-nothing
            // convention — the bin scan must return the bisection's
            // crossing (the start of the slice reaching half the mass),
            // not a linear interpolation across it
            let pdf: Pdf = HistogramPdf::new(
                Rect::new(vec![Interval::new(0.0, 1.0), Interval::point(0.5)]),
                vec![4, 1],
                vec![1.0; 4],
            )
            .into();
            let region = Rect::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)]);
            let exact = pdf.split_coordinate(&region, 0);
            let bisect = pdf.split_coordinate_bisect(&region, 0);
            assert!(
                (exact - bisect).abs() <= 1e-9,
                "exact {exact} vs bisect {bisect}"
            );
            assert!(
                (exact - 0.25).abs() <= 1e-9,
                "step crossing is 0.25: {exact}"
            );
        }

        #[test]
        fn histogram_split_with_empty_leading_slices() {
            // slices 0 and 1 empty along x: the median is inside slice 2+
            let pdf: Pdf = HistogramPdf::new(
                Rect::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)]),
                vec![4, 1],
                vec![0.0, 0.0, 1.0, 3.0],
            )
            .into();
            let region = Rect::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)]);
            assert_split_matches(&pdf, &region, 0);
            assert!(pdf.split_coordinate(&region, 0) > 0.5);
        }

        #[test]
        fn degenerate_axis_still_falls_back_to_center() {
            let pdf: Pdf = GaussianPdf::new(
                Point::from([0.5, 0.5]),
                vec![0.2, 0.2],
                Rect::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)]),
            )
            .into();
            let region = Rect::new(vec![Interval::point(0.5), Interval::new(0.0, 1.0)]);
            assert_eq!(pdf.split_coordinate(&region, 0), 0.5);
        }
    }
}
