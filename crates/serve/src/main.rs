//! `serve` — the line-protocol serving binary (see `docs/SERVING.md`).
//!
//! Three modes:
//!
//! * **stdin** (default): read protocol lines from stdin, reply on
//!   stdout, exit on `QUIT`/EOF. `serve --gen ... | serve --shards 4`
//!   is the whole serve-smoke pipeline.
//! * **TCP** (`--tcp ADDR`): accept connections one at a time, serving
//!   each with the same protocol; engine state persists across
//!   connections; `QUIT` closes the connection, not the server.
//! * **generator** (`--gen`): emit a deterministic protocol script on
//!   stdout (seed inserts + mixed query/mutation stream + shutdown) for
//!   smoke tests and oracle diffs.
//!
//! Ingestion is queue-fed: a reader thread pushes raw lines into a
//! channel while the execution loop drains up to `--batch-cap` queued
//! lines at a time and hands each drained slice to
//! [`udb_serve::Server::execute_batch`], which fuses consecutive
//! queries into shared [`udb_core::QueryBatch`] passes over the
//! engine's worker pool. Queueing never reorders: replies always come
//! back in line order.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::sync::mpsc;

use udb_core::{env_shards, IdcaConfig, ShardedEngine};
use udb_serve::{generate_script, Server};
use udb_workload::{QueryStreamConfig, SyntheticConfig};

const USAGE: &str = "\
serve — line-protocol front for the sharded uncertain-db engine

USAGE:
  serve [--shards N] [--batch-cap N] [--dir PATH] [--tcp ADDR]
  serve --gen [--objects N] [--batches N] [--batch-size N] [--seed N] [--mutating]

OPTIONS:
  --shards N      shard count (default: $UDB_SHARDS, else 1)
  --batch-cap N   max consecutive queries fused into one batch
                  (default: $UDB_SERVE_BATCH_CAP, else 16)
  --dir PATH      durable mode: per-shard WAL + checkpoints under PATH
  --tcp ADDR      listen on ADDR (e.g. 127.0.0.1:7878) instead of stdin
  --gen           emit a deterministic protocol script on stdout
  --objects N     [gen] seed object count (default 60)
  --batches N     [gen] stream arrival batches (default 3)
  --batch-size N  [gen] operations per arrival batch (default 8)
  --seed N        [gen] stream RNG seed (default 0x57EA)
  --mutating      [gen] mix inserts/deletes into the stream
  -h, --help      this text
";

struct Args {
    shards: usize,
    batch_cap: usize,
    dir: Option<String>,
    tcp: Option<String>,
    gen: bool,
    objects: usize,
    batches: usize,
    batch_size: usize,
    seed: u64,
    mutating: bool,
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        shards: env_shards().unwrap_or(1),
        batch_cap: env_usize("UDB_SERVE_BATCH_CAP").unwrap_or(16),
        dir: None,
        tcp: None,
        gen: false,
        objects: 60,
        batches: 3,
        batch_size: 8,
        seed: 0x57EA,
        mutating: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--batch-cap" => {
                args.batch_cap = value("--batch-cap")?
                    .parse()
                    .map_err(|e| format!("--batch-cap: {e}"))?;
            }
            "--dir" => args.dir = Some(value("--dir")?),
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--gen" => args.gen = true,
            "--objects" => {
                args.objects = value("--objects")?
                    .parse()
                    .map_err(|e| format!("--objects: {e}"))?
            }
            "--batches" => {
                args.batches = value("--batches")?
                    .parse()
                    .map_err(|e| format!("--batches: {e}"))?
            }
            "--batch-size" => {
                args.batch_size = value("--batch-size")?
                    .parse()
                    .map_err(|e| format!("--batch-size: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--mutating" => args.mutating = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.shards == 0 {
        return Err("--shards must be at least 1".to_owned());
    }
    if args.batch_cap == 0 {
        return Err("--batch-cap must be at least 1".to_owned());
    }
    Ok(args)
}

fn build_server(args: &Args) -> Result<Server, String> {
    let cfg = IdcaConfig::default();
    let engine = match &args.dir {
        Some(dir) => ShardedEngine::open(dir, cfg, args.shards)
            .map_err(|e| format!("cannot open durable engine at {dir}: {e}"))?,
        None => ShardedEngine::with_config(
            udb_object::Database::from_objects(Vec::new()),
            cfg,
            args.shards,
        ),
    };
    Ok(Server::new(engine, args.batch_cap))
}

/// Drains the queue into batches of at most `batch_cap` lines and
/// executes each, writing replies in order. Returns on `QUIT` or when
/// the reader hangs up (EOF).
fn pump(
    server: &mut Server,
    rx: &mpsc::Receiver<String>,
    out: &mut impl Write,
    batch_cap: usize,
) -> std::io::Result<()> {
    while let Ok(first) = rx.recv() {
        let mut lines = vec![first];
        while lines.len() < batch_cap {
            match rx.try_recv() {
                Ok(line) => lines.push(line),
                Err(_) => break,
            }
        }
        let (replies, quit) = server.execute_batch(&lines);
        for reply in replies {
            writeln!(out, "{reply}")?;
        }
        out.flush()?;
        if quit {
            break;
        }
    }
    Ok(())
}

fn serve_stdin(server: &mut Server, batch_cap: usize) -> std::io::Result<()> {
    let (tx, rx) = mpsc::channel::<String>();
    let reader = std::thread::spawn(move || {
        for line in std::io::stdin().lock().lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    pump(server, &rx, &mut out, batch_cap)?;
    drop(rx);
    let _ = reader.join();
    Ok(())
}

fn serve_tcp(server: &mut Server, addr: &str, batch_cap: usize) -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    eprintln!("serve: listening on {}", listener.local_addr()?);
    for conn in listener.incoming() {
        let conn = conn?;
        let reader_half = BufReader::new(conn.try_clone()?);
        let mut out = BufWriter::new(conn);
        let (tx, rx) = mpsc::channel::<String>();
        let reader = std::thread::spawn(move || {
            for line in reader_half.lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        // engine state persists across connections; QUIT only closes
        // this connection's stream
        pump(server, &rx, &mut out, batch_cap)?;
        drop(rx);
        let _ = reader.join();
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(2);
        }
    };
    if args.gen {
        let objects = SyntheticConfig {
            n: args.objects,
            max_extent: 0.02,
            ..Default::default()
        };
        let stream = QueryStreamConfig {
            batches: args.batches,
            batch_size: args.batch_size,
            k: 3,
            seed: args.seed,
            insert_weight: if args.mutating { 0.2 } else { 0.0 },
            delete_weight: if args.mutating { 0.15 } else { 0.0 },
            ..Default::default()
        };
        print!("{}", generate_script(&objects, &stream));
        return;
    }
    let mut server = match build_server(&args) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(2);
        }
    };
    let result = match &args.tcp {
        Some(addr) => serve_tcp(&mut server, addr, args.batch_cap),
        None => serve_stdin(&mut server, args.batch_cap),
    };
    if let Err(e) = result {
        eprintln!("serve: io error: {e}");
        std::process::exit(1);
    }
}
