//! `serve` — the line-protocol serving binary (see `docs/SERVING.md`).
//!
//! Four modes:
//!
//! * **stdin** (default): read protocol lines from stdin, reply on
//!   stdout, exit on `QUIT`/EOF. `serve --gen ... | serve --shards 4`
//!   is the whole serve-smoke pipeline.
//! * **TCP** (`--tcp ADDR`): accept connections concurrently — one
//!   reader thread per connection feeding the single execution pump
//!   ([`udb_serve::front`]) — with per-connection reply ordering;
//!   engine state persists across connections; `QUIT` closes its own
//!   connection, not the server.
//! * **client** (`--client ADDR`): connect to a TCP server, forward
//!   stdin as raw bytes and echo reply lines to stdout until the server
//!   closes the connection — the scripting client behind the CI
//!   concurrent-connection smoke.
//! * **generator** (`--gen`): emit a deterministic protocol script on
//!   stdout (seed inserts + mixed query/mutation stream + shutdown) for
//!   smoke tests and oracle diffs.
//!
//! Ingestion is queue-fed: reader threads push tagged lines into a
//! channel while the execution pump drains up to `--batch-cap` queued
//! lines at a time and hands each drained slice to
//! [`udb_serve::Server::execute_tagged`], which fuses consecutive
//! queries — across connections — into shared [`udb_core::QueryBatch`]
//! passes over the engine's worker pool. Queueing never reorders: each
//! connection's replies always come back in its own op order.

use udb_core::{env_shards, IdcaConfig, ShardedEngine};
use udb_serve::{front, generate_script, Server};
use udb_workload::{QueryStreamConfig, SyntheticConfig};

const USAGE: &str = "\
serve — line-protocol front for the sharded uncertain-db engine

USAGE:
  serve [--shards N] [--batch-cap N] [--dir PATH] [--tcp ADDR]
  serve --client ADDR
  serve --gen [--objects N] [--batches N] [--batch-size N] [--seed N] [--mutating] [--subs]

OPTIONS:
  --shards N      shard count (default: $UDB_SHARDS, else 1)
  --batch-cap N   max consecutive queries fused into one batch
                  (default: $UDB_SERVE_BATCH_CAP, else 16)
  --dir PATH      durable mode: per-shard WAL + checkpoints under PATH
  --tcp ADDR      listen on ADDR (e.g. 127.0.0.1:7878) instead of stdin;
                  connections are served concurrently
  --client ADDR   connect to a serving --tcp instance: forward stdin,
                  echo replies until the server closes the connection
  --gen           emit a deterministic protocol script on stdout
  --objects N     [gen] seed object count (default 60)
  --batches N     [gen] stream arrival batches (default 3)
  --batch-size N  [gen] operations per arrival batch (default 8)
  --seed N        [gen] stream RNG seed (default 0x57EA)
  --mutating      [gen] mix inserts/deletes into the stream
  --subs          [gen] mix standing-query subscriptions (SUB KNN) into
                  the stream, so mutations push NOTIFY lines
  -h, --help      this text
";

struct Args {
    shards: usize,
    batch_cap: usize,
    dir: Option<String>,
    tcp: Option<String>,
    client: Option<String>,
    gen: bool,
    objects: usize,
    batches: usize,
    batch_size: usize,
    seed: u64,
    mutating: bool,
    subs: bool,
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        shards: env_shards().unwrap_or(1),
        batch_cap: env_usize("UDB_SERVE_BATCH_CAP").unwrap_or(16),
        dir: None,
        tcp: None,
        client: None,
        gen: false,
        objects: 60,
        batches: 3,
        batch_size: 8,
        seed: 0x57EA,
        mutating: false,
        subs: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--batch-cap" => {
                args.batch_cap = value("--batch-cap")?
                    .parse()
                    .map_err(|e| format!("--batch-cap: {e}"))?;
            }
            "--dir" => args.dir = Some(value("--dir")?),
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--client" => args.client = Some(value("--client")?),
            "--gen" => args.gen = true,
            "--objects" => {
                args.objects = value("--objects")?
                    .parse()
                    .map_err(|e| format!("--objects: {e}"))?
            }
            "--batches" => {
                args.batches = value("--batches")?
                    .parse()
                    .map_err(|e| format!("--batches: {e}"))?
            }
            "--batch-size" => {
                args.batch_size = value("--batch-size")?
                    .parse()
                    .map_err(|e| format!("--batch-size: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--mutating" => args.mutating = true,
            "--subs" => args.subs = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.shards == 0 {
        return Err("--shards must be at least 1".to_owned());
    }
    if args.batch_cap == 0 {
        return Err("--batch-cap must be at least 1".to_owned());
    }
    Ok(args)
}

fn build_server(args: &Args) -> Result<Server, String> {
    let cfg = IdcaConfig::default();
    let engine = match &args.dir {
        Some(dir) => ShardedEngine::open(dir, cfg, args.shards)
            .map_err(|e| format!("cannot open durable engine at {dir}: {e}"))?,
        None => ShardedEngine::with_config(
            udb_object::Database::from_objects(Vec::new()),
            cfg,
            args.shards,
        ),
    };
    Ok(Server::new(engine, args.batch_cap))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(2);
        }
    };
    if args.gen {
        let objects = SyntheticConfig {
            n: args.objects,
            max_extent: 0.02,
            ..Default::default()
        };
        let stream = QueryStreamConfig {
            batches: args.batches,
            batch_size: args.batch_size,
            k: 3,
            seed: args.seed,
            insert_weight: if args.mutating { 0.2 } else { 0.0 },
            delete_weight: if args.mutating { 0.15 } else { 0.0 },
            subscribe_weight: if args.subs { 0.2 } else { 0.0 },
            ..Default::default()
        };
        print!("{}", generate_script(&objects, &stream));
        return;
    }
    if let Some(addr) = &args.client {
        if let Err(e) = front::run_client(addr) {
            eprintln!("serve: client error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let server = match build_server(&args) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(2);
        }
    };
    match &args.tcp {
        Some(addr) => {
            let listener = match std::net::TcpListener::bind(addr) {
                Ok(listener) => listener,
                Err(e) => {
                    eprintln!("serve: cannot bind {addr}: {e}");
                    std::process::exit(1);
                }
            };
            match listener.local_addr() {
                Ok(local) => eprintln!("serve: listening on {local}"),
                Err(e) => eprintln!("serve: listening ({e})"),
            }
            if let Err(e) = front::serve_listener(server, listener, None) {
                eprintln!("serve: io error: {e}");
                std::process::exit(1);
            }
        }
        None => {
            front::serve_stdin(server);
        }
    }
}
