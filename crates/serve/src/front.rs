//! The multi-connection serving front: per-connection reader threads
//! feed connection-tagged events into one mpsc queue, and a single pump
//! thread owns the [`Server`] — so concurrent clients batch-fuse into
//! shared [`udb_core::QueryBatch`] work while every engine access stays
//! single-threaded.
//!
//! # Threading model
//!
//! * **One reader thread per connection** (plus an acceptor thread in
//!   TCP mode). A reader decodes its stream line by line and sends
//!   [`Event::Line`] into the queue; bytes that are not valid UTF-8
//!   become `Err` lines the executor answers with `ERR <reason>` — the
//!   connection stays open.
//! * **One pump** ([`run_pump`]) drains the queue in arrival order, up
//!   to the server's batch cap of lines per cycle, and executes each
//!   drained slice through [`Server::execute_tagged`]. The queue is the
//!   only serialization point: the slice order *is* the global op
//!   order, so interleaved mutating connections see one consistent
//!   engine history.
//!
//! # Reply ordering
//!
//! [`Server::execute_tagged`] returns replies in slice order and the
//! pump routes each to its connection's writer, so every connection
//! observes exactly its own ops' replies, in its own op order —
//! byte-identical to running that connection's script alone against the
//! same engine history (the serve-smoke CI job diffs this per
//! connection).
//!
//! # Shutdown
//!
//! `QUIT` closes only its own connection: replies written so far are
//! flushed, then the socket is shut down (which unblocks that reader).
//! A client that disconnects mid-stream stops being served at the last
//! line its reader handed the pump — the engine keeps every mutation of
//! that prefix (the disconnect test asserts prefix-oracle equality).
//! When the input side ends (stdin EOF, or a capped listener's last
//! connection closing), the pump drains every queued event before
//! returning the server, so no acknowledged op is ever dropped.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, Sender};

use crate::{Server, TaggedLine};

/// One queue event from the acceptor or a connection reader.
pub enum Event {
    /// A connection opened: its reply writer, plus the socket half to
    /// shut down when the server closes the connection (`None` for
    /// transports without an out-of-band close, like stdin).
    Open(u64, Box<dyn Write + Send>, Option<TcpStream>),
    /// One input line (see [`TaggedLine`] for the `Err` semantics).
    Line(u64, Result<String, String>),
    /// The connection's reader hung up (EOF or socket error).
    Closed(u64),
}

/// Reads `input` line by line and feeds the queue until EOF or a read
/// error. Line decoding happens here — not in the pump — so one
/// connection's malformed bytes never stall another's traffic: invalid
/// UTF-8 becomes an `Err` line (replied `ERR <reason>`, the connection
/// survives), and a hard read error sends a final `Err` line before the
/// [`Event::Closed`].
pub fn read_lines(mut input: impl BufRead, conn: u64, tx: Sender<Event>) {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match input.read_until(b'\n', &mut buf) {
            Ok(0) => break,
            Ok(_) => {
                // BufRead::lines termination semantics: strip one
                // trailing \n, then one \r
                if buf.last() == Some(&b'\n') {
                    buf.pop();
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                }
                let line = String::from_utf8(std::mem::take(&mut buf))
                    .map_err(|_| "line is not valid UTF-8".to_owned());
                if tx.send(Event::Line(conn, line)).is_err() {
                    return;
                }
            }
            Err(e) => {
                let _ = tx.send(Event::Line(conn, Err(format!("read failed: {e}"))));
                break;
            }
        }
    }
    let _ = tx.send(Event::Closed(conn));
}

/// A live connection at the pump: where its replies go, and the socket
/// to shut down when the server side closes it.
struct Conn {
    writer: Box<dyn Write + Send>,
    socket: Option<TcpStream>,
}

/// Drains the queue and executes until the input side ends: each cycle
/// takes whatever has arrived — up to the server's batch cap of lines —
/// and hands it to [`Server::execute_tagged`] in arrival order, so
/// batching adapts to arrival pressure and fuses across connections.
/// Returns the server (with its final engine state) when every event
/// producer is gone, or — with `exit_when_conns_drain` (the stdin
/// front) — as soon as every opened connection has closed.
pub fn run_pump(mut server: Server, rx: Receiver<Event>, exit_when_conns_drain: bool) -> Server {
    let batch_cap = server.batch_cap();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut opened = 0usize;
    while let Ok(first) = rx.recv() {
        let mut events = vec![first];
        let mut line_count = usize::from(matches!(events[0], Event::Line(..)));
        while line_count < batch_cap {
            match rx.try_recv() {
                Ok(event) => {
                    line_count += usize::from(matches!(event, Event::Line(..)));
                    events.push(event);
                }
                Err(_) => break,
            }
        }
        // process in order: runs of lines execute together (fused
        // batches), Open/Closed apply between runs — a connection's
        // reader sends Open before its lines and Closed after them, and
        // the queue preserves send order, so per-connection causality
        // holds within every cycle
        let mut lines: Vec<TaggedLine> = Vec::new();
        for event in events {
            match event {
                Event::Line(conn, line) => {
                    // lines of connections closed in earlier cycles
                    // (QUIT or write failure) are dropped, like input
                    // after a closed stream
                    if conns.contains_key(&conn) {
                        lines.push((conn, line));
                    }
                }
                Event::Open(conn, writer, socket) => {
                    execute(&mut server, &mut conns, &mut lines);
                    conns.insert(conn, Conn { writer, socket });
                    opened += 1;
                }
                Event::Closed(conn) => {
                    execute(&mut server, &mut conns, &mut lines);
                    conns.remove(&conn);
                    // a dropped socket ends its subscriptions: sweep
                    // them so later mutations stop maintaining (and
                    // never push to) a connection that is gone
                    server.drop_connection(conn);
                }
            }
        }
        execute(&mut server, &mut conns, &mut lines);
        if exit_when_conns_drain && opened > 0 && conns.is_empty() {
            break;
        }
    }
    server
}

/// Executes one drained slice and routes the tagged replies: each
/// connection's replies are written in op order and flushed once per
/// cycle. A connection whose writer fails is dropped (the peer is gone;
/// its executed mutations stand), and `QUIT`ed connections are shut
/// down after their final flush so their readers unblock.
fn execute(server: &mut Server, conns: &mut HashMap<u64, Conn>, lines: &mut Vec<TaggedLine>) {
    if lines.is_empty() {
        return;
    }
    let (replies, quits) = server.execute_tagged(lines);
    lines.clear();
    let mut touched: Vec<u64> = Vec::new();
    let mut failed: Vec<u64> = Vec::new();
    for (conn_id, reply) in replies {
        if failed.contains(&conn_id) {
            continue;
        }
        let Some(conn) = conns.get_mut(&conn_id) else {
            continue; // disconnected mid-cycle; replies have nowhere to go
        };
        if writeln!(conn.writer, "{reply}").is_err() {
            failed.push(conn_id);
        } else if !touched.contains(&conn_id) {
            touched.push(conn_id);
        }
    }
    for conn_id in touched {
        if let Some(conn) = conns.get_mut(&conn_id) {
            if conn.writer.flush().is_err() {
                failed.push(conn_id);
            }
        }
    }
    for conn_id in failed.into_iter().chain(quits) {
        // `QUIT` already swept its subscriptions inside execute_tagged;
        // write-failure drops sweep here (idempotent either way)
        server.drop_connection(conn_id);
        if let Some(conn) = conns.remove(&conn_id) {
            if let Some(socket) = conn.socket {
                let _ = socket.shutdown(Shutdown::Both);
            }
        }
    }
}

/// The stdin front: one connection (id 0) reading stdin and replying on
/// stdout. Returns the server once the connection ends (`QUIT` or EOF);
/// on `QUIT` the reader thread may still be parked on an open stdin —
/// it exits with the process, exactly like the pre-front serving loop.
pub fn serve_stdin(server: Server) -> Server {
    let (tx, rx) = std::sync::mpsc::channel::<Event>();
    let writer = Box::new(BufWriter::new(std::io::stdout()));
    tx.send(Event::Open(0, writer, None))
        .expect("receiver is live");
    std::thread::spawn(move || read_lines(std::io::stdin().lock(), 0, tx));
    run_pump(server, rx, true)
}

/// The TCP front: accepts connections concurrently, one reader thread
/// each, all feeding the one pump (which runs on the calling thread).
/// The engine persists across connections; `QUIT` closes only its own
/// connection. With `max_conns` the acceptor stops after that many
/// connections and the call returns the server once the last one
/// closes — `None` serves forever (the production mode).
pub fn serve_listener(
    server: Server,
    listener: TcpListener,
    max_conns: Option<usize>,
) -> std::io::Result<Server> {
    let (tx, rx) = std::sync::mpsc::channel::<Event>();
    std::thread::spawn(move || {
        let mut next_id = 0u64;
        for conn in listener.incoming() {
            let Ok(conn) = conn else { break };
            let (reader_half, writer_half) = match (conn.try_clone(), conn.try_clone()) {
                (Ok(r), Ok(w)) => (r, w),
                _ => continue,
            };
            let id = next_id;
            next_id += 1;
            let opened = Event::Open(id, Box::new(BufWriter::new(writer_half)), Some(conn));
            if tx.send(opened).is_err() {
                break;
            }
            let reader_tx = tx.clone();
            std::thread::spawn(move || read_lines(BufReader::new(reader_half), id, reader_tx));
            if max_conns.is_some_and(|cap| next_id >= cap as u64) {
                break; // dropping tx lets the pump drain and return
            }
        }
    });
    Ok(run_pump(server, rx, false))
}

/// A scripting client for the TCP front: connects, forwards stdin to
/// the server **as raw bytes** (so even undecodable lines reach the
/// server and come back as `ERR` replies), and echoes every reply line
/// to stdout until the server closes the connection. After stdin EOF
/// the write half is shut down, so a script without a trailing `QUIT`
/// ends as a mid-stream disconnect — the prefix still executes.
pub fn run_client(addr: &str) -> std::io::Result<()> {
    let conn = TcpStream::connect(addr)?;
    let mut write_half = conn.try_clone()?;
    let writer = std::thread::spawn(move || {
        let mut input = std::io::stdin().lock();
        let mut buf: Vec<u8> = Vec::new();
        loop {
            buf.clear();
            match input.read_until(b'\n', &mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    if !buf.ends_with(b"\n") {
                        buf.push(b'\n');
                    }
                    if write_half.write_all(&buf).is_err() {
                        break;
                    }
                }
            }
        }
        let _ = write_half.flush();
        let _ = write_half.shutdown(Shutdown::Write);
    });
    let mut out = std::io::stdout().lock();
    let mut replies = BufReader::new(conn);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        match replies.read_until(b'\n', &mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => out.write_all(&buf)?,
        }
    }
    out.flush()?;
    let _ = writer.join();
    Ok(())
}
