//! The serving front: a line protocol over stdin or TCP, executed
//! against a [`ShardedEngine`] (see `docs/SERVING.md`).
//!
//! # Line protocol
//!
//! One operation per line, one reply line per operation, in order.
//! Blank lines and `#` comments are ignored (no reply). Objects travel
//! as the JSON encoding of [`UncertainObject`]; ids are *global* ids
//! (see [`udb_core::shard`]).
//!
//! | request | reply |
//! |---|---|
//! | `INSERT <json>` | `OK <gid>` |
//! | `DELETE <gid>` | `OK <gid>` (`ERR` when dead) |
//! | `DELNEAR <json>` | `OK <gid>` of the removed nearest object, `OK none` when empty |
//! | `UPDATE <gid> <json>` | `OK <gid>` (`ERR` when dead) |
//! | `KNN <k> <tau> <json>` | `RES id:lo:hi:iters;...` (`RES -` when empty) |
//! | `RKNN <k> <tau> <json>` | likewise |
//! | `TOPM <m> <json>` | likewise |
//! | `SUB KNN <k> <tau> <json>` | `SUB <sid> RES ...` (the id + initial result) |
//! | `SUB RKNN <k> <tau> <json>` | likewise |
//! | `SUB TOPM <m> <json>` | likewise |
//! | `UNSUB <sid>` | `OK unsub <sid>` (`ERR` when unknown) |
//! | `FLUSH` | `OK flushed` (WAL fsync + checkpoint) |
//! | `STATS` | `OK objects=<n> mutations=<m> subs=<s> maintained=<c> reanswered=<r> notified=<d>` |
//! | `QUIT` | `OK bye`, then the stream closes |
//!
//! A `SUB` registers a **standing query** (see [`udb_core::standing`]):
//! after every mutation whose maintenance changes a subscription's
//! result set, the server pushes an unsolicited
//! `NOTIFY <sid> ADD <body> DEL <ids> CHG <body>` line to the
//! subscribing connection (result bodies in `RES` member format, `-`
//! when a section is empty), immediately after the mutation's own reply
//! — so notification positions in the stream are deterministic.
//! Subscriptions die with their connection: `QUIT` or a dropped socket
//! unregisters every subscription the connection owned.
//!
//! Anything unparsable replies `ERR <reason>` without touching the
//! engine. Floats print with Rust's shortest-round-trip `Display`, so
//! two engines returning bit-identical results produce byte-identical
//! reply streams — the serve-smoke CI job diffs a sharded server's
//! output against the one-shard oracle's, byte for byte (standing
//! maintenance is bit-identical to re-answering, so `NOTIFY` lines
//! diff clean too).
//!
//! # Batching
//!
//! [`Server::execute_batch`] preserves line order exactly: mutations
//! (and `FLUSH`/`STATS`/`QUIT`) apply immediately, and each maximal run
//! of consecutive query lines between them executes as one
//! [`QueryBatch`] (capped at the server's `batch_cap`), sharing
//! candidate descent, decompositions and worker-pool fan-out across the
//! run. Batched execution is bit-identical to one-at-a-time execution
//! (the batch-equivalence suite), so batching never changes replies —
//! only throughput.

use std::collections::HashMap;

use udb_core::{IdcaConfig, QueryBatch, ResultDelta, ShardedEngine, StandingSpec, ThresholdResult};
use udb_object::{ObjectId, UncertainObject};
use udb_workload::{QueryStreamConfig, StreamOp, SyntheticConfig};

pub mod front;

/// One queued input line of the multi-connection front: the connection
/// id plus the decoded text — or the reader-side reason the bytes could
/// not be decoded (invalid UTF-8, a mid-stream read error), which the
/// executor answers as `ERR <reason>` without touching the engine or
/// closing the connection.
pub type TaggedLine = (u64, Result<String, String>);

/// One parsed protocol operation.
#[derive(Debug, Clone)]
pub enum Op {
    /// `INSERT <json>`: insert an arrival, reply its fresh global id.
    Insert(UncertainObject),
    /// `DELETE <gid>`: remove a live object by global id.
    Delete(ObjectId),
    /// `DELNEAR <json>`: remove the live object nearest the probe.
    DeleteNearest(UncertainObject),
    /// `UPDATE <gid> <json>`: replace a live object in place.
    Update(ObjectId, UncertainObject),
    /// `KNN <k> <tau> <json>`: probabilistic threshold kNN.
    Knn {
        /// The query object.
        q: UncertainObject,
        /// The `k` of the query.
        k: usize,
        /// The probability threshold `τ`.
        tau: f64,
    },
    /// `RKNN <k> <tau> <json>`: probabilistic threshold reverse kNN.
    Rknn {
        /// The query object.
        q: UncertainObject,
        /// The `k` of the query.
        k: usize,
        /// The probability threshold `τ`.
        tau: f64,
    },
    /// `TOPM <m> <json>`: top-`m` probable nearest neighbours.
    TopM {
        /// The query object.
        q: UncertainObject,
        /// Result-set size.
        m: usize,
    },
    /// `SUB KNN|RKNN|TOPM ...`: register a standing query; reply its
    /// subscription id + initial result, then push `NOTIFY` lines as
    /// mutations change the result.
    Sub {
        /// The query object.
        q: UncertainObject,
        /// What to keep answered.
        spec: StandingSpec,
    },
    /// `UNSUB <sid>`: drop a standing query.
    Unsub(u64),
    /// `FLUSH`: WAL fsync + checkpoint on every shard.
    Flush,
    /// `STATS`: object/mutation counters (shard-count-free, so a
    /// sharded reply diffs clean against the single-engine oracle's).
    Stats,
    /// `QUIT`: acknowledge and close the stream.
    Quit,
}

impl Op {
    /// Whether this operation is a query (batchable in a run) rather
    /// than a mutation/control operation (applies immediately).
    pub fn is_query(&self) -> bool {
        matches!(self, Op::Knn { .. } | Op::Rknn { .. } | Op::TopM { .. })
    }
}

fn parse_object(s: &str) -> Result<UncertainObject, String> {
    serde_json::from_str(s.trim()).map_err(|e| format!("bad object JSON: {e:?}"))
}

fn parse_id(s: &str) -> Result<ObjectId, String> {
    s.trim()
        .parse::<u32>()
        .map(ObjectId)
        .map_err(|_| format!("bad object id {:?}", s.trim()))
}

/// Parses one protocol line: `Ok(None)` for blanks and `#` comments,
/// `Ok(Some(op))` for a well-formed operation.
///
/// # Errors
/// Returns the `ERR` reason for malformed lines (unknown verb, missing
/// fields, bad numbers, bad object JSON).
pub fn parse_line(line: &str) -> Result<Option<Op>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
    let op = match verb {
        "INSERT" => Op::Insert(parse_object(rest)?),
        "DELETE" => Op::Delete(parse_id(rest)?),
        "DELNEAR" => Op::DeleteNearest(parse_object(rest)?),
        "UPDATE" => {
            let (id, json) = rest
                .trim_start()
                .split_once(' ')
                .ok_or("UPDATE needs <gid> <json>")?;
            Op::Update(parse_id(id)?, parse_object(json)?)
        }
        "KNN" | "RKNN" => {
            let mut parts = rest.trim_start().splitn(3, ' ');
            let k: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .filter(|&k| k >= 1)
                .ok_or_else(|| format!("{verb} needs a positive <k>"))?;
            let tau: f64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .filter(|t| (0.0..1.0).contains(t))
                .ok_or_else(|| format!("{verb} needs <tau> in [0, 1)"))?;
            let q = parse_object(parts.next().ok_or_else(|| format!("{verb} needs <json>"))?)?;
            if verb == "KNN" {
                Op::Knn { q, k, tau }
            } else {
                Op::Rknn { q, k, tau }
            }
        }
        "TOPM" => {
            let (m, json) = rest
                .trim_start()
                .split_once(' ')
                .ok_or("TOPM needs <m> <json>")?;
            let m: usize = m
                .parse()
                .ok()
                .filter(|&m| m >= 1)
                .ok_or("TOPM needs a positive <m>")?;
            Op::TopM {
                q: parse_object(json)?,
                m,
            }
        }
        "SUB" => {
            let (what, rest) = rest
                .trim_start()
                .split_once(' ')
                .ok_or("SUB needs KNN|RKNN|TOPM ...")?;
            match what {
                "KNN" | "RKNN" => {
                    let mut parts = rest.trim_start().splitn(3, ' ');
                    let k: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&k| k >= 1)
                        .ok_or_else(|| format!("SUB {what} needs a positive <k>"))?;
                    let tau: f64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|t| (0.0..1.0).contains(t))
                        .ok_or_else(|| format!("SUB {what} needs <tau> in [0, 1)"))?;
                    let q = parse_object(
                        parts
                            .next()
                            .ok_or_else(|| format!("SUB {what} needs <json>"))?,
                    )?;
                    let spec = if what == "KNN" {
                        StandingSpec::Knn { k, tau }
                    } else {
                        StandingSpec::Rknn { k, tau }
                    };
                    Op::Sub { q, spec }
                }
                "TOPM" => {
                    let (m, json) = rest
                        .trim_start()
                        .split_once(' ')
                        .ok_or("SUB TOPM needs <m> <json>")?;
                    let m: usize = m
                        .parse()
                        .ok()
                        .filter(|&m| m >= 1)
                        .ok_or("SUB TOPM needs a positive <m>")?;
                    Op::Sub {
                        q: parse_object(json)?,
                        spec: StandingSpec::TopM { m },
                    }
                }
                other => return Err(format!("SUB needs KNN|RKNN|TOPM, got {other:?}")),
            }
        }
        "UNSUB" => Op::Unsub(
            rest.trim()
                .parse::<u64>()
                .map_err(|_| format!("bad subscription id {:?}", rest.trim()))?,
        ),
        "FLUSH" => Op::Flush,
        "STATS" => Op::Stats,
        "QUIT" => Op::Quit,
        other => return Err(format!("unknown verb {other:?}")),
    };
    Ok(Some(op))
}

/// The member body of a result set: `id:lo:hi:iters` joined by `;`,
/// floats in shortest-round-trip form (so bit-identical results format
/// byte-identically); `-` when empty. Shared by `RES` replies and
/// `NOTIFY` sections so the two streams use identical float digits.
pub fn results_body(hits: &[ThresholdResult]) -> String {
    if hits.is_empty() {
        return "-".to_owned();
    }
    let body: Vec<String> = hits
        .iter()
        .map(|h| {
            format!(
                "{}:{}:{}:{}",
                h.id.0, h.prob_lower, h.prob_upper, h.iterations
            )
        })
        .collect();
    body.join(";")
}

/// The `RES` reply line for a query result set (see [`results_body`]).
pub fn format_results(hits: &[ThresholdResult]) -> String {
    format!("RES {}", results_body(hits))
}

/// The pushed notification line for one standing-query delta:
/// `NOTIFY <sid> ADD <body> DEL <ids> CHG <body>` — freshly qualified
/// members, ids (joined by `;`) that dropped out, and surviving members
/// whose probability bounds changed bits.
pub fn format_notify(delta: &ResultDelta) -> String {
    let del = if delta.removed.is_empty() {
        "-".to_owned()
    } else {
        let ids: Vec<String> = delta.removed.iter().map(|id| id.0.to_string()).collect();
        ids.join(";")
    };
    format!(
        "NOTIFY {} ADD {} DEL {} CHG {}",
        delta.sub,
        results_body(&delta.added),
        del,
        results_body(&delta.changed)
    )
}

/// The protocol executor: an owned [`ShardedEngine`] plus the cap on
/// how many consecutive query lines fuse into one [`QueryBatch`].
pub struct Server {
    engine: ShardedEngine,
    batch_cap: usize,
    /// Subscription ownership: standing-query id → connection id, so
    /// `NOTIFY` lines route to the subscribing connection and a closed
    /// connection's subscriptions can be swept.
    subs: HashMap<u64, u64>,
}

impl Server {
    /// Wraps an engine. `batch_cap` bounds the query-run fusion width
    /// (1 disables batching entirely; replies are identical either way).
    ///
    /// # Panics
    /// Panics if `batch_cap == 0`.
    pub fn new(engine: ShardedEngine, batch_cap: usize) -> Self {
        assert!(batch_cap >= 1, "batch cap must be positive");
        Server {
            engine,
            batch_cap,
            subs: HashMap::new(),
        }
    }

    /// The served engine.
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// The query-run fusion cap this server was built with.
    pub fn batch_cap(&self) -> usize {
        self.batch_cap
    }

    /// Executes a slice of protocol lines in order and returns one
    /// reply line per operation line (comments and blanks produce no
    /// reply) plus whether a `QUIT` was executed — lines after a `QUIT`
    /// are dropped unexecuted, like input after a closed stream.
    pub fn execute_batch(&mut self, lines: &[String]) -> (Vec<String>, bool) {
        let tagged: Vec<TaggedLine> = lines.iter().map(|l| (0, Ok(l.clone()))).collect();
        let (replies, quits) = self.execute_tagged(&tagged);
        let replies = replies.into_iter().map(|(_, reply)| reply).collect();
        (replies, !quits.is_empty())
    }

    /// The multi-connection executor step: processes connection-tagged
    /// lines as **one** protocol sequence (the slice order is the
    /// arrival order the pump drained, so batch fusion spans
    /// connections) and returns one tagged reply per operation line, in
    /// slice order — each connection's replies appear in its own op
    /// order — plus the connections that executed `QUIT`. A `QUIT`
    /// closes only its own connection: that connection's later lines in
    /// the slice are dropped unexecuted, every other connection's lines
    /// proceed. `Err` lines (reader-side decode failures) reply
    /// `ERR <reason>` without touching the engine.
    pub fn execute_tagged(&mut self, lines: &[TaggedLine]) -> (Vec<(u64, String)>, Vec<u64>) {
        let mut replies: Vec<(u64, String)> = Vec::new();
        let mut quits: Vec<u64> = Vec::new();
        // reply slots of the current run of consecutive query lines
        let mut pending: Vec<(usize, Op)> = Vec::new();
        for (conn, line) in lines {
            if quits.contains(conn) {
                continue; // this connection closed earlier in the slice
            }
            let line = match line {
                Ok(line) => line,
                Err(reason) => {
                    replies.push((*conn, format!("ERR {reason}")));
                    continue;
                }
            };
            match parse_line(line) {
                Ok(None) => {}
                Err(e) => replies.push((*conn, format!("ERR {e}"))),
                Ok(Some(op)) if op.is_query() => {
                    let slot = replies.len();
                    replies.push((*conn, String::new()));
                    pending.push((slot, op));
                    if pending.len() >= self.batch_cap {
                        self.flush_queries(&mut replies, &mut pending);
                    }
                }
                Ok(Some(op)) => {
                    // a mutation/control op: settle queued queries
                    // against the pre-mutation state first
                    self.flush_queries(&mut replies, &mut pending);
                    let quit = matches!(op, Op::Quit);
                    replies.push((*conn, self.apply(*conn, op)));
                    // push standing-query deltas right behind the
                    // mutation's own reply — deterministic positions
                    for delta in self.engine.take_standing_deltas() {
                        if let Some(&owner) = self.subs.get(&delta.sub) {
                            replies.push((owner, format_notify(&delta)));
                        }
                    }
                    if quit {
                        quits.push(*conn);
                        // the stream is closing: its subscriptions die
                        // with it, before any later line in the slice
                        self.drop_connection(*conn);
                    }
                }
            }
        }
        self.flush_queries(&mut replies, &mut pending);
        (replies, quits)
    }

    /// Sweeps every subscription a closed connection owned (the fronts
    /// call this for dropped sockets; `QUIT` sweeps inline). Sub ids
    /// unregister in ascending order so engine state stays
    /// deterministic.
    pub fn drop_connection(&mut self, conn: u64) {
        let mut owned: Vec<u64> = self
            .subs
            .iter()
            .filter(|&(_, &c)| c == conn)
            .map(|(&sid, _)| sid)
            .collect();
        owned.sort_unstable();
        for sid in owned {
            self.engine.unsubscribe(sid);
            self.subs.remove(&sid);
        }
    }

    /// Runs a queued query run as one [`QueryBatch`] and fills the
    /// reserved reply slots.
    fn flush_queries(&mut self, replies: &mut [(u64, String)], pending: &mut Vec<(usize, Op)>) {
        if pending.is_empty() {
            return;
        }
        let mut batch = QueryBatch::new();
        for (_, op) in pending.iter() {
            match op {
                Op::Knn { q, k, tau } => batch.knn_threshold(q.clone(), *k, *tau),
                Op::Rknn { q, k, tau } => batch.rknn_threshold(q.clone(), *k, *tau),
                Op::TopM { q, m } => batch.top_probable_nn(q.clone(), *m),
                _ => unreachable!("only queries are queued"),
            };
        }
        let results = self.engine.run_batch(&batch);
        for ((slot, _), hits) in pending.drain(..).zip(results) {
            replies[slot].1 = format_results(&hits);
        }
    }

    /// Applies one non-query operation and formats its reply. `conn`
    /// tags subscription ownership.
    fn apply(&mut self, conn: u64, op: Op) -> String {
        match op {
            Op::Insert(obj) => match self.engine.try_insert(obj) {
                Ok(id) => format!("OK {}", id.0),
                Err(e) => format!("ERR insert failed: {e}"),
            },
            Op::Delete(id) => {
                if self.engine.try_get(id).is_none() {
                    return format!("ERR no live object {}", id.0);
                }
                match self.engine.try_remove(id) {
                    Ok(_) => format!("OK {}", id.0),
                    Err(e) => format!("ERR delete failed: {e}"),
                }
            }
            Op::DeleteNearest(probe) => match self.engine.nearest(probe.mbr()) {
                Some(id) => match self.engine.try_remove(id) {
                    Ok(_) => format!("OK {}", id.0),
                    Err(e) => format!("ERR delete failed: {e}"),
                },
                None => "OK none".to_owned(),
            },
            Op::Update(id, obj) => {
                if self.engine.try_get(id).is_none() {
                    return format!("ERR no live object {}", id.0);
                }
                match self.engine.try_update(id, obj) {
                    Ok(_) => format!("OK {}", id.0),
                    Err(e) => format!("ERR update failed: {e}"),
                }
            }
            Op::Sub { q, spec } => {
                let (sid, hits) = self.engine.subscribe(q, spec);
                self.subs.insert(sid, conn);
                format!("SUB {sid} {}", format_results(&hits))
            }
            Op::Unsub(sid) => {
                if self.engine.unsubscribe(sid) {
                    self.subs.remove(&sid);
                    format!("OK unsub {sid}")
                } else {
                    format!("ERR no subscription {sid}")
                }
            }
            Op::Flush => match self
                .engine
                .wal_sync()
                .and_then(|()| self.engine.checkpoint())
            {
                Ok(()) => "OK flushed".to_owned(),
                Err(e) => format!("ERR flush failed: {e}"),
            },
            Op::Stats => {
                let s = self.engine.standing_stats();
                format!(
                    "OK objects={} mutations={} subs={} maintained={} reanswered={} notified={}",
                    self.engine.len(),
                    self.engine.mutations(),
                    s.registered,
                    s.maintained,
                    s.reanswered,
                    s.deltas,
                )
            }
            Op::Quit => "OK bye".to_owned(),
            Op::Knn { .. } | Op::Rknn { .. } | Op::TopM { .. } => {
                unreachable!("queries go through flush_queries")
            }
        }
    }
}

/// Emits a deterministic protocol script: every object of the synthetic
/// database as an `INSERT`, then the stream's operations in arrival
/// order, then `STATS` + `FLUSH` + `QUIT`. The serve-smoke CI job pipes
/// one script through servers at different shard counts and diffs the
/// reply streams byte for byte.
pub fn generate_script(objects: &SyntheticConfig, stream: &QueryStreamConfig) -> String {
    let db = objects.generate();
    let ops = stream.generate(objects);
    let mut out = String::new();
    out.push_str(&format!(
        "# uncertain-db serve script: {} seed objects, {} streamed ops\n",
        db.len(),
        ops.total_ops()
    ));
    for (_, obj) in db.iter() {
        let json = serde_json::to_string(obj).expect("objects serialize");
        out.push_str(&format!("INSERT {json}\n"));
    }
    for batch in &ops.batches {
        out.push_str("# arrival batch\n");
        for entry in batch {
            let json = serde_json::to_string(&entry.object).expect("objects serialize");
            let line = match entry.op {
                StreamOp::KnnThreshold { k, tau } => format!("KNN {k} {tau} {json}"),
                StreamOp::RknnThreshold { k, tau } => format!("RKNN {k} {tau} {json}"),
                StreamOp::TopProbableNn { m } => format!("TOPM {m} {json}"),
                StreamOp::Insert => format!("INSERT {json}"),
                StreamOp::Delete => format!("DELNEAR {json}"),
                StreamOp::Subscribe { k, tau } => format!("SUB KNN {k} {tau} {json}"),
            };
            out.push_str(&line);
            out.push('\n');
        }
    }
    out.push_str("STATS\nFLUSH\nQUIT\n");
    out
}

/// A fresh in-memory server over an empty database at the given shard
/// count — the state both the stdin front and the in-process tests
/// start from.
pub fn empty_server(cfg: IdcaConfig, shards: usize, batch_cap: usize) -> Server {
    let engine =
        ShardedEngine::with_config(udb_object::Database::from_objects(Vec::new()), cfg, shards);
    Server::new(engine, batch_cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn script_lines() -> Vec<String> {
        let objects = SyntheticConfig {
            n: 40,
            max_extent: 0.02,
            ..Default::default()
        };
        let stream = QueryStreamConfig {
            batches: 2,
            batch_size: 6,
            k: 3,
            insert_weight: 0.2,
            delete_weight: 0.15,
            subscribe_weight: 0.15,
            ..Default::default()
        };
        generate_script(&objects, &stream)
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn comments_and_blanks_are_silent() {
        assert!(matches!(parse_line(""), Ok(None)));
        assert!(matches!(parse_line("   "), Ok(None)));
        assert!(matches!(parse_line("# hello"), Ok(None)));
    }

    #[test]
    fn malformed_lines_report_err_without_state_change() {
        let mut server = empty_server(IdcaConfig::default(), 2, 8);
        let (replies, quit) = server.execute_batch(&[
            "NOPE".to_owned(),
            "KNN 0 0.5 {}".to_owned(),
            "KNN 3 1.5 {}".to_owned(),
            "DELETE x".to_owned(),
            "STATS".to_owned(),
        ]);
        assert!(!quit);
        assert_eq!(replies.len(), 5);
        assert!(replies[..4].iter().all(|r| r.starts_with("ERR ")));
        assert_eq!(
            replies[4],
            "OK objects=0 mutations=0 subs=0 maintained=0 reanswered=0 notified=0"
        );
    }

    #[test]
    fn quit_drops_trailing_lines() {
        let mut server = empty_server(IdcaConfig::default(), 1, 8);
        let (replies, quit) =
            server.execute_batch(&["STATS".to_owned(), "QUIT".to_owned(), "STATS".to_owned()]);
        assert!(quit);
        assert_eq!(
            replies,
            vec![
                "OK objects=0 mutations=0 subs=0 maintained=0 reanswered=0 notified=0",
                "OK bye"
            ]
        );
    }

    #[test]
    fn sharded_replies_match_single_engine_oracle() {
        // the serve-smoke equivalence, in process: the same script
        // through 1, 2 and 4 shards must produce byte-identical reply
        // streams (global ids, result sets, float digits, counters)
        let lines = script_lines();
        let cfg = IdcaConfig {
            max_iterations: 3,
            ..Default::default()
        };
        let (oracle, quit) = empty_server(cfg.clone(), 1, 8).execute_batch(&lines);
        assert!(quit);
        assert!(oracle.iter().any(|r| r.starts_with("RES ")));
        for shards in [2, 4] {
            let (replies, _) = empty_server(cfg.clone(), shards, 8).execute_batch(&lines);
            assert_eq!(oracle, replies, "{shards} shards diverged from oracle");
        }
    }

    #[test]
    fn batch_cap_does_not_change_replies() {
        let lines = script_lines();
        let cfg = IdcaConfig {
            max_iterations: 3,
            ..Default::default()
        };
        let (fused, _) = empty_server(cfg.clone(), 2, 64).execute_batch(&lines);
        let (unbatched, _) = empty_server(cfg, 2, 1).execute_batch(&lines);
        assert_eq!(fused, unbatched);
    }

    #[test]
    fn delete_and_update_round_trip() {
        let mut server = empty_server(IdcaConfig::default(), 2, 8);
        let objects = SyntheticConfig {
            n: 3,
            max_extent: 0.02,
            ..Default::default()
        };
        let db = objects.generate();
        let lines: Vec<String> = db
            .iter()
            .map(|(_, o)| format!("INSERT {}", serde_json::to_string(o).unwrap()))
            .collect();
        let (replies, _) = server.execute_batch(&lines);
        assert_eq!(replies, vec!["OK 0", "OK 1", "OK 2"]);
        let json = serde_json::to_string(db.get(udb_object::ObjectId(0))).unwrap();
        let (replies, _) = server.execute_batch(&[
            format!("UPDATE 1 {json}"),
            "DELETE 1".to_owned(),
            "DELETE 1".to_owned(),
            format!("INSERT {json}"),
        ]);
        assert_eq!(replies[0], "OK 1");
        assert_eq!(replies[1], "OK 1");
        assert!(replies[2].starts_with("ERR no live object"));
        // dead ids are never reused
        assert_eq!(replies[3], "OK 3");
    }
}
