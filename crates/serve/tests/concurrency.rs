//! Concurrency contract of the multi-connection front (`udb_serve::front`):
//! per-connection reply ordering, `QUIT` isolation, decode-error
//! surfacing, oracle equality for concurrent clients, and
//! prefix-consistency after a mid-connection disconnect.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;

use udb_core::IdcaConfig;
use udb_serve::{empty_server, front, Server, TaggedLine};
use udb_workload::SyntheticConfig;

fn cfg() -> IdcaConfig {
    IdcaConfig {
        max_iterations: 3,
        ..Default::default()
    }
}

/// JSON lines for `n` deterministic synthetic objects.
fn object_jsons(n: usize, seed_shift: u64) -> Vec<String> {
    let db = SyntheticConfig {
        n,
        max_extent: 0.02,
        seed: 0x5EED + seed_shift,
        ..Default::default()
    }
    .generate();
    db.iter()
        .map(|(_, o)| serde_json::to_string(o).expect("objects serialize"))
        .collect()
}

/// Starts a TCP front over a fresh engine; the returned handle joins to
/// the final [`Server`] once `max_conns` connections have all closed.
fn spawn_front(
    shards: usize,
    batch_cap: usize,
    max_conns: usize,
) -> (SocketAddr, JoinHandle<Server>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server = empty_server(cfg(), shards, batch_cap);
    let handle = std::thread::spawn(move || {
        front::serve_listener(server, listener, Some(max_conns)).expect("serve")
    });
    (addr, handle)
}

/// One scripted connection: sends every line, half-closes the write
/// side, and collects reply lines until the server closes the stream.
fn run_conn(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let conn = TcpStream::connect(addr).expect("connect");
    let mut write_half = conn.try_clone().expect("clone");
    for line in lines {
        writeln!(write_half, "{line}").expect("send");
    }
    write_half.flush().expect("flush");
    let _ = write_half.shutdown(Shutdown::Write);
    BufReader::new(conn)
        .lines()
        .map(|l| l.expect("reply line"))
        .collect()
}

#[test]
fn tagged_execution_preserves_per_connection_order_and_quit_isolation() {
    let mut server = empty_server(cfg(), 2, 4);
    let insert = format!("INSERT {}", object_jsons(1, 0)[0]);
    let ok = |s: &str| Ok(s.to_owned());
    let lines: Vec<TaggedLine> = vec![
        (1, ok("STATS")),
        (2, ok("STATS")),
        (1, ok("QUIT")),
        (1, ok("STATS")), // after conn 1's QUIT: dropped unexecuted
        (3, Err("line is not valid UTF-8".to_owned())),
        (2, Ok(insert)),
        (2, ok("STATS")),
    ];
    let (replies, quits) = server.execute_tagged(&lines);
    assert_eq!(quits, vec![1], "only connection 1 quit");
    let empty_stats = "OK objects=0 mutations=0 subs=0 maintained=0 reanswered=0 notified=0";
    assert_eq!(
        replies,
        vec![
            (1, empty_stats.to_owned()),
            (2, empty_stats.to_owned()),
            (1, "OK bye".to_owned()),
            (3, "ERR line is not valid UTF-8".to_owned()),
            (2, "OK 0".to_owned()),
            (
                2,
                "OK objects=1 mutations=1 subs=0 maintained=0 reanswered=0 notified=0".to_owned()
            ),
        ],
        "replies must keep slice order, per-connection tags, and drop \
         only the quitting connection's later lines"
    );
}

#[test]
fn concurrent_clients_match_their_single_connection_oracles() {
    // seed the engine over one connection, then run three concurrent
    // query-only clients: with no mutations in flight, each client's
    // reply stream must be byte-identical to replaying seed + its own
    // script through a fresh in-process server (the CI serve-smoke
    // concurrent phase, in-process)
    let (addr, handle) = spawn_front(2, 8, 4);
    let seed_lines: Vec<String> = object_jsons(24, 0)
        .into_iter()
        .map(|json| format!("INSERT {json}"))
        .collect();
    let seed_replies = run_conn(addr, &{
        let mut with_quit = seed_lines.clone();
        with_quit.push("QUIT".to_owned());
        with_quit
    });
    assert_eq!(seed_replies.len(), seed_lines.len() + 1);

    let client_scripts: Vec<Vec<String>> = (0..3)
        .map(|c| {
            let mut script: Vec<String> = object_jsons(3, 100 + c)
                .into_iter()
                .enumerate()
                .flat_map(|(i, json)| {
                    vec![
                        format!("KNN {} 0.25 {json}", 2 + i),
                        format!("RKNN 2 0.25 {json}"),
                        format!("TOPM 2 {json}"),
                    ]
                })
                .collect();
            script.push("STATS".to_owned());
            script.push("QUIT".to_owned());
            script
        })
        .collect();

    let got: Vec<Vec<String>> = client_scripts
        .iter()
        .map(|script| {
            let script = script.clone();
            std::thread::spawn(move || run_conn(addr, &script))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    for (c, script) in client_scripts.iter().enumerate() {
        let mut oracle_input = seed_lines.clone();
        oracle_input.extend(script.iter().cloned());
        let (oracle, quit) = empty_server(cfg(), 2, 8).execute_batch(&oracle_input);
        assert!(quit);
        let expected: Vec<String> = oracle[seed_lines.len()..].to_vec();
        assert_eq!(got[c], expected, "client {c} diverged from its oracle");
    }
    let server = handle.join().expect("front thread");
    assert_eq!(server.engine().len(), 24, "queries must not mutate");
}

#[test]
fn interleaved_mutating_connections_see_their_own_replies_in_op_order() {
    // three connections mutate and query concurrently; the engine
    // history is some interleaving of their scripts, but each
    // connection must still see one reply per op, in its own op order,
    // with the reply kind matching the op kind
    let (addr, handle) = spawn_front(2, 4, 3);
    let per_conn_inserts = 8usize;
    let scripts: Vec<Vec<String>> = (0..3)
        .map(|c| {
            let mut script = Vec::new();
            for (i, json) in object_jsons(per_conn_inserts, 200 + c)
                .into_iter()
                .enumerate()
            {
                script.push(format!("INSERT {json}"));
                if i % 2 == 0 {
                    script.push("STATS".to_owned());
                } else {
                    script.push(format!("KNN 2 0.25 {json}"));
                }
            }
            script.push("QUIT".to_owned());
            script
        })
        .collect();
    let got: Vec<Vec<String>> = scripts
        .iter()
        .map(|script| {
            let script = script.clone();
            std::thread::spawn(move || run_conn(addr, &script))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    let mut inserted_ids: Vec<u32> = Vec::new();
    for (c, (script, replies)) in scripts.iter().zip(&got).enumerate() {
        assert_eq!(replies.len(), script.len(), "conn {c}: one reply per op");
        for (line, reply) in script.iter().zip(replies) {
            let verb = line.split(' ').next().unwrap();
            match verb {
                "INSERT" => {
                    let id: u32 = reply
                        .strip_prefix("OK ")
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("conn {c}: INSERT reply {reply:?}"));
                    inserted_ids.push(id);
                }
                "STATS" => assert!(
                    reply.starts_with("OK objects="),
                    "conn {c}: STATS reply {reply:?}"
                ),
                "KNN" => assert!(reply.starts_with("RES"), "conn {c}: KNN reply {reply:?}"),
                "QUIT" => assert_eq!(reply, "OK bye", "conn {c}"),
                other => panic!("unexpected verb {other}"),
            }
        }
    }
    // global ids are handed out exactly once across connections
    let total = 3 * per_conn_inserts;
    inserted_ids.sort_unstable();
    inserted_ids.dedup();
    assert_eq!(inserted_ids.len(), total, "duplicate global ids");
    let server = handle.join().expect("front thread");
    assert_eq!(server.engine().len(), total);
    assert_eq!(server.engine().mutations() as usize, total);
}

#[test]
fn mid_connection_disconnect_keeps_exactly_the_acknowledged_prefix() {
    let (addr, handle) = spawn_front(2, 4, 2);
    let prefix: Vec<String> = object_jsons(5, 300)
        .into_iter()
        .map(|json| format!("INSERT {json}"))
        .collect();

    // connection A: send the prefix, read its acknowledgements, then
    // vanish without QUIT (dropping the socket mid-connection)
    {
        let conn = TcpStream::connect(addr).expect("connect");
        let mut write_half = conn.try_clone().expect("clone");
        for line in &prefix {
            writeln!(write_half, "{line}").expect("send");
        }
        write_half.flush().expect("flush");
        let mut replies = BufReader::new(&conn);
        for i in 0..prefix.len() {
            let mut reply = String::new();
            replies.read_line(&mut reply).expect("read");
            assert_eq!(reply.trim_end(), format!("OK {i}"));
        }
        // dropped here: no QUIT, no half-close handshake
    }

    // connection B observes the engine afterwards
    let probe = format!("KNN 2 0.25 {}", object_jsons(1, 301)[0]);
    let observed = run_conn(
        addr,
        &["STATS".to_owned(), probe.clone(), "QUIT".to_owned()],
    );

    // the oracle applies exactly the acknowledged prefix
    let mut oracle_input = prefix.clone();
    oracle_input.push("STATS".to_owned());
    oracle_input.push(probe);
    oracle_input.push("QUIT".to_owned());
    let (oracle, _) = empty_server(cfg(), 2, 4).execute_batch(&oracle_input);
    assert_eq!(observed, oracle[prefix.len()..].to_vec());

    let server = handle.join().expect("front thread");
    assert_eq!(server.engine().len(), prefix.len());
}

#[test]
fn undecodable_bytes_reply_err_and_keep_the_connection_serving() {
    // raw bytes (not run_conn: the payload is deliberately not UTF-8)
    let (addr, handle) = spawn_front(1, 4, 1);
    let conn = TcpStream::connect(addr).expect("connect");
    let mut write_half = conn.try_clone().expect("clone");
    write_half
        .write_all(b"STATS\n\xff\xfeBAD\nSTATS\nQUIT\n")
        .expect("send");
    write_half.flush().expect("flush");
    let mut replies = String::new();
    BufReader::new(conn)
        .read_to_string(&mut replies)
        .expect("replies are UTF-8");
    let empty_stats = "OK objects=0 mutations=0 subs=0 maintained=0 reanswered=0 notified=0";
    assert_eq!(
        replies.lines().collect::<Vec<_>>(),
        vec![
            empty_stats,
            "ERR line is not valid UTF-8",
            empty_stats,
            "OK bye",
        ]
    );
    handle.join().expect("front thread");
}

#[test]
fn subscriptions_push_notify_to_their_owner_and_unsub_stops_them() {
    let mut server = empty_server(cfg(), 2, 4);
    let jsons = object_jsons(2, 400);
    let lines: Vec<TaggedLine> = vec![
        (1, Ok(format!("SUB KNN 2 0.25 {}", jsons[0]))),
        (2, Ok(format!("INSERT {}", jsons[1]))),
    ];
    let (replies, _) = server.execute_tagged(&lines);
    assert!(replies[0].1.starts_with("SUB 1 RES"), "{:?}", replies[0]);
    assert_eq!(replies[1], (2, "OK 0".to_owned()));
    assert_eq!(replies.len(), 3, "the insert pushed exactly one NOTIFY");
    assert_eq!(replies[2].0, 1, "NOTIFY routes to the subscriber");
    assert!(
        replies[2].1.starts_with("NOTIFY 1 ADD 0:"),
        "{:?}",
        replies[2].1
    );
    let (replies, _) = server.execute_tagged(&[
        (1, Ok("UNSUB 1".to_owned())),
        (2, Ok(format!("INSERT {}", jsons[0]))),
        (1, Ok("UNSUB 1".to_owned())),
    ]);
    assert_eq!(replies[0], (1, "OK unsub 1".to_owned()));
    assert_eq!(replies[1], (2, "OK 1".to_owned()));
    assert_eq!(replies[2], (1, "ERR no subscription 1".to_owned()));
    assert_eq!(replies.len(), 3, "no NOTIFY after UNSUB");
}

#[test]
fn quit_unsubscribes_the_connections_standing_queries() {
    // one shard: the delegation path, where the shard's own registry
    // holds the subscription
    let mut server = empty_server(cfg(), 1, 4);
    let jsons = object_jsons(2, 500);
    let (replies, quits) = server.execute_tagged(&[
        (1, Ok(format!("SUB KNN 2 0.25 {}", jsons[0]))),
        (1, Ok("QUIT".to_owned())),
        (2, Ok(format!("INSERT {}", jsons[1]))),
        (2, Ok("STATS".to_owned())),
    ]);
    assert_eq!(quits, vec![1]);
    assert_eq!(replies.len(), 4, "the insert after QUIT pushed no NOTIFY");
    assert_eq!(
        replies[3].1, "OK objects=1 mutations=1 subs=0 maintained=0 reanswered=0 notified=0",
        "the quitting connection's subscription was swept before the insert"
    );
}

#[test]
fn disconnect_without_quit_unsubscribes() {
    let (addr, handle) = spawn_front(2, 4, 2);
    // connection A subscribes, reads its SUB acknowledgement, then
    // vanishes without QUIT (dropping the socket mid-connection)
    {
        let conn = TcpStream::connect(addr).expect("connect");
        let mut write_half = conn.try_clone().expect("clone");
        writeln!(write_half, "SUB KNN 2 0.25 {}", object_jsons(1, 600)[0]).expect("send");
        write_half.flush().expect("flush");
        let mut reply = String::new();
        BufReader::new(&conn).read_line(&mut reply).expect("read");
        assert!(reply.starts_with("SUB 1 RES"), "{reply:?}");
        // dropped here: no QUIT, no half-close handshake
    }
    // give A's reader thread time to hand the pump its Closed event —
    // the event order between A's close and B's lines is what the
    // sweep-on-close contract makes irrelevant for correctness, but
    // this test pins the swept outcome
    std::thread::sleep(std::time::Duration::from_millis(300));
    // connection B mutates: no maintenance runs, no NOTIFY is pushed,
    // and STATS shows the subscription gone
    let observed = run_conn(
        addr,
        &[
            format!("INSERT {}", object_jsons(1, 601)[0]),
            "STATS".to_owned(),
            "QUIT".to_owned(),
        ],
    );
    assert_eq!(
        observed,
        vec![
            "OK 0".to_owned(),
            "OK objects=1 mutations=1 subs=0 maintained=0 reanswered=0 notified=0".to_owned(),
            "OK bye".to_owned(),
        ]
    );
    let server = handle.join().expect("front thread");
    assert_eq!(server.engine().standing_stats().registered, 0);
}
