//! Experiment harness regenerating every figure of the paper's evaluation
//! (§VII) plus the ablations called out in DESIGN.md.
//!
//! Each `fig*` function returns a [`Table`] with the same series the paper
//! plots; the `experiments` binary prints them as CSV/JSON, and
//! EXPERIMENTS.md records paper-vs-measured shapes. All experiments accept
//! a [`Scale`] so CI runs shrink the datasets while `--paper` reproduces
//! the full parameters.

pub mod experiments;
pub mod harness;

pub use harness::{Scale, Table};
