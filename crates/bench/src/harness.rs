//! Shared experiment infrastructure: scales, datasets, timing, tables.

use std::time::Instant;

use serde::Serialize;
use udb_geometry::LpNorm;
use udb_object::Database;
use udb_workload::{IcebergConfig, QuerySet, SyntheticConfig};

/// Experiment scale: `paper` reproduces the §VII parameters; `ci` shrinks
/// datasets and query counts so the whole suite finishes in minutes on a
/// laptop. Trends/shapes are preserved at either scale.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Scale {
    /// Synthetic database size (paper: 10,000).
    pub synthetic_n: usize,
    /// Iceberg database size (paper: 6,216).
    pub iceberg_n: usize,
    /// Queries per measurement point (paper: 100).
    pub queries: usize,
    /// Default Monte-Carlo samples per object (paper: 1,000).
    pub mc_samples: usize,
    /// IDCA iteration cap (the kd-tree height `h`).
    pub max_iterations: usize,
}

impl Scale {
    /// The paper's §VII parameters.
    pub fn paper() -> Self {
        Scale {
            synthetic_n: 10_000,
            iceberg_n: 6_216,
            queries: 100,
            mc_samples: 1_000,
            max_iterations: 8,
        }
    }

    /// A laptop/CI-friendly scale.
    pub fn ci() -> Self {
        Scale {
            synthetic_n: 2_000,
            iceberg_n: 1_500,
            queries: 8,
            mc_samples: 150,
            max_iterations: 6,
        }
    }

    /// An even smaller smoke scale for unit tests of the harness itself.
    pub fn smoke() -> Self {
        Scale {
            synthetic_n: 300,
            iceberg_n: 200,
            queries: 2,
            mc_samples: 40,
            max_iterations: 4,
        }
    }

    /// Synthetic workload config at this scale.
    pub fn synthetic_config(&self, max_extent: f64) -> SyntheticConfig {
        SyntheticConfig {
            n: self.synthetic_n,
            max_extent,
            ..Default::default()
        }
    }

    /// The default synthetic database (max extent 0.004).
    pub fn synthetic_db(&self) -> (Database, SyntheticConfig) {
        let cfg = self.synthetic_config(0.004);
        (cfg.generate(), cfg)
    }

    /// The simulated iceberg database.
    pub fn iceberg_db(&self) -> Database {
        IcebergConfig {
            n: self.iceberg_n,
            ..Default::default()
        }
        .generate()
    }

    /// The paper's query protocol at this scale: `queries` pairs with
    /// target rank 10.
    pub fn query_set(&self, db: &Database, cfg: &SyntheticConfig) -> QuerySet {
        QuerySet::generate(db, cfg, self.queries, 10, LpNorm::L2, 0xCAFE)
    }
}

/// One regenerated figure/table: an x column plus named series.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment id, e.g. `fig6a`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the x column.
    pub x_label: String,
    /// Series names (the curves of the paper's plot).
    pub columns: Vec<String>,
    /// Rows: `(x, series values aligned with columns)`.
    pub rows: Vec<(f64, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the value count does not match the column count.
    pub fn push(&mut self, x: f64, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row arity mismatch");
        self.rows.push((x, values));
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (x, vals) in &self.rows {
            out.push_str(&format!("{x}"));
            for v in vals {
                out.push_str(&format!(",{v:.6}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Times a closure, returning `(seconds, result)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_have_paper_defaults() {
        let p = Scale::paper();
        assert_eq!(p.synthetic_n, 10_000);
        assert_eq!(p.iceberg_n, 6_216);
        assert_eq!(p.queries, 100);
        assert_eq!(p.mc_samples, 1_000);
    }

    #[test]
    fn table_round_trip() {
        let mut t = Table::new("figX", "Test", "k", vec!["a".into(), "b".into()]);
        t.push(1.0, vec![0.5, 0.25]);
        t.push(2.0, vec![0.1, 0.2]);
        let csv = t.to_csv();
        assert!(csv.starts_with("k,a,b\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new("x", "t", "x", vec!["a".into()]);
        t.push(0.0, vec![1.0, 2.0]);
    }

    #[test]
    fn smoke_scale_generates() {
        let s = Scale::smoke();
        let (db, cfg) = s.synthetic_db();
        assert_eq!(db.len(), 300);
        let qs = s.query_set(&db, &cfg);
        assert_eq!(qs.len(), 2);
        assert_eq!(s.iceberg_db().len(), 200);
    }

    #[test]
    fn timing_returns_result() {
        let (secs, v) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
