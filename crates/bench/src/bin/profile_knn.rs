//! Ad-hoc breakdown of the indexed-vs-scan `knn_threshold` cost at ci
//! scale: candidate generation, per-candidate refiner construction (the
//! subtree filter vs the flat scan filter), influence-set sizes and the
//! end-to-end query — the numbers behind the
//! `indexed_early_exit_knn_vs_scan` baseline in `BENCH_idca.json`.
use std::time::Instant;
use udb_bench::Scale;
use udb_core::{Engine, IdcaConfig, ObjRef, QueryEngine, RefineGoal};

fn main() {
    let scale = Scale::ci();
    let cfg = scale.synthetic_config(0.05);
    let db = cfg.generate();
    let qs = scale.query_set(&db, &cfg);
    let r = qs.references[0].clone();
    let knn_cfg = IdcaConfig {
        max_iterations: scale.max_iterations,
        ..Default::default()
    };
    let scan = QueryEngine::with_config(&db, knn_cfg.clone());
    let indexed = Engine::with_config(db.clone(), knn_cfg);
    let (k, tau) = (5usize, 0.3f64);
    let goal = RefineGoal::threshold(k, tau);

    // candidate generation
    let t = Instant::now();
    let mut c1 = Vec::new();
    for _ in 0..50 {
        c1 = scan.knn_candidates(r.mbr(), k);
    }
    println!(
        "scan candidates:    {} in {:.2} ms/call",
        c1.len(),
        t.elapsed().as_secs_f64() / 50.0 * 1e3
    );
    let t = Instant::now();
    let mut c2 = Vec::new();
    for _ in 0..50 {
        c2 = indexed.knn_candidates(r.mbr(), k);
    }
    println!(
        "indexed candidates: {} in {:.2} ms/call",
        c2.len(),
        t.elapsed().as_secs_f64() / 50.0 * 1e3
    );

    // refiner construction (filter + influence build)
    let t = Instant::now();
    for _ in 0..20 {
        for &id in &c1 {
            std::hint::black_box(scan.refiner(
                ObjRef::Db(id),
                ObjRef::External(&r),
                goal.predicate(),
            ));
        }
    }
    println!(
        "scan refiner build (all cands):    {:.2} ms",
        t.elapsed().as_secs_f64() / 20.0 * 1e3
    );
    let t = Instant::now();
    for _ in 0..20 {
        for &id in &c2 {
            std::hint::black_box(indexed.refiner(
                ObjRef::Db(id),
                ObjRef::External(&r),
                goal.predicate(),
            ));
        }
    }
    println!(
        "indexed refiner build (all cands): {:.2} ms",
        t.elapsed().as_secs_f64() / 20.0 * 1e3
    );
    for (name, ids) in [("scan", &c1), ("indexed", &c2)] {
        let inf: usize = ids
            .iter()
            .map(|&id| {
                scan.refiner(ObjRef::Db(id), ObjRef::External(&r), goal.predicate())
                    .influence_ids()
                    .len()
            })
            .sum();
        println!("{name}: total influence objects {inf}");
    }

    // full queries, with the two-tier refinement split per engine
    scan.refine_stats().reset();
    let t = Instant::now();
    for _ in 0..5 {
        std::hint::black_box(scan.knn_threshold(&r, k, tau));
    }
    println!(
        "scan knn_threshold:    {:.1} ms",
        t.elapsed().as_secs_f64() / 5.0 * 1e3
    );
    print_tier_split("scan", scan.refine_stats());
    indexed.refine_stats().reset();
    let t = Instant::now();
    for _ in 0..5 {
        std::hint::black_box(indexed.knn_threshold(&r, k, tau));
    }
    println!(
        "indexed knn_threshold: {:.1} ms",
        t.elapsed().as_secs_f64() / 5.0 * 1e3
    );
    print_tier_split("indexed", indexed.refine_stats());
}

fn print_tier_split(name: &str, stats: &udb_core::RefineStats) {
    println!(
        "{name} rounds: {} tier-1 skipped / {} tier-2 exact ({:.1}% tier-1; \
         prefilter {})",
        stats.tier1_skipped(),
        stats.tier2_exact(),
        stats.tier1_rate() * 100.0,
        if IdcaConfig::default().prefilter {
            "on"
        } else {
            "off"
        },
    );
}
