//! Regenerates the paper's figures as CSV (and optional JSON) tables.
//!
//! ```text
//! experiments [--paper|--ci|--smoke] [--json] [fig5 fig6a ... | all]
//! ```
//!
//! Defaults to `--ci` scale and `all` experiments. Paper scale reproduces
//! §VII's parameters (10k objects, 100 queries, S = 1000) and can run for
//! hours — exactly like the original evaluation.

use std::io::Write;

use udb_bench::experiments::{all_ids, run_by_id};
use udb_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::ci();
    let mut json = false;
    let mut ids: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--paper" => scale = Scale::paper(),
            "--ci" => scale = Scale::ci(),
            "--smoke" => scale = Scale::smoke(),
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--paper|--ci|--smoke] [--json] [{} | all]",
                    all_ids().join(" ")
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = all_ids().iter().map(|s| s.to_string()).collect();
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "# scale: {scale:?}").unwrap();
    for id in &ids {
        match run_by_id(id, &scale) {
            Some(tables) => {
                for t in tables {
                    writeln!(out, "\n## {} — {}", t.id, t.title).unwrap();
                    if json {
                        writeln!(out, "{}", serde_json::to_string_pretty(&t).unwrap()).unwrap();
                    } else {
                        write!(out, "{}", t.to_csv()).unwrap();
                    }
                }
            }
            None => {
                eprintln!(
                    "unknown experiment id: {id} (known: {})",
                    all_ids().join(", ")
                );
                std::process::exit(2);
            }
        }
    }
}
