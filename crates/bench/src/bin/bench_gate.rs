//! CI bench-regression gate: compares freshly measured `bench-*.ndjson`
//! results (one JSON object per line, as written by the criterion
//! stand-in's `UDB_BENCH_JSON` knob) against the committed
//! `BENCH_idca.json` baselines and fails when any tracked median regresses
//! beyond the tolerance band.
//!
//! ```text
//! cargo run -p udb-bench --bin bench_gate -- \
//!     [--baseline BENCH_idca.json] [--scale smoke|ci] [--tolerance 0.25] \
//!     bench-genfunc.ndjson bench-idca.ndjson ...
//! ```
//!
//! * `--baseline` — the committed baseline file (default
//!   `BENCH_idca.json`); its `results_ns_median` map (or
//!   `results_ns_median_ci_scale` with `--scale ci`) lists the tracked
//!   medians in nanoseconds.
//! * `--tolerance` — allowed relative regression on each tracked median
//!   (default `0.25` = fail beyond +25 %). The CI smoke job runs with a
//!   wider band: the recorded baselines pool several runs on a container
//!   with ~1.5× run-to-run clock variance, so a tight band would flap.
//! * Benchmarks present in the run but not in the baseline are reported
//!   as untracked (a nudge to re-record baselines), never a failure;
//!   large *improvements* are reported the same way.
//!
//! Exit status: `0` when every tracked median is inside the band, `1` on
//! any regression, `2` on usage/parse errors — so the gate can be wired
//! directly into a CI step.

use std::process::ExitCode;

use serde_json::Value;

struct Options {
    baseline: String,
    scale: String,
    tolerance: f64,
    runs: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        baseline: "BENCH_idca.json".to_string(),
        scale: "smoke".to_string(),
        tolerance: 0.25,
        runs: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => {
                opts.baseline = args.next().ok_or("--baseline needs a path")?;
            }
            "--scale" => {
                opts.scale = args.next().ok_or("--scale needs smoke|ci")?;
                if !matches!(opts.scale.as_str(), "smoke" | "ci") {
                    return Err(format!("unknown scale `{}` (smoke|ci)", opts.scale));
                }
            }
            "--tolerance" => {
                opts.tolerance = args
                    .next()
                    .ok_or("--tolerance needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad tolerance: {e}"))?;
                if opts.tolerance <= 0.0 || opts.tolerance.is_nan() {
                    return Err("tolerance must be positive".into());
                }
            }
            "--help" | "-h" => {
                return Err("usage: bench_gate [--baseline FILE] [--scale smoke|ci] \
                     [--tolerance FRACTION] <ndjson files...>"
                    .into());
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => opts.runs.push(other.to_string()),
        }
    }
    if opts.runs.is_empty() {
        return Err("no bench result files given (bench-*.ndjson)".into());
    }
    Ok(opts)
}

/// The baseline's tracked medians: `name -> ns`.
fn load_baseline(path: &str, scale: &str) -> Result<Vec<(String, f64)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let doc: Value =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse baseline {path}: {e}"))?;
    let key = match scale {
        "ci" => "results_ns_median_ci_scale",
        _ => "results_ns_median",
    };
    let map = doc
        .field(key)
        .map_err(|e| format!("baseline {path}: {e}"))?;
    match map {
        Value::Map(entries) => entries
            .iter()
            .map(|(name, v)| {
                v.as_f64()
                    .map(|ns| (name.clone(), ns))
                    .map_err(|e| format!("baseline entry `{name}`: {e}"))
            })
            .collect(),
        other => Err(format!("baseline `{key}` is not a map: {other:?}")),
    }
}

/// All `(bench, median_ns)` pairs of one NDJSON results file.
fn load_run(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read results {path}: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let doc: Value = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: bad JSON: {e}", lineno + 1))?;
        let name = match doc.field("bench") {
            Ok(Value::Str(s)) => s.clone(),
            _ => return Err(format!("{path}:{}: missing `bench` field", lineno + 1)),
        };
        let median = doc
            .field("median_ns")
            .and_then(Value::as_f64)
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        out.push((name, median));
    }
    Ok(out)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("bench_gate: {msg}");
            return ExitCode::from(2);
        }
    };
    let baseline = match load_baseline(&opts.baseline, &opts.scale) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("bench_gate: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut current: Vec<(String, f64)> = Vec::new();
    for path in &opts.runs {
        match load_run(path) {
            // a later duplicate (bench re-run appended to the file, or
            // the same bench in two files) overrides the earlier entry
            Ok(results) => {
                for (name, ns) in results {
                    match current.iter_mut().find(|(n, _)| *n == name) {
                        Some(slot) => slot.1 = ns,
                        None => current.push((name, ns)),
                    }
                }
            }
            Err(msg) => {
                eprintln!("bench_gate: {msg}");
                return ExitCode::from(2);
            }
        }
    }

    let lookup =
        |name: &str| -> Option<f64> { baseline.iter().find(|(b, _)| b == name).map(|&(_, ns)| ns) };

    let mut regressions = Vec::new();
    let mut tracked = 0usize;
    let mut untracked = Vec::new();
    println!(
        "bench_gate: {} result(s) vs {} [{}], tolerance +{:.0}%",
        current.len(),
        opts.baseline,
        opts.scale,
        opts.tolerance * 100.0
    );
    for (name, ns) in &current {
        let Some(base) = lookup(name) else {
            untracked.push(name.clone());
            continue;
        };
        tracked += 1;
        let ratio = ns / base;
        let status = if ratio > 1.0 + opts.tolerance {
            regressions.push((name.clone(), ratio));
            "REGRESSED"
        } else if ratio < 1.0 / (1.0 + opts.tolerance) {
            "improved (consider re-recording baselines)"
        } else {
            "ok"
        };
        println!("  {name:<56} {ns:>14.1} ns  vs {base:>14.1} ns  x{ratio:<5.2} {status}");
    }
    if !untracked.is_empty() {
        println!(
            "  untracked (not in baseline, informational): {}",
            untracked.join(", ")
        );
    }
    if tracked == 0 {
        eprintln!("bench_gate: no measured benchmark matches a tracked baseline — wrong scale?");
        return ExitCode::from(2);
    }
    if regressions.is_empty() {
        println!("bench_gate: PASS ({tracked} tracked medians inside the band)");
        ExitCode::SUCCESS
    } else {
        for (name, ratio) in &regressions {
            eprintln!("bench_gate: FAIL {name} regressed x{ratio:.2}");
        }
        ExitCode::from(1)
    }
}
