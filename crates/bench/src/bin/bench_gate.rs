//! CI bench-regression gate: compares freshly measured `bench-*.ndjson`
//! results (one JSON object per line, as written by the criterion
//! stand-in's `UDB_BENCH_JSON` knob) against the committed
//! `BENCH_idca.json` baselines and fails when any tracked median regresses
//! beyond the tolerance band.
//!
//! ```text
//! cargo run -p udb-bench --bin bench_gate -- \
//!     [--baseline BENCH_idca.json] [--scale smoke|ci] [--tolerance 0.25] \
//!     [--relative] [--ratio-tolerance 0.25] \
//!     bench-genfunc.ndjson bench-idca.ndjson ...
//! ```
//!
//! * `--baseline` — the committed baseline file (default
//!   `BENCH_idca.json`); its `results_ns_median` map (or
//!   `results_ns_median_ci_scale` with `--scale ci`) lists the tracked
//!   medians in nanoseconds.
//! * `--tolerance` — allowed relative regression on each tracked median
//!   (default `0.25` = fail beyond +25 %). The CI smoke job runs with a
//!   wider band: the recorded baselines pool several runs on a container
//!   with ~1.5× run-to-run clock variance, so a tight band would flap.
//! * `--relative` — additionally gate the baseline's **ratio pairs**
//!   (`ratio_pairs` / `ratio_pairs_ci_scale`: named
//!   `{num, den, ratio}` entries). The measured ratio is
//!   `min(num) / min(den)` from the *same* NDJSON run: both sides ran
//!   in one process (clock drift cancels) and the per-sample minimum is
//!   the spike-robust cost estimate (timing noise is one-sided) — which
//!   is why ratio pairs hold a tight band (`--ratio-tolerance`, default
//!   `0.25`) while absolute medians keep the wide one. This is the mode
//!   that actually defends the indexed-vs-scan and
//!   batched-vs-sequential wins in CI.
//! * Benchmarks present in the run but not in the baseline are reported
//!   as untracked (a nudge to re-record baselines), never a failure;
//!   large *improvements* are reported the same way.
//!
//! Exit status: `0` when every tracked median is inside the band, `1` on
//! any regression, `2` on usage/parse errors — so the gate can be wired
//! directly into a CI step.

use std::process::ExitCode;

use serde_json::Value;

struct Options {
    baseline: String,
    scale: String,
    tolerance: f64,
    relative: bool,
    ratio_tolerance: f64,
    runs: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        baseline: "BENCH_idca.json".to_string(),
        scale: "smoke".to_string(),
        tolerance: 0.25,
        relative: false,
        ratio_tolerance: 0.25,
        runs: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => {
                opts.baseline = args.next().ok_or("--baseline needs a path")?;
            }
            "--scale" => {
                opts.scale = args.next().ok_or("--scale needs smoke|ci")?;
                if !matches!(opts.scale.as_str(), "smoke" | "ci") {
                    return Err(format!("unknown scale `{}` (smoke|ci)", opts.scale));
                }
            }
            "--tolerance" => {
                opts.tolerance = args
                    .next()
                    .ok_or("--tolerance needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad tolerance: {e}"))?;
                if opts.tolerance <= 0.0 || opts.tolerance.is_nan() {
                    return Err("tolerance must be positive".into());
                }
            }
            "--relative" => {
                opts.relative = true;
            }
            "--ratio-tolerance" => {
                opts.ratio_tolerance = args
                    .next()
                    .ok_or("--ratio-tolerance needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad ratio tolerance: {e}"))?;
                if opts.ratio_tolerance <= 0.0 || opts.ratio_tolerance.is_nan() {
                    return Err("ratio tolerance must be positive".into());
                }
            }
            "--help" | "-h" => {
                return Err("usage: bench_gate [--baseline FILE] [--scale smoke|ci] \
                     [--tolerance FRACTION] [--relative] [--ratio-tolerance FRACTION] \
                     <ndjson files...>"
                    .into());
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => opts.runs.push(other.to_string()),
        }
    }
    if opts.runs.is_empty() {
        return Err("no bench result files given (bench-*.ndjson)".into());
    }
    Ok(opts)
}

/// The baseline's tracked medians: `name -> ns`.
fn load_baseline(path: &str, scale: &str) -> Result<Vec<(String, f64)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let doc: Value =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse baseline {path}: {e}"))?;
    let key = match scale {
        "ci" => "results_ns_median_ci_scale",
        _ => "results_ns_median",
    };
    let map = doc
        .field(key)
        .map_err(|e| format!("baseline {path}: {e}"))?;
    match map {
        Value::Map(entries) => entries
            .iter()
            .map(|(name, v)| {
                v.as_f64()
                    .map(|ns| (name.clone(), ns))
                    .map_err(|e| format!("baseline entry `{name}`: {e}"))
            })
            .collect(),
        other => Err(format!("baseline `{key}` is not a map: {other:?}")),
    }
}

/// One tracked ratio pair: the measured ratio is
/// `min(num) / min(den)` of the same run, gated against the recorded
/// baseline ratio. The *minimum* over samples (not the median) is used
/// on both sides deliberately: timing noise on the CI container is
/// one-sided (a sample can only be measured slower than the code runs,
/// never faster), so the per-sample minimum is the spike-robust
/// estimate of each side's true cost, and the min/min ratio stays tight
/// across runs where sample medians flap.
struct RatioPair {
    name: String,
    num: String,
    den: String,
    baseline: f64,
}

/// The baseline's tracked ratio pairs (`ratio_pairs` /
/// `ratio_pairs_ci_scale`). A baseline without the key is a hard error:
/// a `--relative` gate silently tracking nothing would defend nothing.
fn load_ratio_pairs(path: &str, scale: &str) -> Result<Vec<RatioPair>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let doc: Value =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse baseline {path}: {e}"))?;
    let key = match scale {
        "ci" => "ratio_pairs_ci_scale",
        _ => "ratio_pairs",
    };
    let map = doc
        .field(key)
        .map_err(|e| format!("baseline {path}: {e} (required by --relative)"))?;
    let entries = match map {
        Value::Map(entries) => entries,
        other => return Err(format!("baseline `{key}` is not a map: {other:?}")),
    };
    entries
        .iter()
        .map(|(name, v)| {
            let field_str = |f: &str| -> Result<String, String> {
                match v.field(f) {
                    Ok(Value::Str(s)) => Ok(s.clone()),
                    Ok(other) => Err(format!("ratio pair `{name}`.{f}: not a string: {other:?}")),
                    Err(e) => Err(format!("ratio pair `{name}`: {e}")),
                }
            };
            Ok(RatioPair {
                name: name.clone(),
                num: field_str("num")?,
                den: field_str("den")?,
                baseline: v
                    .field("ratio")
                    .and_then(Value::as_f64)
                    .map_err(|e| format!("ratio pair `{name}`: {e}"))?,
            })
        })
        .collect()
}

/// All `(bench, median_ns, min_ns)` triples of one NDJSON results file.
fn load_run(path: &str) -> Result<Vec<(String, f64, f64)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read results {path}: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let doc: Value = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: bad JSON: {e}", lineno + 1))?;
        let name = match doc.field("bench") {
            Ok(Value::Str(s)) => s.clone(),
            _ => return Err(format!("{path}:{}: missing `bench` field", lineno + 1)),
        };
        let median = doc
            .field("median_ns")
            .and_then(Value::as_f64)
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let min = doc
            .field("min_ns")
            .and_then(Value::as_f64)
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        out.push((name, median, min));
    }
    Ok(out)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("bench_gate: {msg}");
            return ExitCode::from(2);
        }
    };
    let baseline = match load_baseline(&opts.baseline, &opts.scale) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("bench_gate: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut current: Vec<(String, f64, f64)> = Vec::new();
    for path in &opts.runs {
        match load_run(path) {
            // a later duplicate (bench re-run appended to the file, or
            // the same bench in two files) overrides the earlier entry
            Ok(results) => {
                for (name, ns, min_ns) in results {
                    match current.iter_mut().find(|(n, _, _)| *n == name) {
                        Some(slot) => {
                            slot.1 = ns;
                            slot.2 = min_ns;
                        }
                        None => current.push((name, ns, min_ns)),
                    }
                }
            }
            Err(msg) => {
                eprintln!("bench_gate: {msg}");
                return ExitCode::from(2);
            }
        }
    }

    let lookup =
        |name: &str| -> Option<f64> { baseline.iter().find(|(b, _)| b == name).map(|&(_, ns)| ns) };

    let mut regressions = Vec::new();
    let mut tracked = 0usize;
    let mut untracked = Vec::new();
    println!(
        "bench_gate: {} result(s) vs {} [{}], tolerance +{:.0}%",
        current.len(),
        opts.baseline,
        opts.scale,
        opts.tolerance * 100.0
    );
    for (name, ns, _) in &current {
        let Some(base) = lookup(name) else {
            untracked.push(name.clone());
            continue;
        };
        tracked += 1;
        let ratio = ns / base;
        let status = if ratio > 1.0 + opts.tolerance {
            regressions.push((name.clone(), ratio));
            "REGRESSED"
        } else if ratio < 1.0 / (1.0 + opts.tolerance) {
            "improved (consider re-recording baselines)"
        } else {
            "ok"
        };
        println!("  {name:<56} {ns:>14.1} ns  vs {base:>14.1} ns  x{ratio:<5.2} {status}");
    }
    if !untracked.is_empty() {
        println!(
            "  untracked (not in baseline, informational): {}",
            untracked.join(", ")
        );
    }
    if tracked == 0 {
        eprintln!("bench_gate: no measured benchmark matches a tracked baseline — wrong scale?");
        return ExitCode::from(2);
    }

    let mut ratio_regressions: Vec<(String, f64, f64)> = Vec::new();
    if opts.relative {
        let pairs = match load_ratio_pairs(&opts.baseline, &opts.scale) {
            Ok(p) => p,
            Err(msg) => {
                eprintln!("bench_gate: {msg}");
                return ExitCode::from(2);
            }
        };
        if pairs.is_empty() {
            eprintln!("bench_gate: --relative given but the baseline tracks no ratio pairs");
            return ExitCode::from(2);
        }
        println!(
            "bench_gate: {} ratio pair(s), tolerance +{:.0}% (paired per-run sample minima — \
             clock drift and spikes cancel)",
            pairs.len(),
            opts.ratio_tolerance * 100.0
        );
        let mut measured_pairs = 0usize;
        for pair in &pairs {
            let (Some(num), Some(den)) = (
                current.iter().find(|(n, _, _)| *n == pair.num),
                current.iter().find(|(n, _, _)| *n == pair.den),
            ) else {
                println!(
                    "  {:<40} missing {} or {} in this run",
                    pair.name, pair.num, pair.den
                );
                continue;
            };
            measured_pairs += 1;
            let measured = num.2 / den.2;
            let rel = measured / pair.baseline;
            let status = if rel > 1.0 + opts.ratio_tolerance {
                ratio_regressions.push((pair.name.clone(), measured, rel));
                "REGRESSED"
            } else if rel < 1.0 / (1.0 + opts.ratio_tolerance) {
                "improved (consider re-recording ratio baselines)"
            } else {
                "ok"
            };
            println!(
                "  {:<40} ratio {measured:<6.3} vs baseline {:<6.3}  x{rel:<5.2} {status}",
                pair.name, pair.baseline
            );
        }
        if measured_pairs == 0 {
            // a relative gate measuring nothing defends nothing — same
            // hard error as a baseline without the ratio_pairs key
            eprintln!(
                "bench_gate: --relative given but no tracked ratio pair could be measured \
                 (renamed benches, or a results file missing from the invocation?)"
            );
            return ExitCode::from(2);
        }
    }

    if regressions.is_empty() && ratio_regressions.is_empty() {
        println!("bench_gate: PASS ({tracked} tracked medians inside the band)");
        ExitCode::SUCCESS
    } else {
        for (name, ratio) in &regressions {
            eprintln!("bench_gate: FAIL {name} regressed x{ratio:.2}");
        }
        for (name, measured, rel) in &ratio_regressions {
            eprintln!("bench_gate: FAIL ratio {name} now {measured:.3} (x{rel:.2} vs baseline)");
        }
        ExitCode::from(1)
    }
}
