//! Ad-hoc breakdown of the depth-4 full-run cost: per-iteration step()
//! and snapshot() timings for the incremental and from-scratch paths.

use std::time::Instant;
use udb_bench::Scale;
use udb_core::{IdcaConfig, ObjRef, Predicate, Refiner};

fn main() {
    let scale = Scale::smoke();
    let cfg = scale.synthetic_config(0.05);
    let db = cfg.generate();
    let qs = scale.query_set(&db, &cfg);
    let (r, b) = (qs.references[0].clone(), qs.targets[0]);
    let depth = 4usize;
    let mk_cfg = || IdcaConfig {
        max_iterations: depth,
        uncertainty_target: 0.0,
        ..Default::default()
    };

    let reps = 200;
    for mode in ["incremental", "scratch"] {
        let mut filter_t = 0.0f64;
        let mut step_t = vec![0.0f64; depth];
        let mut snap_t = vec![0.0f64; depth + 1];
        for _ in 0..reps {
            let t = Instant::now();
            let mut refiner = Refiner::new(
                &db,
                ObjRef::Db(b),
                ObjRef::External(&r),
                mk_cfg(),
                Predicate::FullPdf,
            );
            filter_t += t.elapsed().as_secs_f64();
            let t = Instant::now();
            let snap = if mode == "incremental" {
                refiner.snapshot()
            } else {
                refiner.snapshot_from_scratch()
            };
            std::hint::black_box(snap);
            snap_t[0] += t.elapsed().as_secs_f64();
            for i in 0..depth {
                let t = Instant::now();
                refiner.step();
                step_t[i] += t.elapsed().as_secs_f64();
                let t = Instant::now();
                let snap = if mode == "incremental" {
                    refiner.snapshot()
                } else {
                    refiner.snapshot_from_scratch()
                };
                std::hint::black_box(snap);
                snap_t[i + 1] += t.elapsed().as_secs_f64();
            }
        }
        let us = |x: f64| x / reps as f64 * 1e6;
        println!("== {mode}");
        println!("  filter       {:8.1} us", us(filter_t));
        for i in 0..depth {
            println!(
                "  step {i}->{}   {:8.1} us   snapshot@{}  {:8.1} us",
                i + 1,
                us(step_t[i]),
                i + 1,
                us(snap_t[i + 1])
            );
        }
        println!("  snapshot@0   {:8.1} us", us(snap_t[0]));
        if mode == "incremental" {
            let mut refiner = Refiner::new(
                &db,
                ObjRef::Db(b),
                ObjRef::External(&r),
                mk_cfg(),
                Predicate::FullPdf,
            );
            let _ = refiner.snapshot();
            for d in 1..=depth {
                refiner.step();
                let _ = refiner.snapshot();
                let (open, scratch_tests) = refiner.open_stats();
                let (settled, slots) = refiner.cache_stats();
                println!(
                    "  depth {d}: open refs {open} (scratch would test {scratch_tests}), settled slots {settled}/{slots}"
                );
            }
        }
        let total: f64 = us(filter_t)
            + step_t.iter().map(|&x| us(x)).sum::<f64>()
            + snap_t.iter().map(|&x| us(x)).sum::<f64>();
        println!("  total        {total:8.1} us");
    }
}
