//! One module per figure of the paper's evaluation, plus ablations.

#![allow(clippy::needless_range_loop)]
pub mod ablation;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;

use crate::harness::{Scale, Table};

/// Runs an experiment by id; `None` for unknown ids.
pub fn run_by_id(id: &str, scale: &Scale) -> Option<Vec<Table>> {
    Some(match id {
        "fig5" => vec![fig5::run(scale)],
        "fig6a" => vec![fig6::run_candidates(scale)],
        "fig6b" => vec![fig6::run_uncertainty(scale)],
        "fig7a" => vec![fig7::run_synthetic(scale)],
        "fig7b" => vec![fig7::run_iceberg(scale)],
        "fig8" => vec![fig8::run(scale)],
        "fig9a" => vec![fig9::run_influence(scale)],
        "fig9b" => vec![fig9::run_dbsize(scale)],
        "ablation" => vec![
            ablation::ugf_vs_two_gf(scale),
            ablation::split_strategy(scale),
            ablation::truncation(scale),
        ],
        _ => return None,
    })
}

/// All experiment ids in paper order.
pub fn all_ids() -> &'static [&'static str] {
    &[
        "fig5", "fig6a", "fig6b", "fig7a", "fig7b", "fig8", "fig9a", "fig9b", "ablation",
    ]
}
