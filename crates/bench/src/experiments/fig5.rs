//! Figure 5: runtime of the Monte-Carlo approach for increasing sample
//! size.
//!
//! Paper shape: per-query runtime grows superlinearly with the sample
//! count (the exact per-sample-pair generating function dominates),
//! reaching hundreds of seconds at S = 1500 on the authors' testbed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use udb_mc::MonteCarlo;

use crate::harness::{time, Scale, Table};

/// Sample-size sweep relative to the scale's default `mc_samples`.
pub const SAMPLE_FRACTIONS: [f64; 6] = [0.1, 0.25, 0.5, 0.75, 1.0, 1.5];

/// Runs the experiment.
pub fn run(scale: &Scale) -> Table {
    let (db, cfg) = scale.synthetic_db();
    let qs = scale.query_set(&db, &cfg);
    let mut table = Table::new(
        "fig5",
        "Runtime of MC for increasing sample size",
        "samples",
        vec!["mc_runtime_sec_per_query".into()],
    );
    for frac in SAMPLE_FRACTIONS {
        let samples = ((scale.mc_samples as f64 * frac) as usize).max(10);
        let mc = MonteCarlo {
            samples,
            ..Default::default()
        };
        let mut total = 0.0;
        for (i, (r, b)) in qs.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(500 + i as u64);
            let (secs, _) = time(|| mc.domination_count(&db, b, r, &mut rng));
            total += secs;
        }
        table.push(samples as f64, vec![total / qs.len() as f64]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_monotone_trend() {
        let t = run(&Scale::smoke());
        assert_eq!(t.rows.len(), SAMPLE_FRACTIONS.len());
        // runtime at the largest sample size exceeds the smallest
        let first = t.rows.first().unwrap().1[0];
        let last = t.rows.last().unwrap().1[0];
        assert!(last > first, "expected growth: {first} -> {last}");
    }
}
