//! Figure 9: impact of influencing objects.
//!
//! (a) per-iteration runtime as the number of influence objects grows
//! (controlled through the distance between Q and B, i.e. the MinDist
//! rank of the target); (b) per-iteration runtime for growing database
//! sizes. Paper shape: runtime grows with both, roughly one order of
//! magnitude per added iteration, and IDCA scales gracefully with the
//! number of influencing objects.

use udb_core::{IdcaConfig, ObjRef, Predicate, Refiner};
use udb_geometry::LpNorm;
use udb_object::Database;
use udb_workload::{QuerySet, SyntheticConfig};

use crate::harness::{time, Scale, Table};

/// Target MinDist ranks used to vary the Q–B distance in Figure 9(a).
pub const RANKS: [usize; 4] = [10, 40, 100, 250];

/// Database-size multipliers for Figure 9(b) (paper: 20k..100k = 2×..10×
/// the 10k default).
pub const SIZE_FACTORS: [f64; 4] = [1.0, 2.0, 5.0, 10.0];

fn iteration_columns(iters: usize) -> Vec<String> {
    let mut cols: Vec<String> = (1..=iters).map(|i| format!("iter{i}_sec")).collect();
    cols.insert(0, "influence_objects".into());
    cols
}

/// Measures per-iteration runtimes, returning
/// `(avg influence count, per-iteration seconds)`.
fn measure(
    db: &Database,
    queries: &[(udb_object::UncertainObject, udb_object::ObjectId)],
    iters: usize,
) -> (f64, Vec<f64>) {
    let mut inf = 0.0;
    let mut per_iter = vec![0.0f64; iters];
    for (r, b) in queries {
        let mut refiner = Refiner::new(
            db,
            ObjRef::Db(*b),
            ObjRef::External(r),
            IdcaConfig {
                max_iterations: iters,
                uncertainty_target: 0.0,
                ..Default::default()
            },
            Predicate::FullPdf,
        );
        inf += refiner.influence_ids().len() as f64;
        for (it, slot) in per_iter.iter_mut().enumerate() {
            let _ = it;
            let (secs, _) = time(|| {
                refiner.step();
                refiner.snapshot()
            });
            *slot += secs;
        }
    }
    let n = queries.len() as f64;
    (inf / n, per_iter.into_iter().map(|t| t / n).collect())
}

/// Figure 9(a): runtime w.r.t. the number of influence objects.
pub fn run_influence(scale: &Scale) -> Table {
    // extent 0.002 per the paper's setting for this experiment
    let cfg = scale.synthetic_config(0.002);
    let db = cfg.generate();
    let iters = scale.max_iterations;
    let mut table = Table::new(
        "fig9a",
        "Runtime per iteration w.r.t. number of influence objects",
        "target_rank",
        iteration_columns(iters),
    );
    for &rank in &RANKS {
        if rank >= db.len() {
            continue;
        }
        let qs = QuerySet::generate(&db, &cfg, scale.queries, rank, LpNorm::L2, 0xF19A);
        let queries: Vec<_> = qs.iter().map(|(r, b)| (r.clone(), b)).collect();
        let (inf, per_iter) = measure(&db, &queries, iters);
        let mut vals = vec![inf];
        vals.extend(per_iter);
        table.push(rank as f64, vals);
    }
    table
}

/// Figure 9(b): runtime w.r.t. database size.
pub fn run_dbsize(scale: &Scale) -> Table {
    let iters = scale.max_iterations;
    let mut table = Table::new(
        "fig9b",
        "Runtime per iteration for different database sizes",
        "db_size",
        iteration_columns(iters),
    );
    for &factor in &SIZE_FACTORS {
        let n = ((scale.synthetic_n as f64 * factor) as usize).max(50);
        let cfg = SyntheticConfig {
            n,
            max_extent: 0.002,
            ..Default::default()
        };
        let db = cfg.generate();
        let qs = QuerySet::generate(&db, &cfg, scale.queries, 10, LpNorm::L2, 0xF19B);
        let queries: Vec<_> = qs.iter().map(|(r, b)| (r.clone(), b)).collect();
        let (inf, per_iter) = measure(&db, &queries, iters);
        let mut vals = vec![inf];
        vals.extend(per_iter);
        table.push(n as f64, vals);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn influence_grows_with_rank() {
        let t = run_influence(&Scale::smoke());
        assert!(t.rows.len() >= 2);
        let first = t.rows.first().unwrap().1[0];
        let last = t.rows.last().unwrap().1[0];
        assert!(
            last >= first,
            "influence should not shrink with rank: {first} -> {last}"
        );
    }

    #[test]
    fn dbsize_rows_cover_factors() {
        let t = run_dbsize(&Scale::smoke());
        assert_eq!(t.rows.len(), SIZE_FACTORS.len());
    }

    /// Helper used by `measure`: the rank-based query helper must agree
    /// with a direct scan.
    #[test]
    fn rank_helper_consistency() {
        let cfg = SyntheticConfig {
            n: 100,
            ..Default::default()
        };
        let db = cfg.generate();
        let r = db.get(udb_object::ObjectId(0)).clone();
        let b = udb_workload::target_by_min_dist_rank(&db, &r, 1, LpNorm::L2).unwrap();
        // rank 1 w.r.t. an object from the database is the object itself
        // (MinDist 0)
        let d = db.get(b).mbr().min_dist_rect(r.mbr(), LpNorm::L2);
        assert_eq!(d, 0.0);
    }
}
