//! Figure 8: runtimes of IDCA and MC for threshold predicates
//! `P(B ∈ kNN(Q)) > τ` with τ ∈ {0.25, 0.5, 0.75} over varying `k`.
//!
//! Paper shape: with a predicate, IDCA terminates the refinement early in
//! most cases and runs orders of magnitude below MC for every setting;
//! MC's runtime is flat in `k` (it always computes the full PDF).

use rand::rngs::StdRng;
use rand::SeedableRng;
use udb_core::{IdcaConfig, ObjRef, Predicate, Refiner};
use udb_mc::MonteCarlo;

use crate::harness::{time, Scale, Table};

/// The probability thresholds of the figure.
pub const TAUS: [f64; 3] = [0.25, 0.5, 0.75];

/// The k sweep (paper: 1..25).
pub const KS: [usize; 5] = [1, 5, 10, 17, 25];

/// Runs the experiment.
pub fn run(scale: &Scale) -> Table {
    let (db, cfg) = scale.synthetic_db();
    let qs = scale.query_set(&db, &cfg);
    let nq = qs.len() as f64;
    let mut table = Table::new(
        "fig8",
        "Runtimes of IDCA and MC for query predicates (k, tau)",
        "k",
        vec![
            "idca_tau_0.25_sec".into(),
            "idca_tau_0.50_sec".into(),
            "idca_tau_0.75_sec".into(),
            "mc_sec".into(),
        ],
    );
    let mc = MonteCarlo {
        samples: scale.mc_samples,
        ..Default::default()
    };
    for &k in &KS {
        let mut vals = Vec::with_capacity(4);
        for &tau in &TAUS {
            let mut total = 0.0;
            for (r, b) in qs.iter() {
                let (secs, _snap) = time(|| {
                    Refiner::new(
                        &db,
                        ObjRef::Db(b),
                        ObjRef::External(r),
                        IdcaConfig {
                            max_iterations: scale.max_iterations,
                            uncertainty_target: 0.0,
                            ..Default::default()
                        },
                        Predicate::Threshold { k, tau },
                    )
                    .run()
                });
                total += secs;
            }
            vals.push(total / nq);
        }
        // MC computes the full PDF regardless of the predicate
        let mut total = 0.0;
        for (i, (r, b)) in qs.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(900 + i as u64);
            let (secs, _) = time(|| mc.domination_count(&db, b, r, &mut rng));
            total += secs;
        }
        vals.push(total / nq);
        table.push(k as f64, vals);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idca_beats_mc_on_average() {
        let t = run(&Scale::smoke());
        let mut idca_total = 0.0;
        let mut mc_total = 0.0;
        for (_, vals) in &t.rows {
            idca_total += (vals[0] + vals[1] + vals[2]) / 3.0;
            mc_total += vals[3];
        }
        assert!(
            idca_total < mc_total,
            "IDCA {idca_total} should undercut MC {mc_total}"
        );
    }
}
