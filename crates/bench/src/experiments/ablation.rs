//! Ablations for the design choices DESIGN.md calls out.

use udb_core::{IdcaConfig, ObjRef, Predicate, Refiner};
use udb_domination::{pdom_bounds_vs_fixed, DominationCriterion};
use udb_genfunc::{two_gf_bounds, Ugf};
use udb_geometry::LpNorm;
use udb_object::{Decomposition, SplitStrategy};

use crate::harness::{time, Scale, Table};

/// UGF vs the two-regular-GF bounding scheme (the technical-report claim
/// summarized in §IV-D): per decomposition depth, the average accumulated
/// uncertainty of the domination-count bounds produced from the *same*
/// per-object probability bounds.
pub fn ugf_vs_two_gf(scale: &Scale) -> Table {
    let (db, cfg) = scale.synthetic_db();
    let qs = scale.query_set(&db, &cfg);
    let depths = scale.max_iterations.min(5);
    let mut table = Table::new(
        "ablation_ugf_vs_two_gf",
        "Uncertainty of UGF vs two-regular-GF bounds per decomposition depth",
        "depth",
        vec!["ugf_uncertainty".into(), "two_gf_uncertainty".into()],
    );
    for depth in 0..=depths {
        let mut ugf_unc = 0.0;
        let mut two_unc = 0.0;
        let mut measurements = 0usize;
        for (r, b_id) in qs.iter() {
            let refiner = Refiner::new(
                &db,
                ObjRef::Db(b_id),
                ObjRef::External(r),
                IdcaConfig::default(),
                Predicate::FullPdf,
            );
            let influence: Vec<_> = refiner.influence_ids().collect();
            if influence.is_empty() {
                continue;
            }
            // per-object bounds with B, R undecomposed and each A at the
            // given depth — exactly the Lemma 3 configuration
            let b_obj = db.get(b_id);
            let mut lbs = Vec::with_capacity(influence.len());
            let mut ubs = Vec::with_capacity(influence.len());
            for id in &influence {
                let a = db.get(*id);
                let mut dec = Decomposition::new(a.pdf());
                dec.expand_to(a.pdf(), depth);
                let bounds = pdom_bounds_vs_fixed(
                    &dec.partitions(),
                    b_obj.mbr(),
                    r.mbr(),
                    LpNorm::L2,
                    DominationCriterion::Optimal,
                );
                lbs.push(bounds.lower);
                ubs.push(bounds.upper);
            }
            let mut ugf = Ugf::new(None);
            for (l, u) in lbs.iter().zip(ubs.iter()) {
                ugf.multiply(*l, *u);
            }
            ugf_unc += ugf.count_bounds(influence.len() + 1).uncertainty();
            two_unc += two_gf_bounds(&lbs, &ubs).uncertainty();
            measurements += 1;
        }
        if measurements == 0 {
            continue;
        }
        table.push(
            depth as f64,
            vec![ugf_unc / measurements as f64, two_unc / measurements as f64],
        );
    }
    table
}

/// kd-tree split-strategy ablation: accumulated uncertainty per iteration
/// for round-robin vs longest-extent axis selection.
pub fn split_strategy(scale: &Scale) -> Table {
    let (db, cfg) = scale.synthetic_db();
    let qs = scale.query_set(&db, &cfg);
    let iters = scale.max_iterations;
    let mut sums = vec![[0.0f64; 2]; iters + 1];
    for (r, b) in qs.iter() {
        for (slot, strat) in [SplitStrategy::LongestExtent, SplitStrategy::RoundRobin]
            .iter()
            .enumerate()
        {
            let mut refiner = Refiner::new(
                &db,
                ObjRef::Db(b),
                ObjRef::External(r),
                IdcaConfig {
                    split_strategy: *strat,
                    max_iterations: iters,
                    uncertainty_target: 0.0,
                    ..Default::default()
                },
                Predicate::FullPdf,
            );
            sums[0][slot] += refiner.snapshot().uncertainty();
            for it in 1..=iters {
                refiner.step();
                sums[it][slot] += refiner.snapshot().uncertainty();
            }
        }
    }
    let n = qs.len() as f64;
    let mut table = Table::new(
        "ablation_split_strategy",
        "Uncertainty per iteration: longest-extent vs round-robin splits",
        "iteration",
        vec!["longest_extent".into(), "round_robin".into()],
    );
    for (it, s) in sums.iter().enumerate() {
        table.push(it as f64, vec![s[0] / n, s[1] / n]);
    }
    table
}

/// UGF truncation ablation (§VI): full-PDF refinement vs the
/// `O(k²·|Cand|)` truncated variant, per `k`.
pub fn truncation(scale: &Scale) -> Table {
    let (db, cfg) = scale.synthetic_db();
    let qs = scale.query_set(&db, &cfg);
    let nq = qs.len() as f64;
    let mut table = Table::new(
        "ablation_truncation",
        "Runtime: full PDF vs k-truncated UGF refinement",
        "k",
        vec!["full_pdf_sec".into(), "truncated_sec".into()],
    );
    for k in [1usize, 5, 10] {
        let mut full_t = 0.0;
        let mut trunc_t = 0.0;
        for (r, b) in qs.iter() {
            let mk = |pred| {
                Refiner::new(
                    &db,
                    ObjRef::Db(b),
                    ObjRef::External(r),
                    IdcaConfig {
                        max_iterations: scale.max_iterations,
                        uncertainty_target: 0.0,
                        ..Default::default()
                    },
                    pred,
                )
            };
            let (tf, _) = time(|| mk(Predicate::FullPdf).run());
            let (tt, _) = time(|| mk(Predicate::CountBelow { k }).run());
            full_t += tf;
            trunc_t += tt;
        }
        table.push(k as f64, vec![full_t / nq, trunc_t / nq]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ugf_never_looser_than_two_gf() {
        let t = ugf_vs_two_gf(&Scale::smoke());
        for (depth, vals) in &t.rows {
            assert!(
                vals[0] <= vals[1] + 1e-9,
                "UGF {} > two-GF {} at depth {depth}",
                vals[0],
                vals[1]
            );
        }
    }

    #[test]
    fn split_strategy_produces_rows() {
        let t = split_strategy(&Scale::smoke());
        assert_eq!(t.rows.len(), Scale::smoke().max_iterations + 1);
    }

    #[test]
    fn truncation_runs() {
        let t = truncation(&Scale::smoke());
        assert_eq!(t.rows.len(), 3);
    }
}
