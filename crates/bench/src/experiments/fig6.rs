//! Figure 6: optimal vs MinMax decision criterion.
//!
//! (a) objects remaining after the spatial filter step, for growing object
//! extents — the paper reports ≈ 20 % more pruning for the optimal
//! criterion; (b) accumulated uncertainty of the result per refinement
//! iteration — the optimal criterion stays below MinMax at every
//! iteration and both converge toward zero.

use udb_core::{IdcaConfig, ObjRef, Predicate, Refiner};
use udb_domination::DominationCriterion;

use crate::harness::{Scale, Table};

/// Extent sweep of Figure 6(a) (the paper plots 0..0.01).
pub const EXTENTS: [f64; 5] = [0.002, 0.004, 0.006, 0.008, 0.01];

fn config(criterion: DominationCriterion, scale: &Scale) -> IdcaConfig {
    IdcaConfig {
        criterion,
        max_iterations: scale.max_iterations,
        uncertainty_target: 0.0,
        ..Default::default()
    }
}

/// Figure 6(a): candidates (influence objects) after the filter step.
pub fn run_candidates(scale: &Scale) -> Table {
    let mut table = Table::new(
        "fig6a",
        "Candidates after spatial pruning: Optimal vs MinMax",
        "max_extent",
        vec!["optimal".into(), "minmax".into()],
    );
    for extent in EXTENTS {
        let cfg = scale.synthetic_config(extent);
        let db = cfg.generate();
        let qs = scale.query_set(&db, &cfg);
        let mut counts = [0.0f64; 2];
        for (r, b) in qs.iter() {
            for (slot, crit) in [DominationCriterion::Optimal, DominationCriterion::MinMax]
                .iter()
                .enumerate()
            {
                let refiner = Refiner::new(
                    &db,
                    ObjRef::Db(b),
                    ObjRef::External(r),
                    config(*crit, scale),
                    Predicate::FullPdf,
                );
                counts[slot] += refiner.influence_ids().len() as f64;
            }
        }
        let n = qs.len() as f64;
        table.push(extent, vec![counts[0] / n, counts[1] / n]);
    }
    table
}

/// Figure 6(b): accumulated uncertainty per iteration.
pub fn run_uncertainty(scale: &Scale) -> Table {
    let (db, cfg) = scale.synthetic_db();
    let qs = scale.query_set(&db, &cfg);
    let iters = scale.max_iterations;
    let mut sums = vec![[0.0f64; 2]; iters + 1];
    for (r, b) in qs.iter() {
        for (slot, crit) in [DominationCriterion::Optimal, DominationCriterion::MinMax]
            .iter()
            .enumerate()
        {
            let mut refiner = Refiner::new(
                &db,
                ObjRef::Db(b),
                ObjRef::External(r),
                config(*crit, scale),
                Predicate::FullPdf,
            );
            sums[0][slot] += refiner.snapshot().uncertainty();
            for it in 1..=iters {
                refiner.step();
                sums[it][slot] += refiner.snapshot().uncertainty();
            }
        }
    }
    let n = qs.len() as f64;
    let mut table = Table::new(
        "fig6b",
        "Accumulated uncertainty per iteration: Optimal vs MinMax",
        "iteration",
        vec!["optimal".into(), "minmax".into()],
    );
    for (it, s) in sums.iter().enumerate() {
        table.push(it as f64, vec![s[0] / n, s[1] / n]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_prunes_at_least_as_much() {
        let t = run_candidates(&Scale::smoke());
        for (x, vals) in &t.rows {
            assert!(
                vals[0] <= vals[1] + 1e-9,
                "optimal {} > minmax {} at extent {x}",
                vals[0],
                vals[1]
            );
        }
    }

    #[test]
    fn uncertainty_decreases_with_iterations() {
        let t = run_uncertainty(&Scale::smoke());
        let first = t.rows.first().unwrap().1.clone();
        let last = t.rows.last().unwrap().1.clone();
        assert!(last[0] <= first[0] + 1e-9);
        assert!(last[1] <= first[1] + 1e-9);
        // optimal at least as tight as minmax everywhere
        for (_, vals) in &t.rows {
            assert!(vals[0] <= vals[1] + 1e-9);
        }
    }
}
