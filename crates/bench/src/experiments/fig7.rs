//! Figure 7: IDCA approximation quality vs the fraction of MC runtime,
//! for several MC sample sizes, on synthetic and (simulated) iceberg
//! data.
//!
//! Paper shape: the average per-influence-object uncertainty drops
//! rapidly within the first iterations, at a small fraction of the MC
//! runtime; squeezing out the last uncertainty costs disproportionally
//! more.

use rand::rngs::StdRng;
use rand::SeedableRng;
use udb_core::{IdcaConfig, ObjRef, Predicate, Refiner};
use udb_geometry::LpNorm;
use udb_mc::MonteCarlo;
use udb_object::{Database, ObjectId, UncertainObject};
use udb_workload::target_by_min_dist_rank;

use crate::harness::{time, Scale, Table};

/// Sample-size multipliers relative to `scale.mc_samples` (the paper uses
/// absolute 100 / 500 / 1000 with a 1000 default).
pub const SAMPLE_FRACTIONS: [f64; 3] = [0.1, 0.5, 1.0];

fn run_on(
    id: &str,
    title: &str,
    db: &Database,
    queries: &[(UncertainObject, ObjectId)],
    scale: &Scale,
) -> Table {
    let iters = scale.max_iterations;
    let mut columns = Vec::new();
    for f in SAMPLE_FRACTIONS {
        let s = ((scale.mc_samples as f64 * f) as usize).max(10);
        columns.push(format!("frac_of_mc_s{s}"));
        columns.push(format!("avg_uncertainty_s{s}"));
    }
    let mut table = Table::new(id, title, "iteration", columns);

    // per iteration: cumulative IDCA runtime and avg uncertainty
    let mut idca_time = vec![0.0f64; iters + 1];
    let mut idca_unc = vec![0.0f64; iters + 1];
    for (qi, (r, b)) in queries.iter().enumerate() {
        let _ = qi;
        let mut refiner = Refiner::new(
            db,
            ObjRef::Db(*b),
            ObjRef::External(r),
            IdcaConfig {
                max_iterations: iters,
                uncertainty_target: 0.0,
                ..Default::default()
            },
            Predicate::FullPdf,
        );
        let (t0, snap0) = time(|| refiner.snapshot());
        let n_inf = snap0.influence_count.max(1) as f64;
        let mut cum = t0;
        idca_time[0] += cum;
        idca_unc[0] += snap0.uncertainty() / n_inf;
        for it in 1..=iters {
            let (t, snap) = time(|| {
                refiner.step();
                refiner.snapshot()
            });
            cum += t;
            idca_time[it] += cum;
            idca_unc[it] += snap.uncertainty() / n_inf;
        }
    }

    // MC reference runtimes per sample size
    let nq = queries.len() as f64;
    let mut mc_times = Vec::new();
    for f in SAMPLE_FRACTIONS {
        let s = ((scale.mc_samples as f64 * f) as usize).max(10);
        let mc = MonteCarlo {
            samples: s,
            ..Default::default()
        };
        let mut total = 0.0;
        for (i, (r, b)) in queries.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(700 + i as u64);
            let (secs, _) = time(|| mc.domination_count(db, *b, r, &mut rng));
            total += secs;
        }
        mc_times.push(total / nq);
    }

    for it in 0..=iters {
        let mut vals = Vec::new();
        for &mc_t in &mc_times {
            vals.push((idca_time[it] / nq) / mc_t.max(1e-12));
            vals.push(idca_unc[it] / nq);
        }
        table.push(it as f64, vals);
    }
    table
}

/// Figure 7(a): synthetic data.
pub fn run_synthetic(scale: &Scale) -> Table {
    let (db, cfg) = scale.synthetic_db();
    let qs = scale.query_set(&db, &cfg);
    let queries: Vec<(UncertainObject, ObjectId)> =
        qs.iter().map(|(r, b)| (r.clone(), b)).collect();
    run_on(
        "fig7a",
        "Uncertainty of IDCA w.r.t. relative runtime to MC (synthetic)",
        &db,
        &queries,
        scale,
    )
}

/// Figure 7(b): simulated iceberg data. Reference objects are database
/// objects themselves (the paper queries the real dataset); the target is
/// the rank-11 MinDist object, which excludes the reference itself (rank
/// 1 at distance 0) and matches the synthetic rank-10 protocol.
pub fn run_iceberg(scale: &Scale) -> Table {
    let db = scale.iceberg_db();
    let step = (db.len() / scale.queries.max(1)).max(1);
    let queries: Vec<(UncertainObject, ObjectId)> = (0..scale.queries)
        .map(|i| {
            let rid = ObjectId(((i * step) % db.len()) as u32);
            let r = db.get(rid).clone();
            let b = target_by_min_dist_rank(&db, &r, 11, LpNorm::L2)
                .expect("iceberg db has > 11 objects");
            (r, b)
        })
        .collect();
    run_on(
        "fig7b",
        "Uncertainty of IDCA w.r.t. relative runtime to MC (iceberg)",
        &db,
        &queries,
        scale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_uncertainty_drops_fast() {
        let t = run_synthetic(&Scale::smoke());
        // uncertainty columns are the odd indices; must be non-increasing
        let first = &t.rows.first().unwrap().1;
        let last = &t.rows.last().unwrap().1;
        for i in (1..first.len()).step_by(2) {
            assert!(last[i] <= first[i] + 1e-9, "column {i}");
        }
    }

    #[test]
    fn iceberg_runs() {
        let t = run_iceberg(&Scale::smoke());
        assert_eq!(t.rows.len(), Scale::smoke().max_iterations + 1);
    }
}
