//! Two-tier refinement: the tier-1 min/max prefilter
//! ([`IdcaConfig::prefilter`]) against the exact-every-round baseline on
//! the same indexed kNN threshold query. Both sides return bit-identical
//! results (property-tested in `tests/prefilter_equivalence.rs`); the
//! prefilter side replaces the exact UGF snapshot of provably
//! undecidable rounds with an O(n) bracket pass, so its win scales with
//! the tier-1 decision rate (printed per run, recorded in the
//! BENCH_idca.json meta). The ratio of per-run sample minima is the
//! `prefilter_vs_exact` pair `bench_gate --relative` tracks — it must
//! stay at or below parity.
//!
//! `UDB_BENCH_SCALE=ci` switches from the smoke workload to the larger
//! CI scale (2,000 objects), `paper` to the full 10,000.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use udb_bench::Scale;
use udb_core::{Engine, IdcaConfig};

fn bench_prefilter(c: &mut Criterion) {
    let scale = match std::env::var("UDB_BENCH_SCALE").as_deref() {
        Ok("ci") => Scale::ci(),
        Ok("paper") => Scale::paper(),
        _ => Scale::smoke(),
    };
    // the denser extent the idca bench uses, so queries carry a
    // realistic influence-object set into refinement
    let cfg = scale.synthetic_config(0.05);
    let db = cfg.generate();
    let qs = scale.query_set(&db, &cfg);
    // several references per iteration: the tier-1 decision rate varies
    // per query, so a single reference would measure one query's luck
    // rather than the workload-level win
    let refs: Vec<_> = qs.references.iter().take(4).cloned().collect();
    let (k, tau) = (5usize, 0.3f64);

    let mk_engine = |prefilter: bool| {
        Engine::with_config(
            db.clone(),
            IdcaConfig {
                max_iterations: scale.max_iterations,
                decomp_cache_entries: 0,
                prefilter,
                ..Default::default()
            },
        )
    };
    let exact = mk_engine(false);
    let two_tier = mk_engine(true);

    let mut g = c.benchmark_group("idca_prefilter");
    g.sample_size(20);
    g.bench_function("knn_threshold_exact", |bench| {
        bench.iter(|| {
            for r in &refs {
                black_box(exact.knn_threshold(r, k, tau));
            }
        })
    });
    g.bench_function("knn_threshold_prefilter", |bench| {
        bench.iter(|| {
            for r in &refs {
                black_box(two_tier.knn_threshold(r, k, tau));
            }
        })
    });
    g.finish();

    // the measured two-tier split behind the ratio (per-round rate over
    // the reference set; stable across iterations, so read once after
    // the timed loop)
    let stats = two_tier.refine_stats();
    println!(
        "idca_prefilter tier split: {} tier-1 skipped / {} tier-2 exact ({:.1}% tier-1)",
        stats.tier1_skipped(),
        stats.tier2_exact(),
        stats.tier1_rate() * 100.0
    );
}

criterion_group!(benches, bench_prefilter);
criterion_main!(benches);
