//! Query-stream serving throughput: the batched engine
//! ([`udb_core::IndexedEngine::run_batch`] via
//! [`udb_workload::serve_stream`]) against the per-query entry points,
//! on a hot-spot-skewed mixed stream — the workload shape the batched
//! path's shared work (grouped R-tree descent, cross-query
//! decomposition cache, recycled refiner arenas) is built for. Both
//! modes return bit-identical results (property-tested in
//! `tests/batch_equivalence.rs`); the ratio of the two medians is the
//! `serve_stream_batched_vs_sequential` pair `bench_gate --relative`
//! tracks.
//!
//! `UDB_BENCH_SCALE=ci` switches from the smoke workload to the larger
//! CI scale (2,000 objects), `paper` to the full 10,000.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use udb_bench::Scale;
use udb_core::{IdcaConfig, IndexedEngine};
use udb_workload::{serve_stream, PdfKind, QueryStreamConfig, ServeMode, SyntheticConfig};

/// Benches one workload's sequential-vs-batched serving pair.
fn serve_pair(c: &mut Criterion, group: &str, object_cfg: &SyntheticConfig, max_iterations: usize) {
    let db = object_cfg.generate();
    let engine = IndexedEngine::with_config(
        &db,
        IdcaConfig {
            max_iterations,
            ..Default::default()
        },
    );
    // two arrival batches of mixed traffic around two hot spots: the
    // candidate overlap across queries is what the decomposition cache
    // amortizes. RkNN/top-m weights are the lighter share, mirroring a
    // read-heavy serving mix.
    let stream_cfg = QueryStreamConfig {
        batches: 2,
        batch_size: 6,
        knn_weight: 0.5,
        rknn_weight: 0.25,
        top_m_weight: 0.25,
        k: 5,
        tau: 0.3,
        m: 3,
        hotspots: 2,
        hotspot_fraction: 0.75,
        hotspot_spread: 0.02,
        seed: 0x57EA_u64,
    };
    let stream = stream_cfg.generate(object_cfg);

    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("sequential", |bench| {
        bench.iter(|| black_box(serve_stream(&engine, &stream, ServeMode::Sequential)))
    });
    g.bench_function("batched", |bench| {
        bench.iter(|| black_box(serve_stream(&engine, &stream, ServeMode::Batched)))
    });
    g.finish();
}

fn bench_serve(c: &mut Criterion) {
    let scale = match std::env::var("UDB_BENCH_SCALE").as_deref() {
        Ok("ci") => Scale::ci(),
        Ok("paper") => Scale::paper(),
        _ => Scale::smoke(),
    };
    // the denser extent the idca bench uses, so queries carry a
    // realistic influence-object set into refinement
    let uniform_cfg = scale.synthetic_config(0.05);
    serve_pair(c, "serve_stream", &uniform_cfg, scale.max_iterations);
    // the Gaussian variant makes decomposition genuinely expensive
    // (inverse-CDF splits), so the cross-query decomposition cache
    // carries a larger share of the batched win
    let gaussian_cfg = SyntheticConfig {
        pdf: PdfKind::Gaussian,
        ..uniform_cfg
    };
    serve_pair(
        c,
        "serve_stream_gaussian",
        &gaussian_cfg,
        scale.max_iterations,
    );
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
