//! Query-stream serving throughput on the owned engine
//! ([`udb_core::Engine`] via [`udb_workload::serve_stream`]), on a
//! hot-spot-skewed mixed stream — the workload shape the shared-work
//! machinery (grouped R-tree descent, cross-query decomposition cache,
//! recycled refiner arenas) is built for. Two tracked comparisons:
//!
//! * **batched vs sequential** — one `run_batch` per arrival batch
//!   against the per-query entry points, both with the cross-batch
//!   cache *off* (`decomp_cache_entries = 0`), so the pair isolates
//!   **within-batch** work sharing exactly as it did on the borrowed
//!   engine.
//! * **warm vs cold** — the same batched stream served by an engine
//!   whose persistent decomposition cache survives across batches
//!   (warm, the serving default) against one rebuilding the cache
//!   every batch (cold, `UDB_DECOMP_CACHE_CAP=0` semantics). This is
//!   the cross-batch win the owned engine exists for: hot objects are
//!   decomposed once per *stream*, not once per batch.
//! * **durable vs memory** — the same stream with a mutation trickle,
//!   served by a WAL-backed engine (log + fsync before every applied
//!   mutation) against an in-memory one: the end-to-end durability tax
//!   (recorded, never gated — fsync latency is hardware-dependent).
//! * **sharded vs single** — the same mutating batched stream served by
//!   a 4-shard [`udb_core::ShardedEngine`] (hash-routed mutations,
//!   queries fanned across per-shard trees and merged under one global
//!   pruning bound) against the single engine: the routing overhead of
//!   the sharded serving tier on one host, where no shard parallelism
//!   can hide it.
//! * **sharded parallel vs sequential** — the same sharded stream with
//!   `shard_threads = 4` against `shard_threads = 1`: what fanning the
//!   per-shard work over worker-pool lanes buys (or costs, on a
//!   single-core host, where the pair records dispatch overhead only).
//! * **standing maintain vs reanswer** — a churn loop (insert then
//!   remove the same objects) against an engine holding registered
//!   standing kNN subscriptions (incremental maintenance after every
//!   mutation) vs re-running every standing query from scratch after
//!   every mutation. The maintained results are bit-identical to
//!   re-answering (property-tested in `tests/standing_equivalence.rs`);
//!   the ratio is the subsystem's reason to exist and must stay below
//!   parity.
//!
//! All modes return bit-identical results (property-tested in
//! `tests/batch_equivalence.rs` / `tests/owned_engine.rs` /
//! `tests/durability.rs` / `tests/sharded_equivalence.rs`); the ratios
//! of per-run sample minima are the `serve_*` pairs
//! `bench_gate --relative` tracks.
//!
//! `UDB_BENCH_SCALE=ci` switches from the smoke workload to the larger
//! CI scale (2,000 objects), `paper` to the full 10,000.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use udb_bench::Scale;
use udb_core::{Engine, IdcaConfig, ShardedEngine, StandingSpec};
use udb_workload::{serve_stream, PdfKind, QueryStreamConfig, ServeMode, SyntheticConfig};

/// The hot-spot stream every serve bench replays: two arrival batches
/// of mixed traffic around two hot spots — the candidate overlap across
/// queries is what the decomposition cache amortizes. RkNN/top-m
/// weights are the lighter share, mirroring a read-heavy serving mix.
fn stream_config() -> QueryStreamConfig {
    QueryStreamConfig {
        batches: 2,
        batch_size: 6,
        knn_weight: 0.5,
        rknn_weight: 0.25,
        top_m_weight: 0.25,
        insert_weight: 0.0,
        delete_weight: 0.0,
        subscribe_weight: 0.0,
        k: 5,
        tau: 0.3,
        m: 3,
        hotspots: 2,
        hotspot_fraction: 0.75,
        hotspot_spread: 0.02,
        seed: 0x57EA_u64,
    }
}

/// Benches one workload's sequential-vs-batched serving pair, both
/// sides with the cross-batch cache off (within-batch sharing only).
fn serve_pair(c: &mut Criterion, group: &str, object_cfg: &SyntheticConfig, max_iterations: usize) {
    let db = object_cfg.generate();
    let cfg = IdcaConfig {
        max_iterations,
        decomp_cache_entries: 0,
        ..Default::default()
    };
    let stream = stream_config().generate(object_cfg);
    let mut seq_engine = Engine::with_config(db.clone(), cfg.clone());
    let mut bat_engine = Engine::with_config(db, cfg);

    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("sequential", |bench| {
        bench.iter(|| {
            black_box(serve_stream(
                &mut seq_engine,
                &stream,
                ServeMode::Sequential,
            ))
        })
    });
    g.bench_function("batched", |bench| {
        bench.iter(|| black_box(serve_stream(&mut bat_engine, &stream, ServeMode::Batched)))
    });
    g.finish();
}

/// Benches one workload's warm-vs-cold cross-batch pair: the same
/// batched hot-spot stream against an engine whose persistent
/// decomposition cache survives across batches (warm — it also
/// survives across bench iterations, which is the steady serving
/// state) and one with per-batch caches (cold).
fn serve_cache_pair(
    c: &mut Criterion,
    group: &str,
    object_cfg: &SyntheticConfig,
    max_iterations: usize,
) {
    let db = object_cfg.generate();
    // same query mix, but arriving as many small all-hot batches:
    // per-batch sharing covers little, so the pair isolates what only
    // *cross-batch* persistence can amortize (the cold engine
    // re-decomposes the hot working set every arrival batch)
    let stream = QueryStreamConfig {
        batches: 6,
        batch_size: 2,
        hotspot_fraction: 1.0,
        ..stream_config()
    }
    .generate(object_cfg);
    let mut warm_engine = Engine::with_config(
        db.clone(),
        IdcaConfig {
            max_iterations,
            decomp_cache_entries: 1024,
            ..Default::default()
        },
    );
    let mut cold_engine = Engine::with_config(
        db,
        IdcaConfig {
            max_iterations,
            decomp_cache_entries: 0,
            ..Default::default()
        },
    );

    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("warm", |bench| {
        bench.iter(|| black_box(serve_stream(&mut warm_engine, &stream, ServeMode::Batched)))
    });
    g.bench_function("cold", |bench| {
        bench.iter(|| black_box(serve_stream(&mut cold_engine, &stream, ServeMode::Batched)))
    });
    g.finish();
}

/// Benches the WAL tax: the same *mutating* batched stream served by a
/// durable engine (every mutation logged and fsynced before it applies)
/// against an in-memory one. Mutation entries are a minority of the mix
/// (as in serving), so the pair reports the end-to-end overhead of
/// durability, not raw fsync throughput. The ratio is recorded in
/// `BENCH_idca.json` under `ratio_pairs_untracked` — documented, never
/// gated: fsync latency is hardware-dependent in a way compute is not.
fn serve_durable_pair(
    c: &mut Criterion,
    group: &str,
    object_cfg: &SyntheticConfig,
    max_iterations: usize,
) {
    let db = object_cfg.generate();
    let stream = QueryStreamConfig {
        insert_weight: 0.15,
        delete_weight: 0.15,
        ..stream_config()
    }
    .generate(object_cfg);
    let cfg = IdcaConfig {
        max_iterations,
        decomp_cache_entries: 1024,
        wal_sync_every: 1,
        checkpoint_every: 0, // steady-state logging, no checkpoint spikes
        ..Default::default()
    };
    let mut memory = Engine::with_config(db.clone(), cfg.clone());
    let dir = std::env::temp_dir().join(format!("udb-bench-serve-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut durable = Engine::open_with_config(&dir, cfg).expect("open durable engine");
    for (_, obj) in db.iter() {
        durable.insert(obj.clone());
    }

    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("memory", |bench| {
        bench.iter(|| black_box(serve_stream(&mut memory, &stream, ServeMode::Batched)))
    });
    g.bench_function("durable", |bench| {
        bench.iter(|| black_box(serve_stream(&mut durable, &stream, ServeMode::Batched)))
    });
    g.finish();
    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Benches the per-host routing overhead of the sharded serving tier:
/// the same *mutating* batched stream served by a 4-shard
/// [`ShardedEngine`] against the single [`Engine`]. Both sides keep the
/// cross-batch decomposition cache on (the serving default); the
/// sharded side pays id routing, per-shard candidate streams merged
/// under one global bound, and the RkNN veto exchange. The ratio is
/// gated relative (`sharded_vs_single`): both sides share the run's
/// clock, so the tight band holds even on noisy CI hosts.
fn serve_sharded_pair(
    c: &mut Criterion,
    group: &str,
    object_cfg: &SyntheticConfig,
    max_iterations: usize,
) {
    let db = object_cfg.generate();
    let stream = QueryStreamConfig {
        insert_weight: 0.15,
        delete_weight: 0.15,
        ..stream_config()
    }
    .generate(object_cfg);
    let cfg = IdcaConfig {
        max_iterations,
        decomp_cache_entries: 1024,
        ..Default::default()
    };
    let mut single = Engine::with_config(db.clone(), cfg.clone());
    let mut sharded = ShardedEngine::with_config(db, cfg, 4);

    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("single", |bench| {
        bench.iter(|| black_box(serve_stream(&mut single, &stream, ServeMode::Batched)))
    });
    g.bench_function("sharded", |bench| {
        bench.iter(|| black_box(serve_stream(&mut sharded, &stream, ServeMode::Batched)))
    });
    g.finish();
}

/// Benches the shard-parallelism knob: the same mutating batched
/// stream served by two 4-shard [`ShardedEngine`]s that differ only in
/// `shard_threads` — 1 (today's sequential per-shard walk) vs 4 (the
/// per-shard candidate collection, classify rounds, and RkNN veto
/// probes fanned over worker-pool lanes; every merge stays on the
/// calling thread, so replies are bit-identical). On a single-core
/// host the pair records pure fan-out dispatch overhead (ratio ≈ 1);
/// real scaling needs the multi-core `bench-ci-scale` runner. The gate
/// is one-sided — only a *regression* of the parallel/sequential ratio
/// fails — so faster hosts only ever improve it.
fn serve_sharded_parallel_pair(
    c: &mut Criterion,
    group: &str,
    object_cfg: &SyntheticConfig,
    max_iterations: usize,
) {
    let db = object_cfg.generate();
    let stream = QueryStreamConfig {
        insert_weight: 0.15,
        delete_weight: 0.15,
        ..stream_config()
    }
    .generate(object_cfg);
    let cfg = IdcaConfig {
        max_iterations,
        decomp_cache_entries: 1024,
        ..Default::default()
    };
    let mut sequential = ShardedEngine::with_config(
        db.clone(),
        IdcaConfig {
            shard_threads: 1,
            ..cfg.clone()
        },
        4,
    );
    let mut parallel = ShardedEngine::with_config(
        db,
        IdcaConfig {
            shard_threads: 4,
            ..cfg
        },
        4,
    );

    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("sequential", |bench| {
        bench.iter(|| black_box(serve_stream(&mut sequential, &stream, ServeMode::Batched)))
    });
    g.bench_function("parallel", |bench| {
        bench.iter(|| black_box(serve_stream(&mut parallel, &stream, ServeMode::Batched)))
    });
    g.finish();
}

/// Benches the standing-query subsystem's reason to exist: the same
/// net-zero churn loop (insert six objects, re-remove them, queries
/// after every mutation) served two ways. `maintain` holds four
/// registered standing kNN subscriptions and lets the incremental
/// maintainer bring their result sets up to date after every mutation
/// (skipping or partially re-refining whenever the stored decided
/// bounds prove stability, falling back to a full re-answer only when
/// they cannot); `reanswer` runs the same four queries from scratch
/// through `knn_threshold` after every mutation — the oracle the
/// maintained sets are property-tested bit-identical against
/// (`tests/standing_equivalence.rs`). Churn is net zero per iteration
/// (every inserted id is removed again), so neither engine's database
/// drifts across bench iterations. Gated relative
/// (`maintain_vs_reanswer`): the pair shares the run's clock, and the
/// ratio must stay below parity — maintenance that costs as much as
/// re-answering would defend nothing.
fn serve_standing_pair(
    c: &mut Criterion,
    group: &str,
    object_cfg: &SyntheticConfig,
    max_iterations: usize,
) {
    let db = object_cfg.generate();
    let cfg = IdcaConfig {
        max_iterations,
        decomp_cache_entries: 1024,
        ..Default::default()
    };
    // standing-query points and churn objects from the same hot-spot
    // generator the other serve pairs replay (fixed seed)
    let feed = stream_config().generate(object_cfg);
    let objects: Vec<_> = feed
        .batches
        .iter()
        .flatten()
        .map(|entry| entry.object.clone())
        .collect();
    let queries = &objects[..4];
    let churn = &objects[4..10];
    let (k, tau) = (5, 0.3);

    let mut maintain = Engine::with_config(db.clone(), cfg.clone());
    for q in queries {
        maintain.subscribe(q.clone(), StandingSpec::Knn { k, tau });
    }
    let mut fresh = Engine::with_config(db, cfg);

    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("reanswer", |bench| {
        bench.iter(|| {
            let mut inserted = Vec::new();
            for obj in churn {
                inserted.push(fresh.insert(obj.clone()));
                for q in queries {
                    black_box(fresh.knn_threshold(q, k, tau));
                }
            }
            for id in inserted {
                fresh.remove(id);
                for q in queries {
                    black_box(fresh.knn_threshold(q, k, tau));
                }
            }
        })
    });
    g.bench_function("maintain", |bench| {
        bench.iter(|| {
            let mut inserted = Vec::new();
            for obj in churn {
                inserted.push(maintain.insert(obj.clone()));
                black_box(maintain.take_standing_deltas());
            }
            for id in inserted {
                maintain.remove(id);
                black_box(maintain.take_standing_deltas());
            }
        })
    });
    g.finish();
}

fn bench_serve(c: &mut Criterion) {
    let scale = match std::env::var("UDB_BENCH_SCALE").as_deref() {
        Ok("ci") => Scale::ci(),
        Ok("paper") => Scale::paper(),
        _ => Scale::smoke(),
    };
    // the denser extent the idca bench uses, so queries carry a
    // realistic influence-object set into refinement
    let uniform_cfg = scale.synthetic_config(0.05);
    serve_pair(c, "serve_stream", &uniform_cfg, scale.max_iterations);
    serve_cache_pair(c, "serve_stream_cache", &uniform_cfg, scale.max_iterations);
    serve_durable_pair(
        c,
        "serve_stream_durable",
        &uniform_cfg,
        scale.max_iterations,
    );
    serve_sharded_pair(
        c,
        "serve_stream_sharded",
        &uniform_cfg,
        scale.max_iterations,
    );
    serve_sharded_parallel_pair(
        c,
        "serve_stream_sharded_parallel",
        &uniform_cfg,
        scale.max_iterations,
    );
    serve_standing_pair(
        c,
        "serve_stream_standing",
        &uniform_cfg,
        scale.max_iterations,
    );
    // the Gaussian variant makes decomposition genuinely expensive
    // (inverse-CDF splits), so both the cross-query and the cross-batch
    // decomposition cache carry a larger share of the win
    let gaussian_cfg = SyntheticConfig {
        pdf: PdfKind::Gaussian,
        ..uniform_cfg
    };
    serve_pair(
        c,
        "serve_stream_gaussian",
        &gaussian_cfg,
        scale.max_iterations,
    );
    serve_cache_pair(
        c,
        "serve_stream_cache_gaussian",
        &gaussian_cfg,
        scale.max_iterations,
    );
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
