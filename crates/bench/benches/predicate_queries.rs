//! Figure 8 analog: threshold-predicate queries (IDCA early termination)
//! vs the Monte-Carlo full-PDF baseline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use udb_bench::Scale;
use udb_core::{IdcaConfig, ObjRef, Predicate, QueryEngine, Refiner};
use udb_mc::MonteCarlo;

fn bench_predicates(c: &mut Criterion) {
    let scale = Scale::smoke();
    let (db, cfg) = scale.synthetic_db();
    let qs = scale.query_set(&db, &cfg);
    let (r, b) = (qs.references[0].clone(), qs.targets[0]);

    let mut g = c.benchmark_group("threshold_refine");
    g.sample_size(20);
    for (k, tau) in [(1usize, 0.5f64), (5, 0.25), (5, 0.75), (15, 0.5)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_tau{tau}")),
            &(k, tau),
            |bench, &(k, tau)| {
                bench.iter(|| {
                    black_box(
                        Refiner::new(
                            &db,
                            ObjRef::Db(b),
                            ObjRef::External(&r),
                            IdcaConfig {
                                max_iterations: scale.max_iterations,
                                uncertainty_target: 0.0,
                                ..Default::default()
                            },
                            Predicate::Threshold { k, tau },
                        )
                        .run(),
                    )
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("mc_reference");
    g.sample_size(10);
    let mc = MonteCarlo {
        samples: scale.mc_samples,
        ..Default::default()
    };
    g.bench_function("full_pdf", |bench| {
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(mc.domination_count(&db, b, &r, &mut rng))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("whole_query");
    g.sample_size(10);
    g.bench_function("knn_threshold_k3", |bench| {
        let engine = QueryEngine::new(&db);
        bench.iter(|| black_box(engine.knn_threshold(&r, 3, 0.5)))
    });
    g.finish();
}

criterion_group!(benches, bench_predicates);
criterion_main!(benches);
