//! Figure 5 analog: Monte-Carlo baseline runtime vs sample size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use udb_bench::Scale;
use udb_mc::MonteCarlo;

fn bench_mc(c: &mut Criterion) {
    let scale = Scale::smoke();
    let (db, cfg) = scale.synthetic_db();
    let qs = scale.query_set(&db, &cfg);
    let (r, b) = (qs.references[0].clone(), qs.targets[0]);

    let mut g = c.benchmark_group("mc_domination_count");
    g.sample_size(10);
    for samples in [25usize, 50, 100, 200] {
        let mc = MonteCarlo {
            samples,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(samples), &mc, |bench, mc| {
            bench.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(mc.domination_count(&db, b, &r, &mut rng))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mc);
criterion_main!(benches);
