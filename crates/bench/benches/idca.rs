//! Figures 6(b)/7 analog: IDCA refinement cost per iteration depth.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use udb_bench::Scale;
use udb_core::{IdcaConfig, ObjRef, Predicate, Refiner};

fn bench_idca(c: &mut Criterion) {
    let scale = Scale::smoke();
    let (db, cfg) = scale.synthetic_db();
    let qs = scale.query_set(&db, &cfg);
    let (r, b) = (qs.references[0].clone(), qs.targets[0]);

    let mut g = c.benchmark_group("idca_refine_to_depth");
    g.sample_size(20);
    for depth in [1usize, 2, 3, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |bench, &d| {
            bench.iter(|| {
                let mut refiner = Refiner::new(
                    &db,
                    ObjRef::Db(b),
                    ObjRef::External(&r),
                    IdcaConfig {
                        max_iterations: d,
                        uncertainty_target: 0.0,
                        ..Default::default()
                    },
                    Predicate::FullPdf,
                );
                black_box(refiner.run())
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("idca_filter_only");
    g.bench_function("snapshot_iteration0", |bench| {
        bench.iter(|| {
            let refiner = Refiner::new(
                &db,
                ObjRef::Db(b),
                ObjRef::External(&r),
                IdcaConfig::default(),
                Predicate::FullPdf,
            );
            black_box(refiner.snapshot())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_idca);
criterion_main!(benches);
