//! Figures 6(b)/7 analog: IDCA refinement cost per iteration depth, plus
//! the incremental-vs-from-scratch snapshot comparison and the
//! indexed-early-exit-vs-scan query comparison backing this repo's
//! BENCH_idca.json baselines.
//!
//! `UDB_BENCH_SCALE=ci` switches from the smoke workload to the larger
//! CI scale (2,000 objects) for the recorded `--ci` baselines.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use udb_bench::Scale;
use udb_core::{Engine, IdcaConfig, ObjRef, Predicate, QueryEngine, Refiner};

fn bench_idca(c: &mut Criterion) {
    let scale = match std::env::var("UDB_BENCH_SCALE").as_deref() {
        Ok("ci") => Scale::ci(),
        Ok("paper") => Scale::paper(),
        _ => Scale::smoke(),
    };
    // a denser extent than the paper's default so queries carry a
    // realistic influence-object set (~a dozen) into refinement
    let cfg = scale.synthetic_config(0.05);
    let db = cfg.generate();
    let qs = scale.query_set(&db, &cfg);
    let (r, b) = (qs.references[0].clone(), qs.targets[0]);

    let mk_cfg = |depth: usize| IdcaConfig {
        max_iterations: depth,
        uncertainty_target: 0.0,
        ..Default::default()
    };
    // the bigger CI workload caps the depth sweep: the from-scratch
    // baseline grows ~4x per level and would dominate the suite's budget
    let depths: &[usize] = if scale.synthetic_n > 1000 {
        &[1, 2, 3, 4]
    } else {
        &[1, 2, 3, 4, 5, 6]
    };

    // full run (filter + iterate + snapshot per iteration) — the
    // incremental cache is what run() exercises
    let mut g = c.benchmark_group("idca_refine_to_depth");
    g.sample_size(20);
    for &depth in depths {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |bench, &d| {
            bench.iter(|| {
                let mut refiner = Refiner::new(
                    &db,
                    ObjRef::Db(b),
                    ObjRef::External(&r),
                    mk_cfg(d),
                    Predicate::FullPdf,
                );
                black_box(refiner.run())
            })
        });
    }
    g.finish();

    // the same work with every snapshot recomputed from scratch — the
    // pre-optimization behavior; the ratio to the group above is the
    // incremental-cache speedup recorded in BENCH_idca.json
    let mut g = c.benchmark_group("idca_refine_to_depth_from_scratch");
    g.sample_size(20);
    for &depth in depths {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |bench, &d| {
            bench.iter(|| {
                let mut refiner = Refiner::new(
                    &db,
                    ObjRef::Db(b),
                    ObjRef::External(&r),
                    mk_cfg(d),
                    Predicate::FullPdf,
                );
                let mut snap = refiner.snapshot_from_scratch();
                for _ in 0..d {
                    if !refiner.step() {
                        break;
                    }
                    snap = refiner.snapshot_from_scratch();
                }
                black_box(snap)
            })
        });
    }
    g.finish();

    // steady-state snapshot cost at depth 4 (decompositions expanded,
    // nothing dirty): incremental vs from-scratch in isolation
    let mut refined = Refiner::new(
        &db,
        ObjRef::Db(b),
        ObjRef::External(&r),
        mk_cfg(4),
        Predicate::FullPdf,
    );
    for _ in 0..4 {
        refined.step();
    }
    let _ = refined.snapshot(); // populate the cache
    let mut g = c.benchmark_group("idca_snapshot_depth4");
    g.sample_size(20);
    g.bench_function("incremental", |bench| {
        bench.iter(|| black_box(refined.snapshot()))
    });
    g.bench_function("from_scratch", |bench| {
        bench.iter(|| black_box(refined.snapshot_from_scratch()))
    });
    g.finish();

    // parallel snapshot scaling on a deep refined state (the pair loop is
    // what IdcaConfig::snapshot_threads fans out; shallow snapshots are
    // too small to amortize thread spawns)
    let mut g = c.benchmark_group("idca_snapshot_depth6_threads");
    g.sample_size(20);
    for threads in [1usize, 2, 4] {
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(b),
            ObjRef::External(&r),
            IdcaConfig {
                snapshot_threads: threads,
                ..mk_cfg(6)
            },
            Predicate::FullPdf,
        );
        for _ in 0..6 {
            refiner.step();
        }
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            move |bench, _| bench.iter(|| black_box(refiner.snapshot())),
        );
    }
    g.finish();

    // index-integrated early-exit query processing vs PR 1's
    // full-refinement scan path: same query, same results (the
    // equivalence is property-tested), different work. The scan engine
    // filters candidates with an O(n) pass and builds every refiner with
    // a second O(n) scan; the indexed engine streams candidates from the
    // R-tree, filters each refiner through subtree classification and
    // retires candidates mid-loop.
    let mut g = c.benchmark_group("idca_indexed_early_exit");
    g.sample_size(20);
    let knn_cfg = IdcaConfig {
        max_iterations: scale.max_iterations,
        // per-call caches: this group isolates the early-exit refinement
        // machinery itself, not cross-call warmth (the serve bench's
        // warm-vs-cold pair measures that)
        decomp_cache_entries: 0,
        ..Default::default()
    };
    let scan_engine = QueryEngine::with_config(&db, knn_cfg.clone());
    let indexed_engine = Engine::with_config(db.clone(), knn_cfg);
    let (k, tau) = (5usize, 0.3f64);
    // the "bitter end" baseline: every candidate refined to convergence
    // (no threshold to decide against mid-loop), classified vs tau only
    // afterwards — the per-candidate behaviour the decided-outcome
    // retirement removes
    g.bench_function("knn_threshold_full_refinement", |bench| {
        bench.iter(|| {
            let mut out = Vec::new();
            for id in scan_engine.knn_candidates(r.mbr(), k) {
                let mut refiner = scan_engine.refiner(
                    ObjRef::Db(id),
                    ObjRef::External(&r),
                    Predicate::CountBelow { k },
                );
                let snap = refiner.run();
                let (lo, hi) = snap.predicate_cdf.expect("CDF");
                if hi > 0.0 {
                    out.push((id, lo > tau, hi <= tau));
                }
            }
            black_box(out)
        })
    });
    g.bench_function("knn_threshold_scan", |bench| {
        bench.iter(|| black_box(scan_engine.knn_threshold(&r, k, tau)))
    });
    g.bench_function("knn_threshold_indexed", |bench| {
        bench.iter(|| black_box(indexed_engine.knn_threshold(&r, k, tau)))
    });
    g.bench_function("rknn_threshold_scan", |bench| {
        bench.iter(|| black_box(scan_engine.rknn_threshold(&r, 2, tau)))
    });
    g.bench_function("rknn_threshold_indexed", |bench| {
        bench.iter(|| black_box(indexed_engine.rknn_threshold(&r, 2, tau)))
    });
    g.bench_function("top_probable_nn_scan", |bench| {
        bench.iter(|| black_box(scan_engine.top_probable_nn(&r, 3)))
    });
    g.bench_function("top_probable_nn_indexed", |bench| {
        bench.iter(|| black_box(indexed_engine.top_probable_nn(&r, 3)))
    });
    g.finish();

    // batch-parallel candidate refinement: the same indexed threshold
    // query with the lock-step rounds fanned over 1/2/4 candidate lanes
    // (1 = the depth-first sequential driver). Results are bit-identical
    // across lane counts (property-tested); on a multi-core host the
    // ratio to lane count 1 is the candidate-parallel speedup, on a
    // single-CPU container it records round-fanning dispatch overhead.
    let mut g = c.benchmark_group("idca_early_exit_candidate_threads");
    g.sample_size(20);
    for threads in [1usize, 2, 4] {
        let engine = Engine::with_config(
            db.clone(),
            IdcaConfig {
                candidate_threads: threads,
                max_iterations: scale.max_iterations,
                decomp_cache_entries: 0,
                ..Default::default()
            },
        );
        let rq = r.clone();
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            move |bench, _| bench.iter(|| black_box(engine.knn_threshold(&rq, k, tau))),
        );
    }
    g.finish();

    let mut g = c.benchmark_group("idca_filter_only");
    g.bench_function("snapshot_iteration0", |bench| {
        bench.iter(|| {
            let mut refiner = Refiner::new(
                &db,
                ObjRef::Db(b),
                ObjRef::External(&r),
                IdcaConfig::default(),
                Predicate::FullPdf,
            );
            black_box(refiner.snapshot())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_idca);
criterion_main!(benches);
