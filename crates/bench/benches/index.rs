//! R-tree substrate benchmarks: bulk load, incremental insertion and kNN.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use udb_bench::Scale;
use udb_geometry::{LpNorm, Point, Rect};
use udb_index::RTree;

fn items(n: usize) -> Vec<(Rect, u32)> {
    let cfg = udb_workload::SyntheticConfig {
        n,
        ..Default::default()
    };
    cfg.generate()
        .iter()
        .map(|(id, o)| (o.mbr().clone(), id.0))
        .collect()
}

fn bench_index(c: &mut Criterion) {
    let scale = Scale::smoke();
    let _ = scale;

    let mut g = c.benchmark_group("rtree_bulk_load");
    g.sample_size(20);
    for n in [1_000usize, 10_000] {
        let data = items(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |bench, data| {
            bench.iter(|| black_box(RTree::bulk_load(data.clone(), 16)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("rtree_insert_all");
    g.sample_size(10);
    for n in [1_000usize, 5_000] {
        let data = items(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |bench, data| {
            bench.iter(|| {
                let mut t = RTree::new(16);
                for (r, p) in data.iter() {
                    t.insert(r.clone(), *p);
                }
                black_box(t.len())
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("rtree_knn10");
    let data = items(10_000);
    let tree = RTree::bulk_load(data, 16);
    let q = Rect::from_point(&Point::from([0.5, 0.5]));
    g.bench_function("bulk_10k", |bench| {
        bench.iter(|| black_box(tree.knn(&q, 10, LpNorm::L2)))
    });
    g.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
