//! Generating-function microbenchmarks: Poisson-binomial recurrence,
//! classic GF, full and truncated UGF (the §VI `O(k²·N)` claim).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use udb_genfunc::{poisson_binomial, two_gf_bounds, ClassicGf, NestedUgf, Ugf};

fn probs(n: usize) -> (Vec<f64>, Vec<f64>) {
    let lb: Vec<f64> = (0..n).map(|i| (i % 7) as f64 / 14.0).collect();
    let ub: Vec<f64> = lb.iter().map(|l| (l + 0.3).min(1.0)).collect();
    (lb, ub)
}

fn bench_genfunc(c: &mut Criterion) {
    let mut g = c.benchmark_group("poisson_binomial");
    for n in [16usize, 64, 256] {
        let (lb, _) = probs(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &lb, |bench, lb| {
            bench.iter(|| black_box(poisson_binomial(black_box(lb), None)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("classic_gf_truncated_k5");
    for n in [64usize, 256] {
        let (lb, _) = probs(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &lb, |bench, lb| {
            bench.iter(|| {
                let mut gf = ClassicGf::new(Some(5));
                for &p in lb {
                    gf.multiply(p);
                }
                black_box(gf.cdf(5))
            })
        });
    }
    g.finish();

    // full UGF is O(N^3): keep N modest
    let mut g = c.benchmark_group("ugf_full");
    for n in [8usize, 16, 32] {
        let pair = probs(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &pair, |bench, (lb, ub)| {
            bench.iter(|| {
                let mut f = Ugf::new(None);
                for (l, u) in lb.iter().zip(ub.iter()) {
                    f.multiply(*l, *u);
                }
                black_box(f.total())
            })
        });
    }
    g.finish();

    // truncated UGF is O(k^2 N): N can grow
    let mut g = c.benchmark_group("ugf_truncated_k5");
    for n in [32usize, 128, 512] {
        let pair = probs(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &pair, |bench, (lb, ub)| {
            bench.iter(|| {
                let mut f = Ugf::new(Some(5));
                for (l, u) in lb.iter().zip(ub.iter()) {
                    f.multiply(*l, *u);
                }
                black_box(f.cdf_bounds(5))
            })
        });
    }
    g.finish();

    // flat arena vs the nested reference implementation — the speedup of
    // the zero-allocation rewrite, recorded in BENCH_idca.json
    let mut g = c.benchmark_group("ugf_flat_vs_nested/flat_reused");
    for n in [16usize, 64, 256] {
        let pair = probs(n);
        let mut f = Ugf::new(Some(5));
        g.bench_with_input(BenchmarkId::from_parameter(n), &pair, |bench, (lb, ub)| {
            bench.iter(|| {
                f.reset(Some(5));
                for (l, u) in lb.iter().zip(ub.iter()) {
                    f.multiply(*l, *u);
                }
                black_box(f.cdf_bounds(5))
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ugf_flat_vs_nested/nested");
    for n in [16usize, 64, 256] {
        let pair = probs(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &pair, |bench, (lb, ub)| {
            bench.iter(|| {
                let mut f = NestedUgf::new(Some(5));
                for (l, u) in lb.iter().zip(ub.iter()) {
                    f.multiply(*l, *u);
                }
                black_box(f.cdf_bounds(5))
            })
        });
    }
    g.finish();

    // decided-factor fast path: mostly-certain factor streams
    let mut g = c.benchmark_group("ugf_decided_factors/flat");
    for n in [64usize, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            let mut f = Ugf::new(None);
            bench.iter(|| {
                f.reset(None);
                for i in 0..n {
                    match i % 8 {
                        0..=2 => f.multiply(1.0, 1.0),
                        3..=5 => f.multiply(0.0, 0.0),
                        _ => f.multiply(0.3, 0.6),
                    }
                }
                black_box(f.upper_bound(n / 2))
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ugf_decided_factors/nested");
    for n in [64usize, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                let mut f = NestedUgf::new(None);
                for i in 0..n {
                    match i % 8 {
                        0..=2 => f.multiply(1.0, 1.0),
                        3..=5 => f.multiply(0.0, 0.0),
                        _ => f.multiply(0.3, 0.6),
                    }
                }
                black_box(f.upper_bound(n / 2))
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("two_gf_bounds");
    for n in [16usize, 64] {
        let pair = probs(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &pair, |bench, (lb, ub)| {
            bench.iter(|| black_box(two_gf_bounds(black_box(lb), black_box(ub))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_genfunc);
criterion_main!(benches);
