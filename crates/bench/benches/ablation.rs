//! Ablation benches: UGF vs two-regular-GF tightness/cost, split
//! strategies, truncation. The corresponding accuracy tables come from
//! `experiments ablation`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use udb_bench::experiments::ablation;
use udb_bench::Scale;
use udb_genfunc::{two_gf_bounds, Ugf};

fn bench_ablation(c: &mut Criterion) {
    // cost comparison on the same bound vectors
    let n = 32;
    let lb: Vec<f64> = (0..n).map(|i| (i % 5) as f64 / 10.0).collect();
    let ub: Vec<f64> = lb.iter().map(|l| (l + 0.4).min(1.0)).collect();

    let mut g = c.benchmark_group("bounding_scheme_cost");
    g.bench_function("ugf", |bench| {
        bench.iter(|| {
            let mut f = Ugf::new(None);
            for (l, u) in lb.iter().zip(ub.iter()) {
                f.multiply(*l, *u);
            }
            black_box(f.count_bounds(n + 1))
        })
    });
    g.bench_function("two_gf", |bench| {
        bench.iter(|| black_box(two_gf_bounds(&lb, &ub)))
    });
    g.finish();

    // end-to-end accuracy tables (timed as a whole so regressions in the
    // experiment harness surface)
    let mut g = c.benchmark_group("ablation_tables");
    g.sample_size(10);
    g.bench_function("ugf_vs_two_gf_table", |bench| {
        bench.iter(|| black_box(ablation::ugf_vs_two_gf(&Scale::smoke())))
    });
    g.bench_function("split_strategy_table", |bench| {
        bench.iter(|| black_box(ablation::split_strategy(&Scale::smoke())))
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
