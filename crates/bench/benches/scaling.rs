//! Figure 9 analog: refinement cost vs database size and influence-object
//! count.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use udb_core::{IdcaConfig, ObjRef, Predicate, Refiner};
use udb_geometry::LpNorm;
use udb_workload::{QuerySet, SyntheticConfig};

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("refine_vs_db_size");
    g.sample_size(10);
    for n in [500usize, 1_000, 2_000] {
        let cfg = SyntheticConfig {
            n,
            max_extent: 0.002,
            ..Default::default()
        };
        let db = cfg.generate();
        let qs = QuerySet::generate(&db, &cfg, 1, 10, LpNorm::L2, 0xBE);
        let (r, b) = (qs.references[0].clone(), qs.targets[0]);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                black_box(
                    Refiner::new(
                        &db,
                        ObjRef::Db(b),
                        ObjRef::External(&r),
                        IdcaConfig {
                            max_iterations: 3,
                            uncertainty_target: 0.0,
                            ..Default::default()
                        },
                        Predicate::FullPdf,
                    )
                    .run(),
                )
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("refine_vs_target_rank");
    g.sample_size(10);
    let cfg = SyntheticConfig {
        n: 1_000,
        max_extent: 0.002,
        ..Default::default()
    };
    let db = cfg.generate();
    for rank in [10usize, 50, 150] {
        let qs = QuerySet::generate(&db, &cfg, 1, rank, LpNorm::L2, 0xBF);
        let (r, b) = (qs.references[0].clone(), qs.targets[0]);
        g.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |bench, _| {
            bench.iter(|| {
                black_box(
                    Refiner::new(
                        &db,
                        ObjRef::Db(b),
                        ObjRef::External(&r),
                        IdcaConfig {
                            max_iterations: 3,
                            uncertainty_target: 0.0,
                            ..Default::default()
                        },
                        Predicate::FullPdf,
                    )
                    .run(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
