//! Microbenchmarks of the spatial domination criteria (Figure 6a's
//! machinery): per-call cost of the optimal vs MinMax test and the full
//! filter step over a database.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use udb_bench::Scale;
use udb_core::{IdcaConfig, ObjRef, Predicate, Refiner};
use udb_domination::{dominates_minmax, dominates_optimal, DominationCriterion};
use udb_geometry::LpNorm;

fn criteria(c: &mut Criterion) {
    let scale = Scale::smoke();
    let (db, cfg) = scale.synthetic_db();
    let qs = scale.query_set(&db, &cfg);
    let (r, b) = (qs.references[0].clone(), qs.targets[0]);
    let b_mbr = db.get(b).mbr().clone();
    let a_mbr = db.get(udb_object::ObjectId(0)).mbr().clone();

    let mut g = c.benchmark_group("spatial_criterion");
    g.bench_function("optimal", |bench| {
        bench.iter(|| {
            black_box(dominates_optimal(
                black_box(&a_mbr),
                black_box(&b_mbr),
                black_box(r.mbr()),
                LpNorm::L2,
            ))
        })
    });
    g.bench_function("minmax", |bench| {
        bench.iter(|| {
            black_box(dominates_minmax(
                black_box(&a_mbr),
                black_box(&b_mbr),
                black_box(r.mbr()),
                LpNorm::L2,
            ))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("filter_step");
    g.sample_size(20);
    for crit in [DominationCriterion::Optimal, DominationCriterion::MinMax] {
        g.bench_function(format!("{crit:?}"), |bench| {
            bench.iter(|| {
                let refiner = Refiner::new(
                    &db,
                    ObjRef::Db(b),
                    ObjRef::External(&r),
                    IdcaConfig {
                        criterion: crit,
                        ..Default::default()
                    },
                    Predicate::FullPdf,
                );
                let influence_count = refiner.influence_ids().len();
                black_box(influence_count)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, criteria);
criterion_main!(benches);
