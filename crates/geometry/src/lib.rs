//! Geometry kernel for the uncertain-db workspace.
//!
//! Provides the primitives every pruning criterion in the paper is built on:
//! points, one-dimensional [`Interval`]s, axis-aligned [`Rect`]angles
//! (uncertainty regions / MBRs), [`LpNorm`] distance functions and the
//! interval-to-point `MinDist`/`MaxDist` decompositions used by both the
//! classical MinMax criterion and the optimal domination criterion
//! (Corollary 1 of the paper).
//!
//! All coordinates are `f64`. Rectangles are closed boxes `[lo, hi]^d` with
//! `lo <= hi` per dimension (degenerate, zero-extent boxes represent certain
//! points).

pub mod interval;
pub mod norm;
pub mod point;
pub mod rect;

pub use interval::Interval;
pub use norm::LpNorm;
pub use point::Point;
pub use rect::Rect;

/// Crate-wide absolute tolerance used by approximate comparisons in tests
/// and by degenerate-geometry guards.
pub const EPSILON: f64 = 1e-12;
