//! Points in `R^d`.

use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A point in `R^d`, stored as a boxed slice to keep the type two words wide.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point(Box<[f64]>);

impl Point {
    /// Creates a point from coordinates.
    ///
    /// # Panics
    /// Panics if `coords` is empty or contains a non-finite value.
    pub fn new(coords: impl Into<Box<[f64]>>) -> Self {
        let coords = coords.into();
        assert!(
            !coords.is_empty(),
            "points must have at least one dimension"
        );
        assert!(
            coords.iter().all(|c| c.is_finite()),
            "point coordinates must be finite"
        );
        Point(coords)
    }

    /// The origin of `R^d`.
    pub fn origin(dims: usize) -> Self {
        Point::new(vec![0.0; dims])
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// Coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.0
    }

    /// Mutable coordinates.
    #[inline]
    pub fn coords_mut(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Squared Euclidean distance to `other` (avoids the `sqrt` when callers
    /// only compare distances).
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Euclidean (L2) distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Component-wise midpoint between `self` and `other`.
    pub fn midpoint(&self, other: &Point) -> Point {
        debug_assert_eq!(self.dims(), other.dims());
        Point::new(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| 0.5 * (a + b))
                .collect::<Vec<_>>(),
        )
    }
}

impl Index<usize> for Point {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Point {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl From<Vec<f64>> for Point {
    fn from(v: Vec<f64>) -> Self {
        Point::new(v)
    }
}

impl<const N: usize> From<[f64; N]> for Point {
    fn from(v: [f64; N]) -> Self {
        Point::new(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_accessors() {
        let p = Point::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dims(), 3);
        assert_eq!(p[1], 2.0);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn origin_is_zero() {
        let p = Point::origin(4);
        assert_eq!(p.coords(), &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_point_rejected() {
        let _ = Point::new(Vec::<f64>::new());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = Point::new(vec![f64::NAN]);
    }

    #[test]
    fn euclidean_distance() {
        let a = Point::from([0.0, 0.0]);
        let b = Point::from([3.0, 4.0]);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::from([1.5, -2.0, 0.25]);
        let b = Point::from([-0.5, 7.0, 1.0]);
        assert_eq!(a.dist(&b), b.dist(&a));
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::from([0.0, 2.0]);
        let b = Point::from([2.0, 4.0]);
        assert_eq!(a.midpoint(&b), Point::from([1.0, 3.0]));
    }

    #[test]
    fn index_mut_updates_coordinate() {
        let mut p = Point::from([1.0, 1.0]);
        p[0] = 9.0;
        assert_eq!(p.coords(), &[9.0, 1.0]);
    }
}
