//! Axis-aligned rectangles (uncertainty regions / MBRs).

use serde::{Deserialize, Serialize};

use crate::interval::Interval;
use crate::norm::LpNorm;
use crate::point::Point;

/// An axis-aligned closed box in `R^d`, the uncertainty-region shape assumed
/// throughout the paper ("each uncertain object can be considered as a
/// d-dimensional rectangle with an associated multi-dimensional object PDF").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    dims: Box<[Interval]>,
}

impl Rect {
    /// Builds a rectangle from per-dimension intervals.
    ///
    /// # Panics
    /// Panics if `dims` is empty.
    pub fn new(dims: impl Into<Box<[Interval]>>) -> Self {
        let dims = dims.into();
        assert!(!dims.is_empty(), "rectangles need at least one dimension");
        Rect { dims }
    }

    /// Builds from corner points `lo` / `hi`.
    ///
    /// # Panics
    /// Panics on dimension mismatch or if `lo[i] > hi[i]` for some `i`.
    pub fn from_corners(lo: &Point, hi: &Point) -> Self {
        assert_eq!(lo.dims(), hi.dims(), "corner dimensionality mismatch");
        Rect::new(
            lo.coords()
                .iter()
                .zip(hi.coords().iter())
                .map(|(&l, &h)| Interval::new(l, h))
                .collect::<Vec<_>>(),
        )
    }

    /// A degenerate rectangle containing exactly `p` (a certain point).
    pub fn from_point(p: &Point) -> Self {
        Rect::new(
            p.coords()
                .iter()
                .map(|&c| Interval::point(c))
                .collect::<Vec<_>>(),
        )
    }

    /// A rectangle centered at `center` with half-extent `ext[i]` per
    /// dimension.
    pub fn centered(center: &Point, half_extents: &[f64]) -> Self {
        assert_eq!(center.dims(), half_extents.len());
        Rect::new(
            center
                .coords()
                .iter()
                .zip(half_extents.iter())
                .map(|(&c, &e)| {
                    assert!(e >= 0.0, "half extents must be non-negative");
                    Interval::new(c - e, c + e)
                })
                .collect::<Vec<_>>(),
        )
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims.len()
    }

    /// Projection interval in dimension `i` (the `A_i` of Corollary 1).
    #[inline]
    pub fn dim(&self, i: usize) -> Interval {
        self.dims[i]
    }

    /// All projection intervals.
    #[inline]
    pub fn intervals(&self) -> &[Interval] {
        &self.dims
    }

    /// Lower corner.
    pub fn lo(&self) -> Point {
        Point::new(self.dims.iter().map(|iv| iv.lo()).collect::<Vec<_>>())
    }

    /// Upper corner.
    pub fn hi(&self) -> Point {
        Point::new(self.dims.iter().map(|iv| iv.hi()).collect::<Vec<_>>())
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new(self.dims.iter().map(|iv| iv.center()).collect::<Vec<_>>())
    }

    /// Side length in dimension `i`.
    #[inline]
    pub fn extent(&self, i: usize) -> f64 {
        self.dims[i].len()
    }

    /// Largest side length and its dimension index.
    pub fn longest_extent(&self) -> (usize, f64) {
        self.dims
            .iter()
            .enumerate()
            .map(|(i, iv)| (i, iv.len()))
            .fold((0, f64::NEG_INFINITY), |best, cur| {
                if cur.1 > best.1 {
                    cur
                } else {
                    best
                }
            })
    }

    /// d-dimensional volume (product of side lengths).
    pub fn volume(&self) -> f64 {
        self.dims.iter().map(|iv| iv.len()).product()
    }

    /// Sum of side lengths (the R*-tree "margin" surrogate).
    pub fn margin(&self) -> f64 {
        self.dims.iter().map(|iv| iv.len()).sum()
    }

    /// Whether the rectangle is a single point in every dimension.
    pub fn is_point(&self) -> bool {
        self.dims.iter().all(Interval::is_degenerate)
    }

    /// Whether `p` lies inside the closed box.
    pub fn contains(&self, p: &Point) -> bool {
        debug_assert_eq!(self.dims(), p.dims());
        self.dims
            .iter()
            .zip(p.coords().iter())
            .all(|(iv, &c)| iv.contains(c))
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.dims
            .iter()
            .zip(other.dims.iter())
            .all(|(a, b)| a.contains_interval(b))
    }

    /// Whether the two closed boxes share at least one point.
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.dims
            .iter()
            .zip(other.dims.iter())
            .all(|(a, b)| a.intersects(b))
    }

    /// Intersection box, if non-empty.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        debug_assert_eq!(self.dims(), other.dims());
        let mut dims = Vec::with_capacity(self.dims());
        for (a, b) in self.dims.iter().zip(other.dims.iter()) {
            dims.push(a.intersection(b)?);
        }
        Some(Rect::new(dims))
    }

    /// Smallest box covering both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dims(), other.dims());
        Rect::new(
            self.dims
                .iter()
                .zip(other.dims.iter())
                .map(|(a, b)| a.union(b))
                .collect::<Vec<_>>(),
        )
    }

    /// Smallest box covering all `rects`.
    ///
    /// # Panics
    /// Panics if `rects` is empty.
    pub fn union_all<'a>(mut rects: impl Iterator<Item = &'a Rect>) -> Rect {
        let first = rects
            .next()
            .expect("union_all needs at least one rect")
            .clone();
        rects.fold(first, |acc, r| acc.union(r))
    }

    /// Minimal distance between the box and point `q` under `norm`
    /// (`0` if `q` is inside).
    pub fn min_dist(&self, q: &Point, norm: LpNorm) -> f64 {
        norm.root(self.min_dist_pow(q, norm))
    }

    /// `MinDist^p` — comparison-safe power form.
    pub fn min_dist_pow(&self, q: &Point, norm: LpNorm) -> f64 {
        debug_assert_eq!(self.dims(), q.dims());
        norm.aggregate(
            self.dims
                .iter()
                .zip(q.coords().iter())
                .map(|(iv, &c)| norm.pow(iv.min_dist(c))),
        )
    }

    /// Maximal distance between the box and point `q` under `norm`.
    pub fn max_dist(&self, q: &Point, norm: LpNorm) -> f64 {
        norm.root(self.max_dist_pow(q, norm))
    }

    /// `MaxDist^p` — comparison-safe power form.
    pub fn max_dist_pow(&self, q: &Point, norm: LpNorm) -> f64 {
        debug_assert_eq!(self.dims(), q.dims());
        norm.aggregate(
            self.dims
                .iter()
                .zip(q.coords().iter())
                .map(|(iv, &c)| norm.pow(iv.max_dist(c))),
        )
    }

    /// Minimal distance between two boxes under `norm` (`0` if they
    /// intersect).
    pub fn min_dist_rect(&self, other: &Rect, norm: LpNorm) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        let agg = norm.aggregate(self.dims.iter().zip(other.dims.iter()).map(|(a, b)| {
            let gap = if a.hi() < b.lo() {
                b.lo() - a.hi()
            } else if b.hi() < a.lo() {
                a.lo() - b.hi()
            } else {
                0.0
            };
            norm.pow(gap)
        }));
        norm.root(agg)
    }

    /// Maximal distance between two boxes under `norm`.
    pub fn max_dist_rect(&self, other: &Rect, norm: LpNorm) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        let agg = norm.aggregate(self.dims.iter().zip(other.dims.iter()).map(|(a, b)| {
            let d = (a.hi() - b.lo()).abs().max((b.hi() - a.lo()).abs());
            norm.pow(d)
        }));
        norm.root(agg)
    }

    /// Splits the box in dimension `axis` at coordinate `x`, producing the
    /// lower and upper halves.
    ///
    /// # Panics
    /// Panics if `x` is outside the box's projection on `axis`.
    pub fn split(&self, axis: usize, x: f64) -> (Rect, Rect) {
        let (lo_iv, hi_iv) = self.dims[axis].split_at(x);
        let mut lo = self.dims.to_vec();
        let mut hi = self.dims.to_vec();
        lo[axis] = lo_iv;
        hi[axis] = hi_iv;
        (Rect::new(lo), Rect::new(hi))
    }

    /// All `2^d` corner points (used by exhaustive domination oracles in
    /// tests; exponential, only call for small `d`).
    pub fn corners(&self) -> Vec<Point> {
        let d = self.dims();
        assert!(d <= 20, "corners() is exponential in dimensionality");
        let mut out = Vec::with_capacity(1 << d);
        for mask in 0u32..(1 << d) {
            let coords: Vec<f64> = (0..d)
                .map(|i| {
                    if mask & (1 << i) == 0 {
                        self.dims[i].lo()
                    } else {
                        self.dims[i].hi()
                    }
                })
                .collect();
            out.push(Point::new(coords));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit_square() -> Rect {
        Rect::from_corners(&Point::from([0.0, 0.0]), &Point::from([1.0, 1.0]))
    }

    #[test]
    fn corners_and_center() {
        let r = unit_square();
        assert_eq!(r.lo(), Point::from([0.0, 0.0]));
        assert_eq!(r.hi(), Point::from([1.0, 1.0]));
        assert_eq!(r.center(), Point::from([0.5, 0.5]));
        assert_eq!(r.volume(), 1.0);
        assert_eq!(r.margin(), 2.0);
        assert_eq!(r.corners().len(), 4);
    }

    #[test]
    fn point_rect_is_degenerate() {
        let r = Rect::from_point(&Point::from([2.0, 3.0]));
        assert!(r.is_point());
        assert_eq!(r.volume(), 0.0);
        assert!(r.contains(&Point::from([2.0, 3.0])));
        assert!(!r.contains(&Point::from([2.0, 3.1])));
    }

    #[test]
    fn centered_construction() {
        let r = Rect::centered(&Point::from([1.0, 1.0]), &[0.5, 0.25]);
        assert_eq!(r.lo(), Point::from([0.5, 0.75]));
        assert_eq!(r.hi(), Point::from([1.5, 1.25]));
    }

    #[test]
    fn containment_checks() {
        let r = unit_square();
        assert!(r.contains(&Point::from([0.0, 1.0]))); // boundary inclusive
        assert!(r.contains_rect(&Rect::centered(&Point::from([0.5, 0.5]), &[0.1, 0.1])));
        assert!(!r.contains_rect(&Rect::centered(&Point::from([0.95, 0.5]), &[0.1, 0.1])));
    }

    #[test]
    fn intersection_union() {
        let a = unit_square();
        let b = Rect::from_corners(&Point::from([0.5, 0.5]), &Point::from([2.0, 2.0]));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.lo(), Point::from([0.5, 0.5]));
        assert_eq!(i.hi(), Point::from([1.0, 1.0]));
        let u = a.union(&b);
        assert_eq!(u.lo(), Point::from([0.0, 0.0]));
        assert_eq!(u.hi(), Point::from([2.0, 2.0]));

        let far = Rect::from_corners(&Point::from([5.0, 5.0]), &Point::from([6.0, 6.0]));
        assert!(a.intersection(&far).is_none());
        assert!(!a.intersects(&far));
    }

    #[test]
    fn union_all_covers_everything() {
        let rects = [
            Rect::from_point(&Point::from([0.0, 0.0])),
            Rect::from_point(&Point::from([1.0, 5.0])),
            Rect::from_point(&Point::from([-2.0, 3.0])),
        ];
        let u = Rect::union_all(rects.iter());
        assert_eq!(u.lo(), Point::from([-2.0, 0.0]));
        assert_eq!(u.hi(), Point::from([1.0, 5.0]));
    }

    #[test]
    fn min_max_dist_to_point() {
        let r = unit_square();
        let q = Point::from([2.0, 0.5]);
        assert_eq!(r.min_dist(&q, LpNorm::L2), 1.0);
        // farthest corner is (0,0) or (0,1): sqrt(4 + 0.25)
        assert!((r.max_dist(&q, LpNorm::L2) - (4.25f64).sqrt()).abs() < 1e-12);
        // inside point
        let inside = Point::from([0.5, 0.5]);
        assert_eq!(r.min_dist(&inside, LpNorm::L2), 0.0);
        assert!((r.max_dist(&inside, LpNorm::L2) - (0.5f64.powi(2) * 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rect_to_rect_distances() {
        let a = unit_square();
        let b = Rect::from_corners(&Point::from([2.0, 0.0]), &Point::from([3.0, 1.0]));
        assert_eq!(a.min_dist_rect(&b, LpNorm::L2), 1.0);
        assert!((a.max_dist_rect(&b, LpNorm::L2) - (9.0f64 + 1.0).sqrt()).abs() < 1e-12);
        // overlapping boxes -> min dist 0
        let c = Rect::from_corners(&Point::from([0.5, 0.5]), &Point::from([1.5, 1.5]));
        assert_eq!(a.min_dist_rect(&c, LpNorm::L2), 0.0);
    }

    #[test]
    fn split_partitions_box() {
        let r = unit_square();
        let (lo, hi) = r.split(0, 0.3);
        assert_eq!(lo.hi(), Point::from([0.3, 1.0]));
        assert_eq!(hi.lo(), Point::from([0.3, 0.0]));
        assert!((lo.volume() + hi.volume() - r.volume()).abs() < 1e-12);
    }

    #[test]
    fn longest_extent_picks_widest_axis() {
        let r = Rect::from_corners(&Point::from([0.0, 0.0]), &Point::from([1.0, 3.0]));
        assert_eq!(r.longest_extent(), (1, 3.0));
    }

    fn arb_rect() -> impl Strategy<Value = Rect> {
        (-10.0..10.0f64, 0.0..5.0f64, -10.0..10.0f64, 0.0..5.0f64).prop_map(|(x, w, y, h)| {
            Rect::from_corners(&Point::from([x, y]), &Point::from([x + w, y + h]))
        })
    }

    proptest! {
        #[test]
        fn prop_min_le_max_point(r in arb_rect(), qx in -20.0..20.0f64, qy in -20.0..20.0f64) {
            let q = Point::from([qx, qy]);
            for n in [LpNorm::L1, LpNorm::L2, LpNorm::LInf] {
                prop_assert!(r.min_dist(&q, n) <= r.max_dist(&q, n) + 1e-9);
            }
        }

        #[test]
        fn prop_corner_realizes_max_dist(r in arb_rect(), qx in -20.0..20.0f64, qy in -20.0..20.0f64) {
            let q = Point::from([qx, qy]);
            let best = r
                .corners()
                .iter()
                .map(|c| LpNorm::L2.dist(c, &q))
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((r.max_dist(&q, LpNorm::L2) - best).abs() < 1e-9);
        }

        #[test]
        fn prop_min_dist_zero_iff_inside(r in arb_rect(), qx in -20.0..20.0f64, qy in -20.0..20.0f64) {
            let q = Point::from([qx, qy]);
            prop_assert_eq!(r.min_dist(&q, LpNorm::L2) == 0.0, r.contains(&q));
        }

        #[test]
        fn prop_rect_min_dist_consistent_with_sampling(a in arb_rect(), b in arb_rect()) {
            // the box-to-box MinDist must lower-bound the distance between any
            // pair of corner points
            let md = a.min_dist_rect(&b, LpNorm::L2);
            for ca in a.corners() {
                for cb in b.corners() {
                    prop_assert!(md <= LpNorm::L2.dist(&ca, &cb) + 1e-9);
                }
            }
        }

        #[test]
        fn prop_rect_max_dist_attained_at_corners(a in arb_rect(), b in arb_rect()) {
            let xd = a.max_dist_rect(&b, LpNorm::L2);
            let best = a
                .corners()
                .iter()
                .flat_map(|ca| b.corners().into_iter().map(move |cb| LpNorm::L2.dist(ca, &cb)))
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((xd - best).abs() < 1e-9);
        }

        #[test]
        fn prop_union_contains_both(a in arb_rect(), b in arb_rect()) {
            let u = a.union(&b);
            prop_assert!(u.contains_rect(&a));
            prop_assert!(u.contains_rect(&b));
        }
    }
}
