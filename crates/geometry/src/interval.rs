//! Closed one-dimensional intervals `[lo, hi]`.
//!
//! Intervals are the per-dimension projections of uncertainty regions. The
//! domination criteria of the paper (Corollary 1) work dimension-by-dimension
//! on these projections via [`Interval::min_dist`] / [`Interval::max_dist`].

use serde::{Deserialize, Serialize};

/// A closed interval `[lo, hi]` with `lo <= hi`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is non-finite.
    #[inline]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite(),
            "interval bounds must be finite"
        );
        assert!(lo <= hi, "interval requires lo <= hi (got [{lo}, {hi}])");
        Interval { lo, hi }
    }

    /// A degenerate interval `[x, x]` (a certain value).
    #[inline]
    pub fn point(x: f64) -> Self {
        Interval::new(x, x)
    }

    /// Lower bound.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Length `hi - lo`.
    #[inline]
    pub fn len(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the interval is a single point.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.lo == self.hi
    }

    /// Midpoint.
    #[inline]
    pub fn center(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether `x` lies inside the closed interval.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether `other` is fully contained in `self`.
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether the two closed intervals share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection of two intervals, if non-empty.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then(|| Interval::new(lo, hi))
    }

    /// Smallest interval covering both inputs.
    pub fn union(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Minimal distance from any point of the interval to the point `x`
    /// (`0` if `x` is inside).
    ///
    /// This is the 1-D `MinDist(A_i, r_i)` of Corollary 1.
    #[inline]
    pub fn min_dist(&self, x: f64) -> f64 {
        if x < self.lo {
            self.lo - x
        } else if x > self.hi {
            x - self.hi
        } else {
            0.0
        }
    }

    /// Maximal distance from any point of the interval to the point `x`.
    ///
    /// This is the 1-D `MaxDist(A_i, r_i)` of Corollary 1.
    #[inline]
    pub fn max_dist(&self, x: f64) -> f64 {
        (x - self.lo).abs().max((x - self.hi).abs())
    }

    /// Splits the interval at `x` into `([lo, x], [x, hi])`.
    ///
    /// # Panics
    /// Panics if `x` is outside the interval.
    pub fn split_at(&self, x: f64) -> (Interval, Interval) {
        assert!(self.contains(x), "split point {x} outside {self:?}");
        (Interval::new(self.lo, x), Interval::new(x, self.hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let iv = Interval::new(-1.0, 3.0);
        assert_eq!(iv.lo(), -1.0);
        assert_eq!(iv.hi(), 3.0);
        assert_eq!(iv.len(), 4.0);
        assert_eq!(iv.center(), 1.0);
        assert!(!iv.is_degenerate());
        assert!(Interval::point(2.0).is_degenerate());
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_bounds_rejected() {
        let _ = Interval::new(2.0, 1.0);
    }

    #[test]
    fn containment_and_intersection() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        let c = Interval::new(2.5, 4.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&b), Some(Interval::new(1.0, 2.0)));
        assert_eq!(a.intersection(&c), None);
        assert!(a.contains_interval(&Interval::new(0.5, 1.5)));
        assert!(!a.contains_interval(&b));
    }

    #[test]
    fn touching_intervals_intersect() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(1.0, 2.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(Interval::point(1.0)));
    }

    #[test]
    fn min_max_dist_point_outside_below() {
        let iv = Interval::new(1.0, 3.0);
        assert_eq!(iv.min_dist(0.0), 1.0);
        assert_eq!(iv.max_dist(0.0), 3.0);
    }

    #[test]
    fn min_max_dist_point_inside() {
        let iv = Interval::new(1.0, 3.0);
        assert_eq!(iv.min_dist(2.0), 0.0);
        assert_eq!(iv.max_dist(2.0), 1.0);
        // closer to the lower end -> max dist is to the upper end
        assert_eq!(iv.max_dist(1.5), 1.5);
    }

    #[test]
    fn min_max_dist_point_above() {
        let iv = Interval::new(1.0, 3.0);
        assert_eq!(iv.min_dist(5.0), 2.0);
        assert_eq!(iv.max_dist(5.0), 4.0);
    }

    #[test]
    fn split_at_center() {
        let iv = Interval::new(0.0, 4.0);
        let (l, r) = iv.split_at(1.0);
        assert_eq!(l, Interval::new(0.0, 1.0));
        assert_eq!(r, Interval::new(1.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn split_outside_rejected() {
        Interval::new(0.0, 1.0).split_at(2.0);
    }

    #[test]
    fn union_covers_both() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(3.0, 4.0);
        assert_eq!(a.union(&b), Interval::new(0.0, 4.0));
    }

    proptest! {
        #[test]
        fn prop_min_le_max(lo in -1e3..1e3f64, len in 0.0..1e3f64, x in -2e3..2e3f64) {
            let iv = Interval::new(lo, lo + len);
            prop_assert!(iv.min_dist(x) <= iv.max_dist(x) + 1e-12);
        }

        #[test]
        fn prop_min_dist_zero_iff_contained(lo in -1e3..1e3f64, len in 0.0..1e3f64, x in -2e3..2e3f64) {
            let iv = Interval::new(lo, lo + len);
            prop_assert_eq!(iv.min_dist(x) == 0.0, iv.contains(x));
        }

        #[test]
        fn prop_endpoint_realizes_max(lo in -1e3..1e3f64, len in 0.0..1e3f64, x in -2e3..2e3f64) {
            let iv = Interval::new(lo, lo + len);
            let at_ends = (x - iv.lo()).abs().max((x - iv.hi()).abs());
            prop_assert_eq!(iv.max_dist(x), at_ends);
        }

        #[test]
        fn prop_split_preserves_cover(lo in -1e3..1e3f64, len in 1e-6..1e3f64, t in 0.0..1.0f64) {
            let iv = Interval::new(lo, lo + len);
            let x = lo + t * len;
            let (l, r) = iv.split_at(x);
            prop_assert_eq!(l.lo(), iv.lo());
            prop_assert_eq!(r.hi(), iv.hi());
            prop_assert_eq!(l.hi(), r.lo());
        }
    }
}
