//! `Lp` norms.
//!
//! The paper states its techniques for arbitrary `Lp` norms (footnote 1);
//! Euclidean distance is the default throughout the evaluation. Domination
//! criteria compare *p-th powers* of per-dimension distances, so the norm
//! type exposes both the full distance and the `powi`-style per-dimension
//! contribution used in Corollary 1.

use serde::{Deserialize, Serialize};

use crate::point::Point;

/// An `Lp` norm with integer `p >= 1`, or the Chebyshev (`L∞`) norm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum LpNorm {
    /// Manhattan distance.
    L1,
    /// Euclidean distance (the paper's default).
    #[default]
    L2,
    /// General `Lp` with integer `p >= 1`.
    P(u32),
    /// Chebyshev distance (`max` over dimensions).
    LInf,
}

impl LpNorm {
    /// The exponent `p` as `f64`; `None` for `L∞`.
    pub fn exponent(&self) -> Option<f64> {
        match self {
            LpNorm::L1 => Some(1.0),
            LpNorm::L2 => Some(2.0),
            LpNorm::P(p) => Some(f64::from(*p)),
            LpNorm::LInf => None,
        }
    }

    /// `|d|^p`, the per-dimension contribution to the p-th power of the
    /// distance. For `L∞` this is `|d|` (aggregation is then `max`).
    #[inline]
    pub fn pow(&self, d: f64) -> f64 {
        match self {
            LpNorm::L1 => d.abs(),
            LpNorm::L2 => d * d,
            LpNorm::P(p) => d.abs().powi(*p as i32),
            LpNorm::LInf => d.abs(),
        }
    }

    /// Aggregates per-dimension contributions: sum for finite `p`, max for
    /// `L∞`.
    #[inline]
    pub fn aggregate(&self, contributions: impl IntoIterator<Item = f64>) -> f64 {
        match self {
            LpNorm::LInf => contributions.into_iter().fold(0.0f64, |acc, c| acc.max(c)),
            _ => contributions.into_iter().sum(),
        }
    }

    /// Inverts the aggregation: `agg^(1/p)` for finite `p`, identity for
    /// `L∞`.
    #[inline]
    pub fn root(&self, agg: f64) -> f64 {
        match self {
            LpNorm::L1 | LpNorm::LInf => agg,
            LpNorm::L2 => agg.sqrt(),
            LpNorm::P(p) => agg.powf(1.0 / f64::from(*p)),
        }
    }

    /// Full distance between two points under this norm.
    pub fn dist(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dims(), b.dims());
        let agg = self.aggregate(
            a.coords()
                .iter()
                .zip(b.coords().iter())
                .map(|(x, y)| self.pow(x - y)),
        );
        self.root(agg)
    }

    /// Distance raised to the p-th power (identity under `L∞`). Cheaper than
    /// [`LpNorm::dist`] and sufficient wherever only comparisons are needed.
    pub fn dist_pow(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dims(), b.dims());
        self.aggregate(
            a.coords()
                .iter()
                .zip(b.coords().iter())
                .map(|(x, y)| self.pow(x - y)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pts() -> (Point, Point) {
        (Point::from([0.0, 0.0]), Point::from([3.0, 4.0]))
    }

    #[test]
    fn l2_matches_euclid() {
        let (a, b) = pts();
        assert_eq!(LpNorm::L2.dist(&a, &b), 5.0);
        assert_eq!(LpNorm::L2.dist_pow(&a, &b), 25.0);
    }

    #[test]
    fn l1_is_sum_of_abs() {
        let (a, b) = pts();
        assert_eq!(LpNorm::L1.dist(&a, &b), 7.0);
    }

    #[test]
    fn linf_is_max() {
        let (a, b) = pts();
        assert_eq!(LpNorm::LInf.dist(&a, &b), 4.0);
    }

    #[test]
    fn p3_norm() {
        let a = Point::from([0.0]);
        let b = Point::from([2.0]);
        assert!((LpNorm::P(3).dist(&a, &b) - 2.0).abs() < 1e-12);
        assert_eq!(LpNorm::P(3).dist_pow(&a, &b), 8.0);
    }

    #[test]
    fn generic_p2_equals_l2() {
        let (a, b) = pts();
        assert!((LpNorm::P(2).dist(&a, &b) - LpNorm::L2.dist(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn exponents() {
        assert_eq!(LpNorm::L1.exponent(), Some(1.0));
        assert_eq!(LpNorm::L2.exponent(), Some(2.0));
        assert_eq!(LpNorm::P(4).exponent(), Some(4.0));
        assert_eq!(LpNorm::LInf.exponent(), None);
    }

    proptest! {
        #[test]
        fn prop_triangle_inequality_l2(
            ax in -10.0..10.0f64, ay in -10.0..10.0f64,
            bx in -10.0..10.0f64, by in -10.0..10.0f64,
            cx in -10.0..10.0f64, cy in -10.0..10.0f64,
        ) {
            let a = Point::from([ax, ay]);
            let b = Point::from([bx, by]);
            let c = Point::from([cx, cy]);
            let n = LpNorm::L2;
            prop_assert!(n.dist(&a, &c) <= n.dist(&a, &b) + n.dist(&b, &c) + 1e-9);
        }

        #[test]
        fn prop_norm_ordering(
            ax in -10.0..10.0f64, ay in -10.0..10.0f64,
            bx in -10.0..10.0f64, by in -10.0..10.0f64,
        ) {
            // ||.||_inf <= ||.||_2 <= ||.||_1 in R^d
            let a = Point::from([ax, ay]);
            let b = Point::from([bx, by]);
            let (l1, l2, li) = (
                LpNorm::L1.dist(&a, &b),
                LpNorm::L2.dist(&a, &b),
                LpNorm::LInf.dist(&a, &b),
            );
            prop_assert!(li <= l2 + 1e-12);
            prop_assert!(l2 <= l1 + 1e-12);
        }

        #[test]
        fn prop_dist_pow_consistent(
            ax in -10.0..10.0f64, ay in -10.0..10.0f64,
            bx in -10.0..10.0f64, by in -10.0..10.0f64,
        ) {
            let a = Point::from([ax, ay]);
            let b = Point::from([bx, by]);
            for n in [LpNorm::L1, LpNorm::L2, LpNorm::P(3), LpNorm::LInf] {
                let d = n.dist(&a, &b);
                let dp = n.dist_pow(&a, &b);
                prop_assert!((n.root(dp) - d).abs() < 1e-9);
            }
        }
    }
}
