//! `#[derive(Serialize, Deserialize)]` for the offline `serde` stand-in.
//!
//! `syn`/`quote` are unavailable offline, so the input item is parsed
//! directly from the `proc_macro` token stream. Supported shapes — named
//! structs, tuple structs and enums with unit/tuple/struct variants —
//! cover everything this workspace derives. The generated code follows
//! serde's default representations (maps for named fields, plain values
//! for newtypes, external tagging for enums), so the emitted JSON matches
//! real serde output for these types. Generic types are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<(String, Variant)>),
}

#[derive(Debug)]
enum Variant {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the stand-in `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives the stand-in `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = if ser {
        gen_serialize(&name, &shape)
    } else {
        gen_deserialize(&name, &shape)
    };
    code.parse().unwrap()
}

// ---- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive does not support generics (type `{name}`)"
        ));
    }

    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(count_tuple_fields(g.stream()))))
            }
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1; // the [...] group
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                // `pub(crate)` etc.
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` (attributes and visibility allowed per field).
/// Commas nested in `<...>` belong to the type, not the field list; paren /
/// bracket nesting arrives pre-grouped by the tokenizer.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        let field = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected `:` after `{field}`, found {other:?}")),
        }
        fields.push(field);
        skip_type_until_comma(&tokens, &mut pos);
    }
    Ok(fields)
}

fn skip_type_until_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *pos += 1; // consume the separator
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        count += 1;
        skip_type_until_comma(&tokens, &mut pos);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Variant)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        let variant = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Variant::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Variant::Named(parse_named_fields(g.stream())?)
            }
            _ => Variant::Unit,
        };
        // optional discriminant `= expr` (unsupported beyond skipping) and
        // the trailing comma
        while let Some(tok) = tokens.get(pos) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push((name, variant));
    }
    Ok(variants)
}

// ---- code generation -------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, var)| match var {
                    Variant::Unit => format!(
                        "{name}::{v} => serde::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    Variant::Tuple(1) => format!(
                        "{name}::{v}(__f0) => serde::Value::Map(::std::vec![(::std::string::String::from({v:?}), serde::Serialize::to_value(__f0))]),"
                    ),
                    Variant::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => serde::Value::Map(::std::vec![(::std::string::String::from({v:?}), serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Variant::Named(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => serde::Value::Map(::std::vec![(::std::string::String::from({v:?}), serde::Value::Map(::std::vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: serde::Deserialize::from_value(__v.field({f:?})?)?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.seq_n({n})?; ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, var)| matches!(var, Variant::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, var)| match var {
                    Variant::Unit => None,
                    Variant::Tuple(1) => Some(format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(serde::Deserialize::from_value(__val)?)),"
                    )),
                    Variant::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        Some(format!(
                            "{v:?} => {{ let __items = __val.seq_n({n})?; ::std::result::Result::Ok({name}::{v}({})) }}",
                            items.join(", ")
                        ))
                    }
                    Variant::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("{f}: serde::Deserialize::from_value(__val.field({f:?})?)?")
                            })
                            .collect();
                        Some(format!(
                            "{v:?} => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(serde::Error::msg(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __val) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(serde::Error::msg(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(serde::Error::msg(::std::format!(\"invalid {name} representation: {{__other:?}}\"))),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         \tfn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{ {body} }}\n\
         }}"
    )
}
