//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`], built on the
//! `serde` stand-in's [`Value`] data model.

pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
///
/// # Errors
/// Fails on non-finite floats (JSON has no representation for them).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
/// Fails on non-finite floats.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

// ---- writer ----------------------------------------------------------------

fn write_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::msg(format!("cannot serialize non-finite float {x}")));
            }
            // `{:?}` is the shortest representation that round-trips; it is
            // always valid JSON for finite floats (e.g. `1.0`, `1e300`).
            out.push_str(&format!("{x:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out)?;
            }
            if !items.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out)?;
            }
            if !entries.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' | b'f' | b'n' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
                }
            }
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                            // surrogate pairs are not needed for this
                            // workspace's ASCII field names; reject them
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("unsupported \\u escape"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // re-decode UTF-8 starting at the byte we consumed
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_valid_json_number(text) {
            return Err(Error::msg(format!(
                "invalid number `{text}` at byte {start}"
            )));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(mag) = stripped.parse::<u64>() {
                    if mag <= i64::MAX as u64 {
                        return Ok(Value::I64(-(mag as i64)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

/// Enforces the JSON number grammar (`-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`):
/// the byte scanner above consumes sign/dot/exponent characters anywhere,
/// so forms like `+5`, `.5`, `5.` or `1e` must be rejected here rather
/// than punted to `f64::parse` (which is more lenient than JSON).
fn is_valid_json_number(text: &str) -> bool {
    let mut rest = text.strip_prefix('-').unwrap_or(text);
    // integer part: `0` or a non-zero digit run
    let int_len = rest.bytes().take_while(|b| b.is_ascii_digit()).count();
    if int_len == 0 || (int_len > 1 && rest.starts_with('0')) {
        return false;
    }
    rest = &rest[int_len..];
    if let Some(frac) = rest.strip_prefix('.') {
        let frac_len = frac.bytes().take_while(|b| b.is_ascii_digit()).count();
        if frac_len == 0 {
            return false;
        }
        rest = &frac[frac_len..];
    }
    if let Some(exp) = rest.strip_prefix(['e', 'E']) {
        let exp = exp.strip_prefix(['+', '-']).unwrap_or(exp);
        let exp_len = exp.bytes().take_while(|b| b.is_ascii_digit()).count();
        if exp_len == 0 {
            return false;
        }
        rest = &exp[exp_len..];
    }
    rest.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn vec_round_trip() {
        let v = vec![0.25f64, 1.0, 1e-9];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);
    }

    #[test]
    fn nested_value_round_trip() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::U64(1), Value::F64(0.5)])),
            ("s".into(), Value::Str("he\"llo\n".into())),
            ("n".into(), Value::Null),
        ]);
        let json = to_string_pretty(&ValueWrap(v.clone())).unwrap();
        let back: ValueWrap = from_str(&json).unwrap();
        assert_eq!(back.0, v);
    }

    /// Helper: serialize/deserialize a raw `Value` tree.
    struct ValueWrap(Value);

    impl serde::Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    impl serde::Deserialize for ValueWrap {
        fn from_value(v: &Value) -> Result<Self, Error> {
            Ok(ValueWrap(v.clone()))
        }
    }

    #[test]
    fn shortest_float_representation_round_trips() {
        for &x in &[0.1, 1.0 / 3.0, 6.02e23, 5e-324, 0.004] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), x, "{json}");
        }
    }

    #[test]
    fn rejects_trailing_garbage_and_nan() {
        assert!(from_str::<f64>("1.0 x").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn enforces_json_number_grammar() {
        for bad in [
            "+5", ".5", "5.", "1e", "1e+", "01", "-", "--1", "1.2.3", "0x1",
        ] {
            assert!(from_str::<f64>(bad).is_err(), "accepted `{bad}`");
        }
        for good in ["0", "-0", "10", "0.5", "-12.25", "1e3", "1E-3", "2.5e+10"] {
            assert!(from_str::<f64>(good).is_ok(), "rejected `{good}`");
        }
    }
}
