//! Offline stand-in for the subset of [`serde`](https://serde.rs) this
//! workspace uses: `#[derive(Serialize, Deserialize)]` plus the
//! `serde_json::{to_string, to_string_pretty, from_str}` entry points.
//!
//! Instead of serde's visitor architecture, everything routes through one
//! self-describing [`Value`] tree (the JSON data model). The derive macros
//! (see `serde_derive`) generate `to_value`/`from_value` implementations
//! with serde's externally-tagged enum representation, so the JSON produced
//! here matches what real serde would emit for the types in this workspace.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value — the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A finite float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object (insertion-ordered).
    Map(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Shorthand constructor.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl Value {
    /// Looks up a field of a [`Value::Map`].
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected map with field `{name}`, found {other:?}"
            ))),
        }
    }

    /// The elements of a [`Value::Seq`].
    pub fn seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::msg(format!("expected sequence, found {other:?}"))),
        }
    }

    /// The elements of a [`Value::Seq`] of an exact length.
    pub fn seq_n(&self, n: usize) -> Result<&[Value], Error> {
        let items = self.seq()?;
        if items.len() != n {
            return Err(Error::msg(format!(
                "expected sequence of length {n}, found {}",
                items.len()
            )));
        }
        Ok(items)
    }

    /// Numeric view as `f64` (accepts any numeric variant).
    pub fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::F64(x) => Ok(x),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            ref other => Err(Error::msg(format!("expected number, found {other:?}"))),
        }
    }

    /// Numeric view as `u64` (accepts integral floats).
    pub fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::U64(x) => Ok(x),
            Value::I64(x) if x >= 0 => Ok(x as u64),
            Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Ok(x as u64),
            ref other => Err(Error::msg(format!(
                "expected unsigned integer, found {other:?}"
            ))),
        }
    }

    /// Numeric view as `i64` (accepts integral floats).
    pub fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::I64(x) => Ok(x),
            Value::U64(x) if x <= i64::MAX as u64 => Ok(x as i64),
            Value::F64(x)
                if x.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&x) =>
            {
                Ok(x as i64)
            }
            ref other => Err(Error::msg(format!("expected integer, found {other:?}"))),
        }
    }
}

/// Conversion into the [`Value`] data model (stands in for
/// `serde::Serialize`).
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model (stands in for
/// `serde::Deserialize`).
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// `Value` is its own data model: serializing is the identity, so
// arbitrary JSON documents can be inspected structurally (real
// `serde_json::Value` offers the same).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---- primitive impls -------------------------------------------------------

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(v.as_f64()? as $t)
            }
        }
    )*};
}
float_impl!(f64, f32);

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::msg(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
uint_impl!(u64, u32, u16, u8, usize);

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::msg(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
int_impl!(i64, i32, i16, i8, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

// ---- containers ------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.seq()?.iter().map(Deserialize::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(v)?.into_boxed_slice())
    }
}

// `T: Sized` (the implicit bound) keeps this from overlapping the
// dedicated `Box<[T]>` impls above.
impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const N: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v.seq_n(N)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(usize::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<f64> = vec![1.0, 2.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(o.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let t = (0.5f64, vec![1.0f64]);
        let tv = t.to_value();
        assert_eq!(<(f64, Vec<f64>)>::from_value(&tv).unwrap(), t);
    }

    #[test]
    fn map_field_lookup() {
        let m = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(m.field("a").unwrap(), &Value::U64(1));
        assert!(m.field("b").is_err());
    }
}
