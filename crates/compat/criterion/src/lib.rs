//! Offline stand-in for the subset of [`criterion`](https://bheisler.github.io/criterion.rs)
//! this workspace uses. It performs real (if simpler) measurements:
//! per benchmark it warms up, runs `sample_size` timed samples (each
//! batching enough iterations to dominate timer overhead) and reports the
//! median/min/max nanoseconds per iteration on stdout.
//!
//! Environment knobs:
//!
//! * `UDB_BENCH_JSON=<path>` — append one JSON object per benchmark
//!   (NDJSON) with the measured statistics;
//! * `UDB_BENCH_FAST=1` — shrink warm-up and sample targets for CI smoke
//!   runs.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// `group/id` path.
    pub name: String,
    /// Median over samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// The benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    fast: bool,
    json_path: Option<String>,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; a positional arg acts as a
        // substring filter like real criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 30,
            fast: std::env::var("UDB_BENCH_FAST").is_ok_and(|v| v != "0"),
            json_path: std::env::var("UDB_BENCH_JSON")
                .ok()
                .filter(|p| !p.is_empty()),
            filter,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(id.to_string(), sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: String, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let stats = measure(&name, sample_size, self.fast, &mut f);
        println!(
            "bench {:<48} median {:>12.1} ns/iter  (min {:.1}, max {:.1}, {} samples x {} iters)",
            stats.name,
            stats.median_ns,
            stats.min_ns,
            stats.max_ns,
            stats.samples,
            stats.iters_per_sample
        );
        if let Some(path) = &self.json_path {
            let line = format!(
                "{{\"bench\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}\n",
                stats.name,
                stats.median_ns,
                stats.min_ns,
                stats.max_ns,
                stats.samples,
                stats.iters_per_sample
            );
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = file.write_all(line.as_bytes());
            }
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into().0);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(name, samples, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier (subset of `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn measure<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    fast: bool,
    f: &mut F,
) -> BenchStats {
    // calibration: one iteration, to size the batches
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let single_ns = bencher.elapsed.as_nanos().max(1) as f64;

    // batch enough iterations that each sample runs >= `target_sample_ns`
    let target_sample_ns = if fast { 200_000.0 } else { 2_000_000.0 };
    let iters_per_sample = ((target_sample_ns / single_ns).ceil() as u64).clamp(1, 1_000_000);
    let samples = if fast {
        sample_size.clamp(3, 10)
    } else {
        sample_size.max(3)
    };

    // warm-up
    bencher.iters = iters_per_sample;
    f(&mut bencher);

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        bencher.iters = iters_per_sample;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        per_iter.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    BenchStats {
        name: name.to_string(),
        median_ns: per_iter[per_iter.len() / 2],
        min_ns: per_iter[0],
        max_ns: *per_iter.last().unwrap(),
        samples,
        iters_per_sample,
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
