//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API this workspace uses.
//!
//! The build environment has no network access, so the workspace vendors
//! the handful of trait/method signatures it needs: [`SeedableRng`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`) and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than the real `StdRng` (ChaCha12), but the workspace only relies
//! on determinism-per-seed and statistical quality, never on a specific
//! stream.

pub mod rngs;

/// Core source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable RNG constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`), blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a standard-distributed type (`f64` in `[0, 1)`,
    /// uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`]. Like real `rand`, this is one
/// generic impl per range shape over [`SampleUniform`] element types, so
/// integer-literal inference unifies the element type with the use site
/// (e.g. `rng.gen_range(0..3)` used as a slice index becomes `usize`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniformly samplable from ranges.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + rng.next_f64() * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + (rng.next_f64() as f32) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + (rng.next_f64() as f32) * (hi - lo)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                // Multiply-shift bounded sampling (Lemire); the bias of a
                // plain modulo would already be < span / 2^64 but this is
                // just as cheap and exactly uniform enough for tests.
                let span = hi.wrapping_sub(lo) as $u as u64;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(v as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = hi.wrapping_sub(lo) as $u as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

int_sample_uniform!(
    usize => usize, u64 => u64, u32 => u32, u16 => u16, u8 => u8,
    isize => usize, i64 => u64, i32 => u32, i16 => u16, i8 => u8
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_integers_cover_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_floats_stay_inside() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}
