//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;

/// Generates values of `Self::Value` (subset of `proptest::strategy::Strategy`;
/// generation only, no shrink tree).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u64, u32, u16, u8, i64, i32);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}
