//! Test-runner configuration and the per-case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Number of generated cases per property (subset of
/// `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// The deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator for one case, derived from the property name and case
    /// index so every property sees an independent, reproducible stream.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ ((case as u64) << 32) ^ case as u64,
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
