//! Runtime support for the `proptest!` macro.

use crate::test_runner::TestRng;

/// Runs `cases` generated cases of a property body. The body returns
/// `Err(message)` (via `prop_assert!`) to fail the case; panics propagate
/// with the case index attached so the failure is reproducible.
pub fn run_cases<F>(cases: u32, test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    for case in 0..cases {
        let mut rng = TestRng::for_case(test_name, case);
        if let Err(msg) = body(&mut rng) {
            panic!("proptest case {case}/{cases} of `{test_name}` failed: {msg}");
        }
    }
}
