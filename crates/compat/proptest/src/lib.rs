//! Offline stand-in for the subset of [`proptest`](https://proptest-rs.github.io)
//! this workspace uses: the `proptest!` macro with `pat in strategy`
//! bindings, `prop_assert!`/`prop_assert_eq!`, range and tuple strategies,
//! `proptest::collection::vec` and `.prop_map`.
//!
//! No shrinking is performed — a failing case reports its deterministic
//! case seed instead. Case count defaults to 64 (override with the
//! `PROPTEST_CASES` environment variable or `ProptestConfig::with_cases`).

pub mod collection;
pub mod strategy;
pub mod sugar;
pub mod test_runner;

/// The common imports: `Strategy`, `ProptestConfig` and the macros.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                $crate::sugar::run_cases(__config.cases, stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])*
              fn $name($($pat in $strat),+) $body)*
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// with a formatted message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::string::String::from(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` != `{}` ({:?} vs {:?})",
                stringify!($lhs), stringify!($rhs), __l, __r,
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if __l == __r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}` ({:?})",
                stringify!($lhs),
                stringify!($rhs),
                __l,
            ));
        }
    }};
}
