//! Probabilistic domination bounds (Lemmas 1–2 of the paper).
//!
//! Given disjoint decompositions `A`, `B`, `R` of three uncertain objects,
//! the probability `PDom(A,B,R)` that `A` is closer to `R` than `B` is
//! bounded from below by accumulating the masses of all partition triples
//! `(A', B', R')` for which *complete* spatial domination holds
//! (Lemma 1), and from above by `1 − PDomLB(B,A,R)` (Lemma 2). Both sides
//! of the triple loop are evaluated in one pass.

use udb_geometry::LpNorm;
use udb_object::{Decomposition, Partition};

use crate::spatial::DominationCriterion;

/// Conservative (`lower`) and progressive (`upper`) bounds for
/// `PDom(A, B, R)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PDomBounds {
    /// `PDomLB(A,B,R)`: in at least this fraction of possible worlds `A`
    /// dominates `B`.
    pub lower: f64,
    /// `PDomUB(A,B,R) = 1 − PDomLB(B,A,R)`.
    pub upper: f64,
}

impl PDomBounds {
    /// The vacuous bounds `[0, 1]`.
    pub const UNKNOWN: PDomBounds = PDomBounds {
        lower: 0.0,
        upper: 1.0,
    };

    /// Certain domination.
    pub const ONE: PDomBounds = PDomBounds {
        lower: 1.0,
        upper: 1.0,
    };

    /// Certain non-domination.
    pub const ZERO: PDomBounds = PDomBounds {
        lower: 0.0,
        upper: 0.0,
    };

    /// Width of the bound interval (the per-relation uncertainty).
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether the bounds have collapsed to (numerically) a point.
    pub fn is_decided(&self, eps: f64) -> bool {
        self.width() <= eps
    }

    /// Scales the bounds by an existence probability `e`: if `A` exists
    /// with probability `e` and dominates with conditional probability in
    /// `[lower, upper]`, the unconditional probability lies in
    /// `[e·lower, e·upper]` (a non-existing `A` never dominates).
    pub fn scale_by_existence(self, e: f64) -> PDomBounds {
        debug_assert!((0.0..=1.0).contains(&e));
        PDomBounds {
            lower: self.lower * e,
            upper: self.upper * e,
        }
    }
}

/// Computes [`PDomBounds`] from explicit partition lists (Lemmas 1–2).
///
/// Partition masses of each object must sum to (approximately) one and the
/// partitions of one object must be pairwise disjoint; both hold for
/// partitions produced by [`udb_object::Decomposition`].
///
/// Complexity: `O(|A| · |B| · |R|)` spatial tests.
pub fn pdom_bounds(
    a_parts: &[Partition],
    b_parts: &[Partition],
    r_parts: &[Partition],
    norm: LpNorm,
    criterion: DominationCriterion,
) -> PDomBounds {
    let mut lb = 0.0; // PDomLB(A, B, R)
    let mut never = 0.0; // mass of combinations where A certainly does not dominate
    for r in r_parts {
        for b in b_parts {
            let wrb = r.mass * b.mass;
            for a in a_parts {
                let w = wrb * a.mass;
                if criterion.dominates(&a.mbr, &b.mbr, &r.mbr, norm) {
                    lb += w;
                } else if criterion.never_dominates(&a.mbr, &b.mbr, &r.mbr, norm) {
                    // tie-correct weak complement: strictly tighter than
                    // Lemma 2's `1 − PDomLB(B,A,R)` and still conservative,
                    // because `Dom` is strict (Definition 2)
                    never += w;
                }
            }
        }
    }
    PDomBounds {
        lower: lb.min(1.0),
        upper: (1.0 - never).max(0.0),
    }
}

/// [`PDomBounds`] for a decomposed `A` against *fixed* (undecomposed)
/// regions `B'` and `R'` — the Lemma 3/5 configuration used inside the
/// IDCA inner loop, where `B` and `R` are pinned to one partition pair so
/// that the per-object bounds stay mutually independent.
///
/// Uses the short-circuiting `dominates` / `never_dominates` tests (the
/// second is only evaluated when the first fails). Incremental callers
/// that also need per-partition robustness use
/// [`DominationCriterion::classify`] directly instead.
pub fn pdom_bounds_vs_fixed(
    a_parts: &[Partition],
    b_region: &udb_geometry::Rect,
    r_region: &udb_geometry::Rect,
    norm: LpNorm,
    criterion: DominationCriterion,
) -> PDomBounds {
    let mut lb = 0.0;
    let mut never = 0.0;
    for a in a_parts {
        if criterion.dominates(&a.mbr, b_region, r_region, norm) {
            lb += a.mass;
        } else if criterion.never_dominates(&a.mbr, b_region, r_region, norm) {
            never += a.mass;
        }
    }
    PDomBounds {
        lower: lb.min(1.0),
        upper: (1.0 - never).max(0.0),
    }
}

/// Convenience wrapper taking decompositions (materializes the current
/// partition lists first; cache partitions manually in hot loops).
pub fn pdom_bounds_decomposed(
    a: &Decomposition,
    b: &Decomposition,
    r: &Decomposition,
    norm: LpNorm,
    criterion: DominationCriterion,
) -> PDomBounds {
    pdom_bounds(
        &a.partitions(),
        &b.partitions(),
        &r.partitions(),
        norm,
        criterion,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use udb_geometry::{Interval, Point, Rect};
    use udb_pdf::Pdf;

    fn part(rect: Rect, mass: f64) -> Partition {
        Partition { mbr: rect, mass }
    }

    fn point_part(x: f64, y: f64) -> Vec<Partition> {
        vec![part(Rect::from_point(&Point::from([x, y])), 1.0)]
    }

    fn seg(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi), Interval::point(0.0)])
    }

    /// Monte-Carlo estimate of PDom for uniform densities over the rects.
    fn mc_pdom(a: &Rect, b: &Rect, r: &Rect, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (pa, pb, pr) = (
            Pdf::uniform(a.clone()),
            Pdf::uniform(b.clone()),
            Pdf::uniform(r.clone()),
        );
        let mut hits = 0usize;
        for _ in 0..n {
            let (sa, sb, sr) = (
                pa.sample(&mut rng),
                pb.sample(&mut rng),
                pr.sample(&mut rng),
            );
            if LpNorm::L2.dist(&sa, &sr) < LpNorm::L2.dist(&sb, &sr) {
                hits += 1;
            }
        }
        hits as f64 / n as f64
    }

    #[test]
    fn complete_domination_gives_tight_one() {
        // A clearly between R and B
        let a = point_part(1.0, 0.0);
        let b = point_part(10.0, 0.0);
        let r = point_part(0.0, 0.0);
        let bounds = pdom_bounds(&a, &b, &r, LpNorm::L2, DominationCriterion::Optimal);
        assert_eq!(bounds, PDomBounds::ONE);
        // Corollary 2: the reverse relation is certainly zero
        let rev = pdom_bounds(&b, &a, &r, LpNorm::L2, DominationCriterion::Optimal);
        assert_eq!(rev, PDomBounds::ZERO);
    }

    #[test]
    fn undecomposed_overlap_is_unknown() {
        // identical regions: nothing decided at depth 0
        let a = vec![part(seg(0.0, 1.0), 1.0)];
        let b = vec![part(seg(0.0, 1.0), 1.0)];
        let r = vec![part(seg(2.0, 3.0), 1.0)];
        let bounds = pdom_bounds(&a, &b, &r, LpNorm::L2, DominationCriterion::Optimal);
        assert_eq!(bounds, PDomBounds::UNKNOWN);
    }

    /// The 1-D construction where the true PDom is exactly 1/2:
    /// B = {0}, A = {2}, R uniform on [0, 2] — A wins iff r > 1.
    #[test]
    fn bounds_bracket_true_half_and_tighten() {
        let a_rect = Rect::from_point(&Point::from([2.0, 0.0]));
        let b_rect = Rect::from_point(&Point::from([0.0, 0.0]));
        let r_rect = seg(0.0, 2.0);
        let r_pdf = Pdf::uniform(r_rect.clone());
        let a = vec![part(a_rect.clone(), 1.0)];
        let b = vec![part(b_rect.clone(), 1.0)];

        let mut r_dec = udb_object::Decomposition::new(&r_pdf);
        let mut prev = PDomBounds::UNKNOWN;
        for depth in 0..8 {
            let bounds = pdom_bounds(
                &a,
                &b,
                &r_dec.partitions(),
                LpNorm::L2,
                DominationCriterion::Optimal,
            );
            // brackets the truth
            assert!(bounds.lower <= 0.5 + 1e-9, "depth {depth}: {bounds:?}");
            assert!(bounds.upper >= 0.5 - 1e-9, "depth {depth}: {bounds:?}");
            // monotone tightening
            assert!(bounds.lower >= prev.lower - 1e-12);
            assert!(bounds.upper <= prev.upper + 1e-12);
            prev = bounds;
            r_dec.expand(&r_pdf);
        }
        // after 8 levels the bounds are close to the truth
        assert!(prev.width() < 0.05, "final width {}", prev.width());
    }

    #[test]
    fn figure3_shared_halfspace_probabilities() {
        // Figure 3 of the paper: A1 = A2 certain and coincident, B certain,
        // R uncertain such that PDom(Ai, B, R) = 1/2 for both. The pairwise
        // bounds must both converge to 1/2 (the dependency between the two
        // relations matters only at the domination-count level).
        let a_rect = Rect::from_point(&Point::from([2.0, 0.0]));
        let b_rect = Rect::from_point(&Point::from([0.0, 0.0]));
        let r_pdf = Pdf::uniform(seg(0.0, 2.0));
        let mut r_dec = udb_object::Decomposition::new(&r_pdf);
        r_dec.expand_to(&r_pdf, 10);
        let bounds = pdom_bounds(
            &[part(a_rect, 1.0)],
            &[part(b_rect, 1.0)],
            &r_dec.partitions(),
            LpNorm::L2,
            DominationCriterion::Optimal,
        );
        assert!((bounds.lower - 0.5).abs() < 0.01, "{bounds:?}");
        assert!((bounds.upper - 0.5).abs() < 0.01, "{bounds:?}");
    }

    #[test]
    fn existence_scaling() {
        let b = PDomBounds {
            lower: 0.4,
            upper: 0.8,
        };
        let s = b.scale_by_existence(0.5);
        assert!((s.lower - 0.2).abs() < 1e-12);
        assert!((s.upper - 0.4).abs() < 1e-12);
    }

    #[test]
    fn width_and_decided() {
        assert_eq!(PDomBounds::UNKNOWN.width(), 1.0);
        assert!(PDomBounds::ONE.is_decided(0.0));
        assert!(!PDomBounds::UNKNOWN.is_decided(0.5));
    }

    #[test]
    fn decomposed_wrapper_matches_manual() {
        let pdf_a = Pdf::uniform(seg(0.0, 1.0));
        let pdf_b = Pdf::uniform(seg(3.0, 4.0));
        let pdf_r = Pdf::uniform(seg(-2.0, -1.0));
        let mut da = udb_object::Decomposition::new(&pdf_a);
        let mut db = udb_object::Decomposition::new(&pdf_b);
        let mut dr = udb_object::Decomposition::new(&pdf_r);
        da.expand_to(&pdf_a, 2);
        db.expand_to(&pdf_b, 2);
        dr.expand_to(&pdf_r, 2);
        let via_wrapper =
            pdom_bounds_decomposed(&da, &db, &dr, LpNorm::L2, DominationCriterion::Optimal);
        let manual = pdom_bounds(
            &da.partitions(),
            &db.partitions(),
            &dr.partitions(),
            LpNorm::L2,
            DominationCriterion::Optimal,
        );
        assert_eq!(via_wrapper, manual);
        // fully separated: certain domination
        assert_eq!(via_wrapper, PDomBounds::ONE);
    }

    fn arb_seg() -> impl Strategy<Value = Rect> {
        (-5.0..5.0f64, 0.0..3.0f64, -5.0..5.0f64, 0.0..3.0f64).prop_map(|(x, w, y, h)| {
            Rect::new(vec![Interval::new(x, x + w), Interval::new(y, y + h)])
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Fundamental soundness of the bounds: the Monte-Carlo estimate of
        /// PDom must fall inside [lower − slack, upper + slack].
        #[test]
        fn prop_bounds_bracket_monte_carlo(
            ar in arb_seg(), br in arb_seg(), rr in arb_seg(), seed in 0u64..100
        ) {
            let (pa, pb, pr) = (
                Pdf::uniform(ar.clone()),
                Pdf::uniform(br.clone()),
                Pdf::uniform(rr.clone()),
            );
            let mut da = udb_object::Decomposition::new(&pa);
            let mut db = udb_object::Decomposition::new(&pb);
            let mut dr = udb_object::Decomposition::new(&pr);
            da.expand_to(&pa, 3);
            db.expand_to(&pb, 3);
            dr.expand_to(&pr, 3);
            let bounds = pdom_bounds_decomposed(&da, &db, &dr, LpNorm::L2, DominationCriterion::Optimal);
            let est = mc_pdom(&ar, &br, &rr, 4_000, seed);
            // 4000 samples: 4-sigma slack ~ 0.032
            prop_assert!(est >= bounds.lower - 0.04, "est {est} bounds {bounds:?}");
            prop_assert!(est <= bounds.upper + 0.04, "est {est} bounds {bounds:?}");
        }

        /// Lemma 2 duality (with the tie-correct weak complement): the
        /// upper bound is at least as tight as `1 − lower(B,A)` and never
        /// cuts below the forward lower bound.
        #[test]
        fn prop_upper_dominates_reverse_lower_dual(
            ar in arb_seg(), br in arb_seg(), rr in arb_seg()
        ) {
            let a = vec![part(ar, 1.0)];
            let b = vec![part(br, 1.0)];
            let r = vec![part(rr, 1.0)];
            let fwd = pdom_bounds(&a, &b, &r, LpNorm::L2, DominationCriterion::Optimal);
            let rev = pdom_bounds(&b, &a, &r, LpNorm::L2, DominationCriterion::Optimal);
            // weak complement detects at least everything the strict
            // reverse relation detects
            prop_assert!(fwd.upper <= 1.0 - rev.lower + 1e-12);
            prop_assert!(rev.upper <= 1.0 - fwd.lower + 1e-12);
            // and the bounds stay consistent
            prop_assert!(fwd.lower <= fwd.upper + 1e-12);
            prop_assert!(rev.lower <= rev.upper + 1e-12);
        }

        /// The optimal criterion never yields looser bounds than MinMax.
        #[test]
        fn prop_optimal_bounds_at_least_as_tight(
            ar in arb_seg(), br in arb_seg(), rr in arb_seg()
        ) {
            let (pa, pb, pr) = (
                Pdf::uniform(ar),
                Pdf::uniform(br),
                Pdf::uniform(rr),
            );
            let mut da = udb_object::Decomposition::new(&pa);
            let mut db = udb_object::Decomposition::new(&pb);
            let mut dr = udb_object::Decomposition::new(&pr);
            da.expand_to(&pa, 2);
            db.expand_to(&pb, 2);
            dr.expand_to(&pr, 2);
            let opt = pdom_bounds_decomposed(&da, &db, &dr, LpNorm::L2, DominationCriterion::Optimal);
            let mm = pdom_bounds_decomposed(&da, &db, &dr, LpNorm::L2, DominationCriterion::MinMax);
            prop_assert!(opt.lower >= mm.lower - 1e-12);
            prop_assert!(opt.upper <= mm.upper + 1e-12);
        }
    }
}
