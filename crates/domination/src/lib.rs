//! Spatial and probabilistic domination for uncertain objects (§III of the
//! paper).
//!
//! *Spatial* (complete) domination decides, from rectangular uncertainty
//! regions alone, whether `dist(a, r) < dist(b, r)` holds for **every**
//! `a ∈ A, b ∈ B, r ∈ R` — i.e. whether `PDom(A,B,R) = 1` regardless of
//! the attached densities. Two criteria are provided:
//!
//! * [`spatial::dominates_optimal`] — the tight criterion of Corollary 1
//!   (adopted from Emrich et al., SIGMOD'10), which accounts for the
//!   dependency of both distances on the shared reference object `R`;
//! * [`spatial::dominates_minmax`] — the classical
//!   `MaxDist(A,R) < MinDist(B,R)` test, kept as the paper's comparison
//!   baseline (Figure 6).
//!
//! *Probabilistic* domination bounds (`PDomLB ≤ PDom(A,B,R) ≤ PDomUB`)
//! accumulate spatial decisions over disjoint decompositions of the
//! objects' uncertainty regions (Lemmas 1–2); see [`probabilistic`].

pub mod probabilistic;
pub mod spatial;

pub use probabilistic::{pdom_bounds, pdom_bounds_decomposed, pdom_bounds_vs_fixed, PDomBounds};
pub use spatial::{
    dominates_minmax, dominates_optimal, DominationCriterion, PairClassifier, SpatialDecision,
};
