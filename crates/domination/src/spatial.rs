//! Complete (spatial) domination on rectangular uncertainty regions.

use udb_geometry::{LpNorm, Rect};

/// Which decision criterion detects complete domination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DominationCriterion {
    /// The tight criterion of Corollary 1 (Emrich et al., SIGMOD'10). The
    /// paper's experiments label this *Optimal*.
    #[default]
    Optimal,
    /// `MaxDist(A, R) < MinDist(B, R)` — correct but not tight, because it
    /// ignores that both distances depend on the same instantiation of `R`.
    MinMax,
}

impl DominationCriterion {
    /// Whether `a` dominates `b` w.r.t. `r` under this criterion.
    pub fn dominates(&self, a: &Rect, b: &Rect, r: &Rect, norm: LpNorm) -> bool {
        match self {
            DominationCriterion::Optimal => dominates_optimal(a, b, r, norm),
            DominationCriterion::MinMax => dominates_minmax(a, b, r, norm),
        }
    }

    /// Whether `a` can *never* dominate `b` w.r.t. `r`: in every possible
    /// world `dist(a, r) ≥ dist(b, r)`. This is the weak (non-strict)
    /// complement used for progressive bounds; it is tie-correct where
    /// `!dominates(b, a, r)` is not — coincident certain points tie and
    /// therefore never *strictly* dominate each other.
    pub fn never_dominates(&self, a: &Rect, b: &Rect, r: &Rect, norm: LpNorm) -> bool {
        match self {
            DominationCriterion::Optimal => never_dominates_optimal(a, b, r, norm),
            DominationCriterion::MinMax => never_dominates_minmax(a, b, r, norm),
        }
    }

    /// Classifies the relation in one pass and reports whether the
    /// decision is **float-robust**.
    ///
    /// The decision is exactly `dominates` / `never_dominates` (same
    /// decision sums, same strict/weak comparisons). `robust` is `true`
    /// when the decisive sum clears zero by a margin that dominates
    /// floating-point evaluation noise. Both decision sums are monotone
    /// under shrinking any of the three regions in exact arithmetic, so a
    /// *robust* decision is stable under any further decomposition of
    /// `a`, `b` or `r` — knife-edge configurations (ties, `sum ≈ 0`) are
    /// reported non-robust because refinement may flip their float
    /// evaluation. Incremental caches use `robust` to decide what may be
    /// carried without recomputation.
    pub fn classify(&self, a: &Rect, b: &Rect, r: &Rect, norm: LpNorm) -> SpatialDecision {
        match self {
            DominationCriterion::Optimal => classify_optimal(a, b, r, norm),
            DominationCriterion::MinMax => classify_minmax(a, b, r, norm),
        }
    }
}

/// Outcome of [`DominationCriterion::classify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpatialDecision {
    /// `Some(true)` = complete domination, `Some(false)` = never
    /// dominates, `None` = undecided at this resolution.
    pub decision: Option<bool>,
    /// Whether the decision margin dominates float noise (see
    /// [`DominationCriterion::classify`]). Always `false` for `None`.
    pub robust: bool,
}

/// Relative decision margin below which a classification counts as a
/// knife-edge (non-robust) case. Float noise of the decision sums is a
/// few ulps (~1e-16 relative); 1e-9 leaves three orders of magnitude of
/// slack in both directions.
const ROBUST_MARGIN: f64 = 1e-9;

/// The `(B, R)`-dependent halves of [`DominationCriterion::classify`],
/// precomputed once for a fixed pair so that streaming many `A`
/// rectangles against it evaluates only the `A`-dependent terms.
///
/// [`PairClassifier::classify`] produces **bit-identical** results to
/// `criterion.classify(a, b, r, norm)`: the precomputed values are the
/// exact same `f64`s the per-call path would compute, combined in the
/// same order — so decisions, robustness flags and every downstream sum
/// are unchanged, only roughly half the interval-distance/power work per
/// rectangle remains. This is the hot-loop classifier of the IDCA
/// refinement cache, where one partition pair is tested against every
/// open partition of every influence object.
#[derive(Debug, Clone)]
pub struct PairClassifier {
    criterion: DominationCriterion,
    norm: LpNorm,
    /// The reference region (the `A`-dependent terms still need its
    /// endpoints).
    r: Rect,
    /// Optimal criterion, per dimension: `pow(MinDist(B_i, r))` and
    /// `pow(MaxDist(B_i, r))` at the two `R_i` endpoints, in the order
    /// `[min@lo, min@hi, max@lo, max@hi]`.
    b_terms: Vec<[f64; 4]>,
    /// MinMax criterion: `pow(MinDist(B, R))` and `pow(MaxDist(B, R))`.
    minmax_b: (f64, f64),
}

impl PairClassifier {
    /// Precomputes the `B`/`R` halves for the given pair.
    pub fn new(b: &Rect, r: &Rect, criterion: DominationCriterion, norm: LpNorm) -> Self {
        let mut b_terms = Vec::new();
        let mut minmax_b = (0.0, 0.0);
        match criterion {
            DominationCriterion::Optimal => {
                assert!(
                    !matches!(norm, LpNorm::LInf),
                    "the optimal domination criterion requires a finite Lp norm"
                );
                debug_assert_eq!(b.dims(), r.dims());
                b_terms.reserve(r.dims());
                for i in 0..r.dims() {
                    let (bi, ri) = (b.dim(i), r.dim(i));
                    b_terms.push([
                        norm.pow(bi.min_dist(ri.lo())),
                        norm.pow(bi.min_dist(ri.hi())),
                        norm.pow(bi.max_dist(ri.lo())),
                        norm.pow(bi.max_dist(ri.hi())),
                    ]);
                }
            }
            DominationCriterion::MinMax => {
                minmax_b = match norm {
                    LpNorm::LInf => (
                        norm.pow(b.min_dist_rect(r, norm)),
                        norm.pow(b.max_dist_rect(r, norm)),
                    ),
                    _ => (min_dist_rect_pow(b, r, norm), max_dist_rect_pow(b, r, norm)),
                };
            }
        }
        PairClassifier {
            criterion,
            norm,
            r: r.clone(),
            b_terms,
            minmax_b,
        }
    }

    /// Classifies `a` against the precomputed pair; equal to
    /// `criterion.classify(a, b, r, norm)` in every field.
    pub fn classify(&self, a: &Rect) -> SpatialDecision {
        self.classify_dims(a.intervals())
    }

    /// Like [`PairClassifier::classify`] for a rectangle given as its
    /// interval slice — hot loops that keep many boxes in one flat
    /// buffer (the refiner's partition arena) classify without
    /// materializing a `Rect` per box.
    pub fn classify_dims(&self, a: &[udb_geometry::Interval]) -> SpatialDecision {
        match self.criterion {
            DominationCriterion::Optimal => self.classify_optimal(a),
            DominationCriterion::MinMax => self.classify_minmax(a),
        }
    }

    fn classify_optimal(&self, a: &[udb_geometry::Interval]) -> SpatialDecision {
        debug_assert_eq!(a.len(), self.r.dims());
        let norm = self.norm;
        let mut dom_sum = 0.0;
        let mut nd_sum = 0.0;
        let mut scale = 0.0;
        for (i, bt) in self.b_terms.iter().enumerate() {
            let (ai, ri) = (a[i], self.r.dim(i));
            let d_lo = norm.pow(ai.max_dist(ri.lo())) - bt[0];
            let d_hi = norm.pow(ai.max_dist(ri.hi())) - bt[1];
            let n_lo = bt[2] - norm.pow(ai.min_dist(ri.lo()));
            let n_hi = bt[3] - norm.pow(ai.min_dist(ri.hi()));
            dom_sum += d_lo.max(d_hi);
            nd_sum += n_lo.max(n_hi);
            scale += d_lo.abs().max(d_hi.abs()).max(n_lo.abs()).max(n_hi.abs());
        }
        let margin = ROBUST_MARGIN * scale.max(f64::MIN_POSITIVE);
        if dom_sum < 0.0 {
            SpatialDecision {
                decision: Some(true),
                robust: dom_sum < -margin,
            }
        } else if nd_sum <= 0.0 {
            SpatialDecision {
                decision: Some(false),
                robust: nd_sum < -margin,
            }
        } else {
            SpatialDecision {
                decision: None,
                robust: false,
            }
        }
    }

    fn classify_minmax(&self, a: &[udb_geometry::Interval]) -> SpatialDecision {
        let norm = self.norm;
        let (min_br, max_br) = self.minmax_b;
        let (max_ar, min_ar) = match norm {
            LpNorm::LInf => {
                // cold path: LInf has no powered-sum decomposition; go
                // through the rectangle API for exact agreement
                let a = Rect::new(a.to_vec());
                (
                    norm.pow(a.max_dist_rect(&self.r, norm)),
                    norm.pow(a.min_dist_rect(&self.r, norm)),
                )
            }
            _ => (
                max_dist_dims_pow(a, &self.r, norm),
                min_dist_dims_pow(a, &self.r, norm),
            ),
        };
        let dominates = max_ar < min_br;
        let never = !dominates && max_br <= min_ar;
        if dominates {
            let margin = ROBUST_MARGIN * max_ar.abs().max(min_br.abs()).max(f64::MIN_POSITIVE);
            SpatialDecision {
                decision: Some(true),
                robust: min_br - max_ar > margin,
            }
        } else if never {
            let margin = ROBUST_MARGIN * max_br.abs().max(min_ar.abs()).max(f64::MIN_POSITIVE);
            SpatialDecision {
                decision: Some(false),
                robust: min_ar - max_br > margin,
            }
        } else {
            SpatialDecision {
                decision: None,
                robust: false,
            }
        }
    }
}

fn classify_optimal(a: &Rect, b: &Rect, r: &Rect, norm: LpNorm) -> SpatialDecision {
    assert!(
        !matches!(norm, LpNorm::LInf),
        "the optimal domination criterion requires a finite Lp norm"
    );
    debug_assert_eq!(a.dims(), b.dims());
    debug_assert_eq!(a.dims(), r.dims());
    let mut dom_sum = 0.0; // dominates ⇔ dom_sum < 0
    let mut nd_sum = 0.0; // never dominates ⇔ nd_sum ≤ 0
    let mut scale = 0.0;
    for i in 0..a.dims() {
        let (ai, bi, ri) = (a.dim(i), b.dim(i), r.dim(i));
        let dom_term = |rp: f64| norm.pow(ai.max_dist(rp)) - norm.pow(bi.min_dist(rp));
        let nd_term = |rp: f64| norm.pow(bi.max_dist(rp)) - norm.pow(ai.min_dist(rp));
        let (d_lo, d_hi) = (dom_term(ri.lo()), dom_term(ri.hi()));
        let (n_lo, n_hi) = (nd_term(ri.lo()), nd_term(ri.hi()));
        dom_sum += d_lo.max(d_hi);
        nd_sum += n_lo.max(n_hi);
        scale += d_lo.abs().max(d_hi.abs()).max(n_lo.abs()).max(n_hi.abs());
    }
    let margin = ROBUST_MARGIN * scale.max(f64::MIN_POSITIVE);
    if dom_sum < 0.0 {
        SpatialDecision {
            decision: Some(true),
            robust: dom_sum < -margin,
        }
    } else if nd_sum <= 0.0 {
        SpatialDecision {
            decision: Some(false),
            robust: nd_sum < -margin,
        }
    } else {
        SpatialDecision {
            decision: None,
            robust: false,
        }
    }
}

fn classify_minmax(a: &Rect, b: &Rect, r: &Rect, norm: LpNorm) -> SpatialDecision {
    // each powered distance computed exactly once; the decisions below are
    // the same comparisons `dominates_minmax`/`never_dominates_minmax` make
    let (max_ar, min_br, max_br, min_ar) = match norm {
        LpNorm::LInf => (
            norm.pow(a.max_dist_rect(r, norm)),
            norm.pow(b.min_dist_rect(r, norm)),
            norm.pow(b.max_dist_rect(r, norm)),
            norm.pow(a.min_dist_rect(r, norm)),
        ),
        _ => (
            max_dist_rect_pow(a, r, norm),
            min_dist_rect_pow(b, r, norm),
            max_dist_rect_pow(b, r, norm),
            min_dist_rect_pow(a, r, norm),
        ),
    };
    let dominates = max_ar < min_br;
    let never = !dominates && max_br <= min_ar;
    if dominates {
        let margin = ROBUST_MARGIN * max_ar.abs().max(min_br.abs()).max(f64::MIN_POSITIVE);
        SpatialDecision {
            decision: Some(true),
            robust: min_br - max_ar > margin,
        }
    } else if never {
        let margin = ROBUST_MARGIN * max_br.abs().max(min_ar.abs()).max(f64::MIN_POSITIVE);
        SpatialDecision {
            decision: Some(false),
            robust: min_ar - max_br > margin,
        }
    } else {
        SpatialDecision {
            decision: None,
            robust: false,
        }
    }
}

/// The *optimal* complete-domination test (Corollary 1):
///
/// ```text
/// PDom(A,B,R) = 1  ⇔  Σ_i  max_{r_i ∈ {Rmin_i, Rmax_i}}
///                     ( MaxDist(A_i, r_i)^p − MinDist(B_i, r_i)^p ) < 0
/// ```
///
/// The per-dimension maximum over the two interval endpoints of `R_i` is
/// where the criterion gains its tightness: the adversarial placement of
/// the reference object is resolved dimension-by-dimension instead of
/// independently for the two distances.
///
/// # Panics
/// Panics for [`LpNorm::LInf`]: the sum decomposition requires a finite
/// `p`. (The paper states its results for `Lp` norms.)
pub fn dominates_optimal(a: &Rect, b: &Rect, r: &Rect, norm: LpNorm) -> bool {
    assert!(
        !matches!(norm, LpNorm::LInf),
        "the optimal domination criterion requires a finite Lp norm"
    );
    debug_assert_eq!(a.dims(), b.dims());
    debug_assert_eq!(a.dims(), r.dims());
    let mut sum = 0.0;
    for i in 0..a.dims() {
        let (ai, bi, ri) = (a.dim(i), b.dim(i), r.dim(i));
        let term = |rp: f64| norm.pow(ai.max_dist(rp)) - norm.pow(bi.min_dist(rp));
        sum += term(ri.lo()).max(term(ri.hi()));
    }
    sum < 0.0
}

/// The weak complement of [`dominates_optimal`]: `a` is at least as far
/// from `r` as `b` in every possible world, i.e.
///
/// ```text
/// ∀ worlds: dist(a,r) ≥ dist(b,r)  ⇔  Σ_i max_{r_i ∈ {Rmin_i, Rmax_i}}
///                     ( MaxDist(B_i, r_i)^p − MinDist(A_i, r_i)^p ) ≤ 0
/// ```
///
/// (the same sum as `dominates_optimal(b, a, r, ·)` but with a non-strict
/// comparison, so exactly tied configurations are classified as
/// never-dominating — `Dom` is strict by Definition 2).
///
/// # Panics
/// Panics for [`LpNorm::LInf`].
pub fn never_dominates_optimal(a: &Rect, b: &Rect, r: &Rect, norm: LpNorm) -> bool {
    assert!(
        !matches!(norm, LpNorm::LInf),
        "the optimal domination criterion requires a finite Lp norm"
    );
    debug_assert_eq!(a.dims(), b.dims());
    debug_assert_eq!(a.dims(), r.dims());
    let mut sum = 0.0;
    for i in 0..a.dims() {
        let (ai, bi, ri) = (a.dim(i), b.dim(i), r.dim(i));
        let term = |rp: f64| norm.pow(bi.max_dist(rp)) - norm.pow(ai.min_dist(rp));
        sum += term(ri.lo()).max(term(ri.hi()));
    }
    sum <= 0.0
}

/// Weak complement under the MinMax criterion:
/// `MaxDist(B, R) ≤ MinDist(A, R)`.
pub fn never_dominates_minmax(a: &Rect, b: &Rect, r: &Rect, norm: LpNorm) -> bool {
    let max_br = match norm {
        LpNorm::LInf => norm.pow(b.max_dist_rect(r, norm)),
        _ => max_dist_rect_pow(b, r, norm),
    };
    let min_ar = match norm {
        LpNorm::LInf => norm.pow(a.min_dist_rect(r, norm)),
        _ => min_dist_rect_pow(a, r, norm),
    };
    max_br <= min_ar
}

/// The classical MinDist/MaxDist pruning test:
/// `MaxDist(A, R) < MinDist(B, R)` on whole rectangles.
pub fn dominates_minmax(a: &Rect, b: &Rect, r: &Rect, norm: LpNorm) -> bool {
    debug_assert_eq!(a.dims(), b.dims());
    debug_assert_eq!(a.dims(), r.dims());
    let max_ar = match norm {
        LpNorm::LInf => norm.pow(a.max_dist_rect(r, norm)),
        _ => max_dist_rect_pow(a, r, norm),
    };
    let min_br = match norm {
        LpNorm::LInf => norm.pow(b.min_dist_rect(r, norm)),
        _ => min_dist_rect_pow(b, r, norm),
    };
    max_ar < min_br
}

/// `MinDist(X, R)^p` between two boxes (power form, avoids roots).
fn min_dist_rect_pow(x: &Rect, r: &Rect, norm: LpNorm) -> f64 {
    min_dist_dims_pow(x.intervals(), r, norm)
}

fn min_dist_dims_pow(x: &[udb_geometry::Interval], r: &Rect, norm: LpNorm) -> f64 {
    norm.aggregate((0..x.len()).map(|i| {
        let (xi, ri) = (x[i], r.dim(i));
        let gap = if xi.hi() < ri.lo() {
            ri.lo() - xi.hi()
        } else if ri.hi() < xi.lo() {
            xi.lo() - ri.hi()
        } else {
            0.0
        };
        norm.pow(gap)
    }))
}

/// `MaxDist(X, R)^p` between two boxes (power form).
fn max_dist_rect_pow(x: &Rect, r: &Rect, norm: LpNorm) -> f64 {
    max_dist_dims_pow(x.intervals(), r, norm)
}

fn max_dist_dims_pow(x: &[udb_geometry::Interval], r: &Rect, norm: LpNorm) -> f64 {
    norm.aggregate((0..x.len()).map(|i| {
        let (xi, ri) = (x[i], r.dim(i));
        let d = (xi.hi() - ri.lo()).abs().max((ri.hi() - xi.lo()).abs());
        norm.pow(d)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use udb_geometry::{Interval, Point};

    fn rect(xlo: f64, xhi: f64, ylo: f64, yhi: f64) -> Rect {
        Rect::new(vec![Interval::new(xlo, xhi), Interval::new(ylo, yhi)])
    }

    fn point_rect(x: f64, y: f64) -> Rect {
        Rect::from_point(&Point::from([x, y]))
    }

    /// Monte-Carlo soundness oracle: estimates whether every sampled triple
    /// satisfies `dist(a,r) < dist(b,r)`.
    fn mc_all_dominate(a: &Rect, b: &Rect, r: &Rect, norm: LpNorm, rng: &mut StdRng) -> bool {
        let sample = |rect: &Rect, rng: &mut StdRng| {
            Point::new(
                rect.intervals()
                    .iter()
                    .map(|iv| {
                        if iv.is_degenerate() {
                            iv.lo()
                        } else {
                            rng.gen_range(iv.lo()..=iv.hi())
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        };
        for _ in 0..300 {
            let (pa, pb, pr) = (sample(a, rng), sample(b, rng), sample(r, rng));
            if norm.dist(&pa, &pr) >= norm.dist(&pb, &pr) {
                return false;
            }
        }
        true
    }

    #[test]
    fn certain_points_reduce_to_distance_comparison() {
        let r = point_rect(0.0, 0.0);
        let a = point_rect(1.0, 0.0);
        let b = point_rect(3.0, 0.0);
        assert!(dominates_optimal(&a, &b, &r, LpNorm::L2));
        assert!(!dominates_optimal(&b, &a, &r, LpNorm::L2));
        assert!(dominates_minmax(&a, &b, &r, LpNorm::L2));
    }

    #[test]
    fn equal_distance_is_not_domination() {
        let r = point_rect(0.0, 0.0);
        let a = point_rect(1.0, 0.0);
        let b = point_rect(-1.0, 0.0);
        assert!(!dominates_optimal(&a, &b, &r, LpNorm::L2));
        assert!(!dominates_optimal(&b, &a, &r, LpNorm::L2));
    }

    #[test]
    fn no_self_domination() {
        let r = rect(0.0, 1.0, 0.0, 1.0);
        let a = rect(3.0, 4.0, 3.0, 4.0);
        assert!(!dominates_optimal(&a, &a, &r, LpNorm::L2));
        assert!(!dominates_minmax(&a, &a, &r, LpNorm::L2));
    }

    #[test]
    fn clear_separation_detected_by_both() {
        let r = rect(0.0, 1.0, 0.0, 1.0);
        let a = rect(1.5, 2.0, 0.0, 1.0);
        let b = rect(10.0, 11.0, 0.0, 1.0);
        assert!(dominates_minmax(&a, &b, &r, LpNorm::L2));
        assert!(dominates_optimal(&a, &b, &r, LpNorm::L2));
    }

    /// The configuration where the optimal criterion is strictly tighter:
    /// A and B on opposite sides of R, close enough that MaxDist(A,R)
    /// overlaps MinDist(B,R), yet for every fixed r ∈ R, A stays closer.
    #[test]
    fn optimal_strictly_tighter_than_minmax() {
        // 1-D essence embedded in 2-D: R = [0,2] x {0}, A = {2.5} x {0},
        // B = {6} x {0}. MaxDist(A,R) = 2.5, MinDist(B,R) = 4 -> minmax
        // detects it. Move B closer: B = {4.5}. MaxDist(A,R) = 2.5 >
        // MinDist(B,R) = 2.5 -> minmax fails, but for each r in [0,2]:
        // dist(a,r) = 2.5 - r < 4.5 - r = dist(b,r) -> optimal succeeds.
        let r = rect(0.0, 2.0, 0.0, 0.0);
        let a = point_rect(2.5, 0.0);
        let b = point_rect(4.5, 0.0);
        assert!(!dominates_minmax(&a, &b, &r, LpNorm::L2));
        assert!(dominates_optimal(&a, &b, &r, LpNorm::L2));
        // soundness of the optimal answer
        let mut rng = StdRng::seed_from_u64(0xB0);
        assert!(mc_all_dominate(&a, &b, &r, LpNorm::L2, &mut rng));
    }

    #[test]
    fn optimal_works_under_l1() {
        let r = rect(0.0, 2.0, 0.0, 0.0);
        let a = point_rect(2.5, 0.0);
        let b = point_rect(4.5, 0.0);
        assert!(dominates_optimal(&a, &b, &r, LpNorm::L1));
    }

    #[test]
    #[should_panic(expected = "finite Lp norm")]
    fn optimal_rejects_linf() {
        let r = rect(0.0, 1.0, 0.0, 1.0);
        dominates_optimal(&r, &r, &r, LpNorm::LInf);
    }

    #[test]
    fn minmax_supports_linf() {
        let r = rect(0.0, 1.0, 0.0, 1.0);
        let a = rect(1.5, 2.0, 0.0, 1.0);
        let b = rect(10.0, 11.0, 0.0, 1.0);
        assert!(dominates_minmax(&a, &b, &r, LpNorm::LInf));
    }

    #[test]
    fn criterion_enum_dispatch() {
        let r = rect(0.0, 2.0, 0.0, 0.0);
        let a = point_rect(2.5, 0.0);
        let b = point_rect(4.5, 0.0);
        assert!(DominationCriterion::Optimal.dominates(&a, &b, &r, LpNorm::L2));
        assert!(!DominationCriterion::MinMax.dominates(&a, &b, &r, LpNorm::L2));
        assert_eq!(DominationCriterion::default(), DominationCriterion::Optimal);
    }

    fn arb_rect(range: std::ops::Range<f64>) -> impl Strategy<Value = Rect> {
        (range.clone(), 0.0..2.0f64, range, 0.0..2.0f64)
            .prop_map(|(x, w, y, h)| rect(x, x + w, y, y + h))
    }

    proptest! {
        /// Soundness: whenever the optimal criterion claims domination,
        /// sampled instantiations must agree.
        #[test]
        fn prop_optimal_sound(
            a in arb_rect(-5.0..5.0),
            b in arb_rect(-5.0..5.0),
            r in arb_rect(-5.0..5.0),
            seed in 0u64..1000,
        ) {
            if dominates_optimal(&a, &b, &r, LpNorm::L2) {
                let mut rng = StdRng::seed_from_u64(seed);
                prop_assert!(mc_all_dominate(&a, &b, &r, LpNorm::L2, &mut rng));
            }
        }

        /// Dominance detected by MinMax is always detected by Optimal
        /// (Optimal is at least as tight).
        #[test]
        fn prop_minmax_implies_optimal(
            a in arb_rect(-5.0..5.0),
            b in arb_rect(-5.0..5.0),
            r in arb_rect(-5.0..5.0),
        ) {
            for norm in [LpNorm::L1, LpNorm::L2, LpNorm::P(3)] {
                if dominates_minmax(&a, &b, &r, norm) {
                    prop_assert!(dominates_optimal(&a, &b, &r, norm));
                }
            }
        }

        /// Antisymmetry: A and B cannot dominate each other simultaneously.
        #[test]
        fn prop_domination_antisymmetric(
            a in arb_rect(-5.0..5.0),
            b in arb_rect(-5.0..5.0),
            r in arb_rect(-5.0..5.0),
        ) {
            let ab = dominates_optimal(&a, &b, &r, LpNorm::L2);
            let ba = dominates_optimal(&b, &a, &r, LpNorm::L2);
            prop_assert!(!(ab && ba));
        }

        /// The precomputed pair classifier is bit-identical to the
        /// per-call classification for both criteria.
        #[test]
        fn prop_pair_classifier_matches_classify(
            a in arb_rect(-5.0..5.0),
            b in arb_rect(-5.0..5.0),
            r in arb_rect(-5.0..5.0),
        ) {
            for criterion in [DominationCriterion::Optimal, DominationCriterion::MinMax] {
                for norm in [LpNorm::L1, LpNorm::L2, LpNorm::P(3)] {
                    let pc = PairClassifier::new(&b, &r, criterion, norm);
                    prop_assert_eq!(pc.classify(&a), criterion.classify(&a, &b, &r, norm));
                }
            }
            let pc = PairClassifier::new(&b, &r, DominationCriterion::MinMax, LpNorm::LInf);
            prop_assert_eq!(
                pc.classify(&a),
                DominationCriterion::MinMax.classify(&a, &b, &r, LpNorm::LInf)
            );
        }

        /// For certain points the criterion is exactly the distance
        /// comparison.
        #[test]
        fn prop_certain_points_exact(
            ax in -5.0..5.0f64, ay in -5.0..5.0f64,
            bx in -5.0..5.0f64, by in -5.0..5.0f64,
            rx in -5.0..5.0f64, ry in -5.0..5.0f64,
        ) {
            let a = point_rect(ax, ay);
            let b = point_rect(bx, by);
            let r = point_rect(rx, ry);
            let pa = Point::from([ax, ay]);
            let pb = Point::from([bx, by]);
            let pr = Point::from([rx, ry]);
            let expected = LpNorm::L2.dist(&pa, &pr) < LpNorm::L2.dist(&pb, &pr);
            prop_assert_eq!(dominates_optimal(&a, &b, &r, LpNorm::L2), expected);
            prop_assert_eq!(dominates_minmax(&a, &b, &r, LpNorm::L2), expected);
        }
    }
}
