//! R-tree node representation and split algorithms.

use udb_geometry::Rect;

/// Maximum node fan-out used when none is specified.
pub const DEFAULT_MAX_ENTRIES: usize = 16;

/// A node of the R-tree.
#[derive(Debug, Clone)]
pub(crate) enum Node<T> {
    /// Leaf: data entries `(mbr, payload)`.
    Leaf(Vec<(Rect, T)>),
    /// Inner: child subtrees with their covering boxes, plus the cached
    /// total entry count below this node. The cache makes
    /// [`Node::count`] O(1), which the subtree classifier's entry-count
    /// cutoff queries on every descend decision; it is maintained by
    /// [`Node::inner`] and the insertion path and checked by
    /// `RTree::check_invariants`.
    Inner {
        /// Total number of data entries below this node.
        count: usize,
        /// Child subtrees with their covering boxes.
        children: Vec<(Rect, Node<T>)>,
    },
}

impl<T> Node<T> {
    /// Builds an inner node over `children`, computing the cached entry
    /// count (O(children): each child's count is already cached).
    pub(crate) fn inner(children: Vec<(Rect, Node<T>)>) -> Self {
        let count = children.iter().map(|(_, c)| c.count()).sum();
        Node::Inner { count, children }
    }

    #[cfg(test)]
    pub(crate) fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            Node::Leaf(es) => es.len(),
            Node::Inner { children, .. } => children.len(),
        }
    }

    /// The minimal box covering all entries.
    ///
    /// # Panics
    /// Panics on an empty node (never constructed by the tree).
    pub(crate) fn mbr(&self) -> Rect {
        match self {
            Node::Leaf(es) => Rect::union_all(es.iter().map(|(r, _)| r)),
            Node::Inner { children, .. } => Rect::union_all(children.iter().map(|(r, _)| r)),
        }
    }

    /// Height of the subtree (leaf = 1).
    pub(crate) fn height(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Inner { children, .. } => {
                1 + children.iter().map(|(_, c)| c.height()).max().unwrap_or(0)
            }
        }
    }

    /// Total number of data entries below this node (cached for inner
    /// nodes, so this is O(1)).
    pub(crate) fn count(&self) -> usize {
        match self {
            Node::Leaf(es) => es.len(),
            Node::Inner { count, .. } => *count,
        }
    }
}

/// Two groups of `(mbr, payload)` entries produced by a node split.
pub(crate) type SplitGroups<E> = (Vec<(Rect, E)>, Vec<(Rect, E)>);

/// Splits an over-full entry list into two groups using the R*-tree axis
/// split: pick the axis with minimal total margin over all candidate
/// distributions, then the distribution with minimal overlap (ties:
/// minimal combined volume).
///
/// Entries are `(mbr, payload)`; `min_entries` bounds the smaller group.
pub(crate) fn split_entries<E>(mut entries: Vec<(Rect, E)>, min_entries: usize) -> SplitGroups<E> {
    let total = entries.len();
    debug_assert!(total >= 2 * min_entries, "not enough entries to split");
    let dims = entries[0].0.dims();

    // choose the split axis by minimal margin sum over candidate splits of
    // the entries sorted by interval lower bound
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..dims {
        entries.sort_by(|a, b| {
            a.0.dim(axis)
                .lo()
                .partial_cmp(&b.0.dim(axis).lo())
                .expect("NaN in MBR")
        });
        let mut margin = 0.0;
        for split in min_entries..=(total - min_entries) {
            let left = Rect::union_all(entries[..split].iter().map(|(r, _)| r));
            let right = Rect::union_all(entries[split..].iter().map(|(r, _)| r));
            margin += left.margin() + right.margin();
        }
        if margin < best_margin {
            best_margin = margin;
            best_axis = axis;
        }
    }

    entries.sort_by(|a, b| {
        a.0.dim(best_axis)
            .lo()
            .partial_cmp(&b.0.dim(best_axis).lo())
            .expect("NaN in MBR")
    });

    // choose the split index minimizing overlap (then volume)
    let mut best_split = min_entries;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for split in min_entries..=(total - min_entries) {
        let left = Rect::union_all(entries[..split].iter().map(|(r, _)| r));
        let right = Rect::union_all(entries[split..].iter().map(|(r, _)| r));
        let overlap = left
            .intersection(&right)
            .map(|ov| ov.volume())
            .unwrap_or(0.0);
        let key = (overlap, left.volume() + right.volume());
        if key < best_key {
            best_key = key;
            best_split = split;
        }
    }

    let right = entries.split_off(best_split);
    (entries, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_geometry::{Interval, Point};

    fn rect(x: f64, y: f64) -> Rect {
        Rect::new(vec![Interval::new(x, x + 1.0), Interval::new(y, y + 1.0)])
    }

    #[test]
    fn leaf_mbr_covers_entries() {
        let n = Node::Leaf(vec![(rect(0.0, 0.0), 0u32), (rect(5.0, 5.0), 1)]);
        let mbr = n.mbr();
        assert_eq!(mbr.lo(), Point::from([0.0, 0.0]));
        assert_eq!(mbr.hi(), Point::from([6.0, 6.0]));
        assert_eq!(n.len(), 2);
        assert_eq!(n.count(), 2);
        assert_eq!(n.height(), 1);
        assert!(n.is_leaf());
    }

    #[test]
    fn split_separates_clusters() {
        // two clearly separated clusters of 3 must split cleanly
        let entries: Vec<(Rect, u32)> = vec![
            (rect(0.0, 0.0), 0),
            (rect(0.5, 0.5), 1),
            (rect(1.0, 0.0), 2),
            (rect(100.0, 0.0), 3),
            (rect(100.5, 0.5), 4),
            (rect(101.0, 0.0), 5),
        ];
        let (l, r) = split_entries(entries, 2);
        assert_eq!(l.len() + r.len(), 6);
        assert!(l.len() >= 2 && r.len() >= 2);
        let lm = Rect::union_all(l.iter().map(|(r, _)| r));
        let rm = Rect::union_all(r.iter().map(|(r, _)| r));
        assert!(lm.intersection(&rm).is_none(), "clusters must not overlap");
    }

    #[test]
    fn split_respects_min_entries() {
        let entries: Vec<(Rect, u32)> = (0..8).map(|i| (rect(i as f64, 0.0), i)).collect();
        let (l, r) = split_entries(entries, 3);
        assert!(l.len() >= 3);
        assert!(r.len() >= 3);
    }
}
