//! Best-first incremental nearest-neighbour search (Hjaltason & Samet).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use udb_geometry::{LpNorm, Rect};

use crate::node::Node;

/// One nearest-neighbour result: payload plus its MinDist to the query.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor<T> {
    /// The stored payload.
    pub payload: T,
    /// Box-to-box MinDist between the entry's MBR and the query.
    pub dist: f64,
}

/// Min-heap item: either a node to expand or a data entry to emit.
enum HeapItem<'a, T> {
    Node(&'a Node<T>),
    Entry(&'a T),
}

struct Prioritized<'a, T> {
    dist: f64,
    item: HeapItem<'a, T>,
}

impl<T> PartialEq for Prioritized<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl<T> Eq for Prioritized<'_, T> {}
impl<T> PartialOrd for Prioritized<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Prioritized<'_, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we need the smallest distance
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("NaN distance in kNN heap")
            // entries before nodes at equal distance so results surface
            // as early as possible
            .then_with(|| match (&self.item, &other.item) {
                (HeapItem::Entry(_), HeapItem::Node(_)) => Ordering::Greater,
                (HeapItem::Node(_), HeapItem::Entry(_)) => Ordering::Less,
                _ => Ordering::Equal,
            })
    }
}

/// Distance-ordered iterator over all entries of an R-tree.
pub struct KnnIter<'a, T> {
    heap: BinaryHeap<Prioritized<'a, T>>,
    query: Rect,
    norm: LpNorm,
}

impl<'a, T: Clone> KnnIter<'a, T> {
    pub(crate) fn new(root: Option<&'a Node<T>>, query: Rect, norm: LpNorm) -> Self {
        let mut heap = BinaryHeap::new();
        if let Some(root) = root {
            heap.push(Prioritized {
                dist: 0.0,
                item: HeapItem::Node(root),
            });
        }
        KnnIter { heap, query, norm }
    }
}

/// Distance-bounded variant of [`KnnIter`]: streams exactly the entries
/// with `MinDist ≤ radius`, in MinDist order. Unlike filtering the full
/// kNN stream, the traversal prunes *before* pushing — nodes and
/// entries beyond the radius never enter the heap — so a small-radius
/// probe touches only the qualifying subtrees. Allocation-free beyond
/// the traversal heap; query loops that probe repeatedly (e.g. the
/// RkNN certain-dominator prefilter) consume it without materializing a
/// `Vec` per probe.
pub struct WithinDistanceIter<'a, T> {
    heap: BinaryHeap<Prioritized<'a, T>>,
    query: Rect,
    norm: LpNorm,
    radius: f64,
}

impl<'a, T: Clone> WithinDistanceIter<'a, T> {
    pub(crate) fn new(root: Option<&'a Node<T>>, query: Rect, norm: LpNorm, radius: f64) -> Self {
        let mut heap = BinaryHeap::new();
        if let Some(root) = root {
            if radius >= 0.0 {
                heap.push(Prioritized {
                    dist: 0.0,
                    item: HeapItem::Node(root),
                });
            }
        }
        WithinDistanceIter {
            heap,
            query,
            norm,
            radius,
        }
    }
}

impl<T: Clone> Iterator for WithinDistanceIter<'_, T> {
    type Item = Neighbor<T>;

    fn next(&mut self) -> Option<Neighbor<T>> {
        while let Some(Prioritized { dist, item }) = self.heap.pop() {
            match item {
                HeapItem::Entry(payload) => {
                    // entries only enter the heap within the radius
                    return Some(Neighbor {
                        payload: payload.clone(),
                        dist,
                    });
                }
                HeapItem::Node(Node::Leaf(entries)) => {
                    for (mbr, p) in entries {
                        let d = mbr.min_dist_rect(&self.query, self.norm);
                        if d <= self.radius {
                            self.heap.push(Prioritized {
                                dist: d,
                                item: HeapItem::Entry(p),
                            });
                        }
                    }
                }
                HeapItem::Node(Node::Inner { children, .. }) => {
                    for (mbr, child) in children {
                        let d = mbr.min_dist_rect(&self.query, self.norm);
                        if d <= self.radius {
                            self.heap.push(Prioritized {
                                dist: d,
                                item: HeapItem::Node(child),
                            });
                        }
                    }
                }
            }
        }
        None
    }
}

impl<T: Clone> Iterator for KnnIter<'_, T> {
    type Item = Neighbor<T>;

    fn next(&mut self) -> Option<Neighbor<T>> {
        while let Some(Prioritized { dist, item }) = self.heap.pop() {
            match item {
                HeapItem::Entry(payload) => {
                    return Some(Neighbor {
                        payload: payload.clone(),
                        dist,
                    });
                }
                HeapItem::Node(Node::Leaf(entries)) => {
                    for (mbr, p) in entries {
                        self.heap.push(Prioritized {
                            dist: mbr.min_dist_rect(&self.query, self.norm),
                            item: HeapItem::Entry(p),
                        });
                    }
                }
                HeapItem::Node(Node::Inner { children, .. }) => {
                    for (mbr, child) in children {
                        self.heap.push(Prioritized {
                            dist: mbr.min_dist_rect(&self.query, self.norm),
                            item: HeapItem::Node(child),
                        });
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtree::RTree;
    use udb_geometry::Point;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(&Point::from([x, y]))
    }

    #[test]
    fn emits_in_distance_order() {
        let t = RTree::bulk_load(
            vec![
                (pt(5.0, 0.0), 'b'),
                (pt(1.0, 0.0), 'a'),
                (pt(9.0, 0.0), 'c'),
            ],
            4,
        );
        let got: Vec<char> = t
            .knn_iter(&pt(0.0, 0.0), LpNorm::L2)
            .map(|n| n.payload)
            .collect();
        assert_eq!(got, vec!['a', 'b', 'c']);
    }

    #[test]
    fn distances_are_min_dist() {
        let t = RTree::bulk_load(vec![(pt(3.0, 4.0), ())], 4);
        let n = t.knn(&pt(0.0, 0.0), 1, LpNorm::L2);
        assert!((n[0].dist - 5.0).abs() < 1e-12);
    }

    #[test]
    fn uncertain_query_rect_uses_box_distance() {
        // query is itself a box; MinDist to an overlapping entry is 0
        let t = RTree::bulk_load(vec![(pt(1.0, 1.0), 0u8), (pt(9.0, 9.0), 1)], 4);
        let q = Rect::from_corners(&Point::from([0.0, 0.0]), &Point::from([2.0, 2.0]));
        let n = t.knn(&q, 2, LpNorm::L2);
        assert_eq!(n[0].payload, 0);
        assert_eq!(n[0].dist, 0.0);
        assert!(n[1].dist > 0.0);
    }
}
