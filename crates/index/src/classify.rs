//! Subtree classification: applying a spatial predicate to whole R-tree
//! nodes.
//!
//! Many pruning rules are *monotone under MBR containment* — if they hold
//! for a node's MBR they hold for every entry below it (e.g. the optimal
//! domination criterion of the `udb-domination` crate: enlarging an
//! object's rectangle only increases its MaxDist terms). For such rules a
//! single test can accept or reject an entire subtree, turning the `O(N)`
//! filter step of domination-count queries into an output-sensitive
//! traversal.

use udb_geometry::Rect;

use crate::node::Node;
use crate::rtree::RTree;

/// Decision of a spatial classifier for a node or entry MBR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeDecision {
    /// Every entry below this MBR satisfies the predicate.
    TakeAll,
    /// No entry below this MBR satisfies the predicate (nor is undecided).
    DropAll,
    /// Recurse; for leaf entries: classify as undecided.
    Descend,
}

/// Outcome of [`RTree::classify_entries`].
#[derive(Debug, Clone, Default)]
pub struct ClassifyOutcome<T> {
    /// Payloads in `TakeAll` subtrees / entries.
    pub taken: Vec<T>,
    /// Payloads the classifier could not decide.
    pub undecided: Vec<T>,
}

impl<T: Clone> RTree<T> {
    /// Classifies every entry with a *containment-monotone* spatial
    /// predicate: `f` is called on node MBRs (deciding whole subtrees) and
    /// on entry MBRs. The caller must guarantee monotonicity — a
    /// `TakeAll`/`DropAll` answer for a covering rectangle must be valid
    /// for every rectangle inside it; otherwise results are meaningless.
    pub fn classify_entries(&self, mut f: impl FnMut(&Rect) -> NodeDecision) -> ClassifyOutcome<T> {
        let mut out = ClassifyOutcome {
            taken: Vec::new(),
            undecided: Vec::new(),
        };
        if let Some(root) = self.root() {
            classify_rec(root, &mut f, &mut out);
        }
        out
    }

    /// Counts entries under subtrees fully accepted by `f`, without
    /// collecting payloads (cheaper when only the count matters and no
    /// undecided handling is needed: `Descend` leaf entries are counted as
    /// undecided).
    pub fn classify_count(&self, mut f: impl FnMut(&Rect) -> NodeDecision) -> (usize, usize) {
        fn rec<T>(
            node: &Node<T>,
            f: &mut impl FnMut(&Rect) -> NodeDecision,
            taken: &mut usize,
            undecided: &mut usize,
        ) {
            match node {
                Node::Leaf(entries) => {
                    for (mbr, _) in entries {
                        match f(mbr) {
                            NodeDecision::TakeAll => *taken += 1,
                            NodeDecision::DropAll => {}
                            NodeDecision::Descend => *undecided += 1,
                        }
                    }
                }
                Node::Inner(children) => {
                    for (mbr, child) in children {
                        match f(mbr) {
                            NodeDecision::TakeAll => *taken += child.count(),
                            NodeDecision::DropAll => {}
                            NodeDecision::Descend => rec(child, f, taken, undecided),
                        }
                    }
                }
            }
        }
        let mut taken = 0;
        let mut undecided = 0;
        if let Some(root) = self.root() {
            rec(root, &mut f, &mut taken, &mut undecided);
        }
        (taken, undecided)
    }
}

fn classify_rec<T: Clone>(
    node: &Node<T>,
    f: &mut impl FnMut(&Rect) -> NodeDecision,
    out: &mut ClassifyOutcome<T>,
) {
    match node {
        Node::Leaf(entries) => {
            for (mbr, p) in entries {
                match f(mbr) {
                    NodeDecision::TakeAll => out.taken.push(p.clone()),
                    NodeDecision::DropAll => {}
                    NodeDecision::Descend => out.undecided.push(p.clone()),
                }
            }
        }
        Node::Inner(children) => {
            for (mbr, child) in children {
                match f(mbr) {
                    NodeDecision::TakeAll => collect_all(child, out),
                    NodeDecision::DropAll => {}
                    NodeDecision::Descend => classify_rec(child, f, out),
                }
            }
        }
    }
}

fn collect_all<T: Clone>(node: &Node<T>, out: &mut ClassifyOutcome<T>) {
    match node {
        Node::Leaf(entries) => out.taken.extend(entries.iter().map(|(_, p)| p.clone())),
        Node::Inner(children) => {
            for (_, child) in children {
                collect_all(child, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_geometry::{Interval, Point};

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(&Point::from([x, y]))
    }

    fn classifier(cut: f64) -> impl FnMut(&Rect) -> NodeDecision {
        // monotone rule: take MBRs entirely left of `cut`, drop entirely
        // right, descend otherwise
        move |mbr: &Rect| {
            if mbr.dim(0).hi() < cut {
                NodeDecision::TakeAll
            } else if mbr.dim(0).lo() > cut {
                NodeDecision::DropAll
            } else {
                NodeDecision::Descend
            }
        }
    }

    #[test]
    fn classify_partitions_by_rule() {
        let items: Vec<(Rect, usize)> = (0..100).map(|i| (pt(i as f64, 0.0), i)).collect();
        let tree = RTree::bulk_load(items, 8);
        let out = tree.classify_entries(classifier(49.5));
        let mut taken = out.taken.clone();
        taken.sort_unstable();
        assert_eq!(taken, (0..50).collect::<Vec<_>>());
        assert!(out.undecided.is_empty());
    }

    #[test]
    fn straddling_entries_are_undecided() {
        let items = vec![
            (
                Rect::new(vec![Interval::new(0.0, 2.0), Interval::point(0.0)]),
                0usize,
            ),
            (pt(5.0, 0.0), 1),
            (pt(-5.0, 0.0), 2),
        ];
        let tree = RTree::bulk_load(items, 4);
        let out = tree.classify_entries(classifier(1.0));
        assert_eq!(out.undecided, vec![0]);
        assert_eq!(out.taken, vec![2]);
    }

    #[test]
    fn classify_count_matches_entries() {
        let items: Vec<(Rect, usize)> = (0..257).map(|i| (pt(i as f64, 0.0), i)).collect();
        let tree = RTree::bulk_load(items, 8);
        let out = tree.classify_entries(classifier(100.2));
        let (taken, undecided) = tree.classify_count(classifier(100.2));
        assert_eq!(taken, out.taken.len());
        assert_eq!(undecided, out.undecided.len());
        assert_eq!(taken, 101);
    }

    #[test]
    fn empty_tree_classifies_empty() {
        let tree: RTree<usize> = RTree::new(4);
        let out = tree.classify_entries(|_| NodeDecision::TakeAll);
        assert!(out.taken.is_empty());
        assert!(out.undecided.is_empty());
        assert_eq!(tree.classify_count(|_| NodeDecision::TakeAll), (0, 0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            /// Subtree classification with a monotone rule matches
            /// per-entry brute force, for both bulk-loaded and
            /// incrementally built trees.
            #[test]
            fn prop_classify_matches_bruteforce(seed in 0u64..500, cut in 0.0..100.0f64) {
                let mut rng = StdRng::seed_from_u64(seed);
                let items: Vec<(Rect, usize)> = (0..150)
                    .map(|i| {
                        let x: f64 = rng.gen_range(0.0..100.0);
                        let w: f64 = rng.gen_range(0.0..3.0);
                        (
                            Rect::new(vec![
                                Interval::new(x, x + w),
                                Interval::new(0.0, 1.0),
                            ]),
                            i,
                        )
                    })
                    .collect();
                let bulk = RTree::bulk_load(items.clone(), 8);
                let mut incr = RTree::new(8);
                for (r, p) in items.clone() {
                    incr.insert(r, p);
                }
                for tree in [&bulk, &incr] {
                    let out = tree.classify_entries(classifier(cut));
                    let mut taken = out.taken.clone();
                    let mut undecided = out.undecided.clone();
                    taken.sort_unstable();
                    undecided.sort_unstable();
                    let mut want_taken: Vec<usize> = items
                        .iter()
                        .filter(|(r, _)| r.dim(0).hi() < cut)
                        .map(|(_, i)| *i)
                        .collect();
                    let mut want_undecided: Vec<usize> = items
                        .iter()
                        .filter(|(r, _)| r.dim(0).contains(cut))
                        .map(|(_, i)| *i)
                        .collect();
                    want_taken.sort_unstable();
                    want_undecided.sort_unstable();
                    prop_assert_eq!(&taken, &want_taken);
                    prop_assert_eq!(&undecided, &want_undecided);
                    // counting variant agrees
                    let (t, u) = tree.classify_count(classifier(cut));
                    prop_assert_eq!(t, want_taken.len());
                    prop_assert_eq!(u, want_undecided.len());
                }
            }
        }
    }
}
