//! Subtree classification: applying a spatial predicate to whole R-tree
//! nodes.
//!
//! Many pruning rules are *monotone under MBR containment* — if they hold
//! for a node's MBR they hold for every entry below it (e.g. the optimal
//! domination criterion of the `udb-domination` crate: enlarging an
//! object's rectangle only increases its MaxDist terms). For such rules a
//! single test can accept or reject an entire subtree, turning the `O(N)`
//! filter step of domination-count queries into an output-sensitive
//! traversal.
//!
//! # Traversal scratch and the entry-count cutoff
//!
//! Query drivers classify the same tree once *per candidate* (the
//! per-candidate subtree filter of index-integrated refinement), so the
//! traversal state is reusable: [`ClassifyScratch`] owns the explicit
//! node stack and both outcome buffers, and
//! [`RTree::classify_entries_with`] runs the whole classification without
//! allocating once the scratch is warm.
//!
//! The same entry point takes a `small_subtree_cutoff`: descending into a
//! subtree holding at most that many entries switches to the *scan
//! filter* — every leaf entry is classified directly, and no further
//! node-level tests are made below. For a monotone predicate this returns
//! exactly the same outcome (a node-level `TakeAll`/`DropAll` verdict
//! implies the same verdict for each entry below), but it skips interior
//! MBR tests that rarely pay off near the decision boundary, where small
//! subtrees overwhelmingly answer `Descend` anyway.

use udb_geometry::Rect;

use crate::node::Node;
use crate::rtree::RTree;

/// Decision of a spatial classifier for a node or entry MBR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeDecision {
    /// Every entry below this MBR satisfies the predicate.
    TakeAll,
    /// No entry below this MBR satisfies the predicate (nor is undecided).
    DropAll,
    /// Recurse; for leaf entries: classify as undecided.
    Descend,
}

/// Outcome of [`RTree::classify_entries`].
#[derive(Debug, Clone, Default)]
pub struct ClassifyOutcome<T> {
    /// Payloads in `TakeAll` subtrees / entries.
    pub taken: Vec<T>,
    /// Payloads the classifier could not decide.
    pub undecided: Vec<T>,
}

/// Reusable traversal state for [`RTree::classify_entries_with`]: the
/// explicit node stack plus the two outcome buffers. A warm scratch makes
/// repeated classifications of the same tree allocation-free — the
/// per-candidate subtree filter of index-integrated query processing
/// reuses one scratch across every candidate of a query.
///
/// The scratch is tied to no particular tree or lifetime; it may be
/// reused across trees and calls. Outcome buffers hold the result of the
/// most recent call until the next one clears them.
#[derive(Debug)]
pub struct ClassifyScratch<T> {
    /// Pending `(node, visit-mode)` frames. Type-erased to raw pointers
    /// so the buffer outlives any single tree borrow; entries are only
    /// dereferenced during the call that pushed them (see the safety
    /// notes in `classify_entries_with`).
    stack: Vec<(*const Node<T>, Visit)>,
    /// Payloads in `TakeAll` subtrees / entries (most recent call).
    pub taken: Vec<T>,
    /// Payloads the classifier could not decide (most recent call).
    pub undecided: Vec<T>,
}

// SAFETY: the raw node pointers are an implementation detail of the
// traversal — they are pushed and dereferenced only inside
// `classify_entries_with`, which borrows the tree for the whole call and
// clears the stack on entry. Between calls the stack holds no pointers
// that will ever be dereferenced, so moving the scratch across threads is
// safe whenever the payload buffers are.
unsafe impl<T: Send> Send for ClassifyScratch<T> {}

impl<T> Default for ClassifyScratch<T> {
    fn default() -> Self {
        ClassifyScratch {
            stack: Vec::new(),
            taken: Vec::new(),
            undecided: Vec::new(),
        }
    }
}

impl<T> ClassifyScratch<T> {
    /// An empty scratch (buffers grow on first use and are then reused).
    pub fn new() -> Self {
        ClassifyScratch::default()
    }
}

/// How a stacked subtree is visited. Keeping `TakeAll` subtrees on the
/// stack (instead of collecting them inline) makes the outcome buffers
/// fill in strict DFS order for every cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Visit {
    /// Run the classifier on child MBRs (normal traversal).
    Test,
    /// Small-subtree scan mode: no node-level tests, classify leaf
    /// entries directly.
    Scan,
    /// Below a `TakeAll` verdict: emit every entry, no tests at all.
    Take,
}

impl<T: Clone> RTree<T> {
    /// Classifies every entry with a *containment-monotone* spatial
    /// predicate: `f` is called on node MBRs (deciding whole subtrees) and
    /// on entry MBRs. The caller must guarantee monotonicity — a
    /// `TakeAll`/`DropAll` answer for a covering rectangle must be valid
    /// for every rectangle inside it; otherwise results are meaningless.
    ///
    /// Convenience wrapper over [`RTree::classify_entries_with`] with a
    /// fresh scratch and no subtree cutoff; hot per-candidate loops
    /// should hold a [`ClassifyScratch`] and call the `_with` variant.
    pub fn classify_entries(&self, f: impl FnMut(&Rect) -> NodeDecision) -> ClassifyOutcome<T> {
        let mut scratch = ClassifyScratch::new();
        self.classify_entries_with(&mut scratch, 0, f);
        ClassifyOutcome {
            taken: std::mem::take(&mut scratch.taken),
            undecided: std::mem::take(&mut scratch.undecided),
        }
    }

    /// [`RTree::classify_entries`] with a reusable [`ClassifyScratch`]
    /// and an entry-count cutoff; results are left in `scratch.taken` /
    /// `scratch.undecided` (cleared on entry).
    ///
    /// `small_subtree_cutoff` switches to the scan filter for small
    /// subtrees: a `Descend` verdict on a subtree holding at most that
    /// many entries stops node-level testing below it and classifies its
    /// leaf entries directly. For a monotone `f` (the documented
    /// contract) the outcome is identical for every cutoff — node-level
    /// verdicts only shortcut per-entry verdicts, never change them —
    /// so the cutoff is purely a cost knob. `0` disables it.
    pub fn classify_entries_with(
        &self,
        scratch: &mut ClassifyScratch<T>,
        small_subtree_cutoff: usize,
        mut f: impl FnMut(&Rect) -> NodeDecision,
    ) {
        // a panic in a previous call's `f` may have left frames behind;
        // the pointers are never dereferenced, just dropped here
        scratch.stack.clear();
        scratch.taken.clear();
        scratch.undecided.clear();
        let Some(root) = self.root() else {
            return;
        };
        scratch.stack.push((root as *const Node<T>, Visit::Test));
        while let Some((node, visit)) = scratch.stack.pop() {
            // SAFETY: every pointer on the stack was pushed during *this*
            // call (the stack is cleared on entry) and points into `self`,
            // which is borrowed for the whole call — the node is alive.
            let node = unsafe { &*node };
            match node {
                Node::Leaf(entries) => match visit {
                    // an accepted subtree emits its entries untested
                    Visit::Take => scratch.taken.extend(entries.iter().map(|(_, p)| p.clone())),
                    // entry-level classification: identical in scan and
                    // node-test mode — entries always face `f` directly
                    Visit::Test | Visit::Scan => {
                        for (mbr, p) in entries {
                            match f(mbr) {
                                NodeDecision::TakeAll => scratch.taken.push(p.clone()),
                                NodeDecision::DropAll => {}
                                NodeDecision::Descend => scratch.undecided.push(p.clone()),
                            }
                        }
                    }
                },
                Node::Inner { children, .. } => {
                    // children push in forward order, then the tail is
                    // reversed so pop order is strict DFS: the outcome
                    // buffers fill identically for every cutoff
                    let base = scratch.stack.len();
                    for (mbr, child) in children {
                        match visit {
                            Visit::Take | Visit::Scan => {
                                scratch.stack.push((child as *const Node<T>, visit));
                            }
                            Visit::Test => match f(mbr) {
                                NodeDecision::TakeAll => {
                                    scratch.stack.push((child as *const Node<T>, Visit::Take));
                                }
                                NodeDecision::DropAll => {}
                                NodeDecision::Descend => {
                                    let mode = if child.count() <= small_subtree_cutoff {
                                        Visit::Scan
                                    } else {
                                        Visit::Test
                                    };
                                    scratch.stack.push((child as *const Node<T>, mode));
                                }
                            },
                        }
                    }
                    scratch.stack[base..].reverse();
                }
            }
        }
    }

    /// Counts entries under subtrees fully accepted by `f`, without
    /// collecting payloads (cheaper when only the count matters and no
    /// undecided handling is needed: `Descend` leaf entries are counted as
    /// undecided).
    pub fn classify_count(&self, mut f: impl FnMut(&Rect) -> NodeDecision) -> (usize, usize) {
        fn rec<T>(
            node: &Node<T>,
            f: &mut impl FnMut(&Rect) -> NodeDecision,
            taken: &mut usize,
            undecided: &mut usize,
        ) {
            match node {
                Node::Leaf(entries) => {
                    for (mbr, _) in entries {
                        match f(mbr) {
                            NodeDecision::TakeAll => *taken += 1,
                            NodeDecision::DropAll => {}
                            NodeDecision::Descend => *undecided += 1,
                        }
                    }
                }
                Node::Inner { children, .. } => {
                    for (mbr, child) in children {
                        match f(mbr) {
                            NodeDecision::TakeAll => *taken += child.count(),
                            NodeDecision::DropAll => {}
                            NodeDecision::Descend => rec(child, f, taken, undecided),
                        }
                    }
                }
            }
        }
        let mut taken = 0;
        let mut undecided = 0;
        if let Some(root) = self.root() {
            rec(root, &mut f, &mut taken, &mut undecided);
        }
        (taken, undecided)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_geometry::{Interval, Point};

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(&Point::from([x, y]))
    }

    fn classifier(cut: f64) -> impl FnMut(&Rect) -> NodeDecision {
        // monotone rule: take MBRs entirely left of `cut`, drop entirely
        // right, descend otherwise
        move |mbr: &Rect| {
            if mbr.dim(0).hi() < cut {
                NodeDecision::TakeAll
            } else if mbr.dim(0).lo() > cut {
                NodeDecision::DropAll
            } else {
                NodeDecision::Descend
            }
        }
    }

    #[test]
    fn classify_partitions_by_rule() {
        let items: Vec<(Rect, usize)> = (0..100).map(|i| (pt(i as f64, 0.0), i)).collect();
        let tree = RTree::bulk_load(items, 8);
        let out = tree.classify_entries(classifier(49.5));
        let mut taken = out.taken.clone();
        taken.sort_unstable();
        assert_eq!(taken, (0..50).collect::<Vec<_>>());
        assert!(out.undecided.is_empty());
    }

    #[test]
    fn straddling_entries_are_undecided() {
        let items = vec![
            (
                Rect::new(vec![Interval::new(0.0, 2.0), Interval::point(0.0)]),
                0usize,
            ),
            (pt(5.0, 0.0), 1),
            (pt(-5.0, 0.0), 2),
        ];
        let tree = RTree::bulk_load(items, 4);
        let out = tree.classify_entries(classifier(1.0));
        assert_eq!(out.undecided, vec![0]);
        assert_eq!(out.taken, vec![2]);
    }

    #[test]
    fn classify_count_matches_entries() {
        let items: Vec<(Rect, usize)> = (0..257).map(|i| (pt(i as f64, 0.0), i)).collect();
        let tree = RTree::bulk_load(items, 8);
        let out = tree.classify_entries(classifier(100.2));
        let (taken, undecided) = tree.classify_count(classifier(100.2));
        assert_eq!(taken, out.taken.len());
        assert_eq!(undecided, out.undecided.len());
        assert_eq!(taken, 101);
    }

    #[test]
    fn empty_tree_classifies_empty() {
        let tree: RTree<usize> = RTree::new(4);
        let out = tree.classify_entries(|_| NodeDecision::TakeAll);
        assert!(out.taken.is_empty());
        assert!(out.undecided.is_empty());
        assert_eq!(tree.classify_count(|_| NodeDecision::TakeAll), (0, 0));
    }

    #[test]
    fn scratch_is_reusable_and_cutoff_preserves_results() {
        let items: Vec<(Rect, usize)> = (0..300).map(|i| (pt(i as f64, 0.0), i)).collect();
        let tree = RTree::bulk_load(items, 8);
        let mut scratch = ClassifyScratch::new();
        let reference = tree.classify_entries(classifier(123.4));
        for cutoff in [0usize, 4, 8, 16, 64, 1000] {
            // repeated reuse of one scratch, across cutoffs
            tree.classify_entries_with(&mut scratch, cutoff, classifier(123.4));
            assert_eq!(scratch.taken, reference.taken, "cutoff={cutoff}");
            assert_eq!(scratch.undecided, reference.undecided, "cutoff={cutoff}");
        }
    }

    #[test]
    fn scratch_survives_a_panicking_classifier() {
        let items: Vec<(Rect, usize)> = (0..64).map(|i| (pt(i as f64, 0.0), i)).collect();
        let tree = RTree::bulk_load(items, 8);
        let mut scratch = ClassifyScratch::new();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut calls = 0;
            tree.classify_entries_with(&mut scratch, 0, |_| {
                calls += 1;
                if calls > 2 {
                    panic!("classifier bailed");
                }
                NodeDecision::Descend
            });
        }));
        assert!(panicked.is_err());
        // the scratch is fully usable afterwards (stale frames dropped)
        tree.classify_entries_with(&mut scratch, 0, classifier(31.5));
        assert_eq!(scratch.taken.len(), 32);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            /// Subtree classification with a monotone rule matches
            /// per-entry brute force, for both bulk-loaded and
            /// incrementally built trees — and the scratch/cutoff variant
            /// agrees at every cutoff.
            #[test]
            fn prop_classify_matches_bruteforce(seed in 0u64..500, cut in 0.0..100.0f64) {
                let mut rng = StdRng::seed_from_u64(seed);
                let items: Vec<(Rect, usize)> = (0..150)
                    .map(|i| {
                        let x: f64 = rng.gen_range(0.0..100.0);
                        let w: f64 = rng.gen_range(0.0..3.0);
                        (
                            Rect::new(vec![
                                Interval::new(x, x + w),
                                Interval::new(0.0, 1.0),
                            ]),
                            i,
                        )
                    })
                    .collect();
                let bulk = RTree::bulk_load(items.clone(), 8);
                let mut incr = RTree::new(8);
                for (r, p) in items.clone() {
                    incr.insert(r, p);
                }
                let mut scratch = ClassifyScratch::new();
                for tree in [&bulk, &incr] {
                    let out = tree.classify_entries(classifier(cut));
                    let mut taken = out.taken.clone();
                    let mut undecided = out.undecided.clone();
                    taken.sort_unstable();
                    undecided.sort_unstable();
                    let mut want_taken: Vec<usize> = items
                        .iter()
                        .filter(|(r, _)| r.dim(0).hi() < cut)
                        .map(|(_, i)| *i)
                        .collect();
                    let mut want_undecided: Vec<usize> = items
                        .iter()
                        .filter(|(r, _)| r.dim(0).contains(cut))
                        .map(|(_, i)| *i)
                        .collect();
                    want_taken.sort_unstable();
                    want_undecided.sort_unstable();
                    prop_assert_eq!(&taken, &want_taken);
                    prop_assert_eq!(&undecided, &want_undecided);
                    // counting variant agrees
                    let (t, u) = tree.classify_count(classifier(cut));
                    prop_assert_eq!(t, want_taken.len());
                    prop_assert_eq!(u, want_undecided.len());
                    // scratch + cutoff variant is outcome-identical
                    for cutoff in [3usize, 20, 150] {
                        tree.classify_entries_with(&mut scratch, cutoff, classifier(cut));
                        prop_assert_eq!(&scratch.taken, &out.taken);
                        prop_assert_eq!(&scratch.undecided, &out.undecided);
                    }
                }
            }
        }
    }
}
