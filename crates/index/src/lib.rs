//! R-tree spatial index over MBRs.
//!
//! The substrate the query layer uses for candidate generation: the
//! paper's evaluation picks query targets by MinDist rank ("we chose B to
//! be the object with the 10th smallest MinDist to the reference object")
//! and its future-work section integrates the pruning into index-supported
//! kNN/RkNN processing. This crate provides
//!
//! * STR (Sort-Tile-Recursive) bulk loading,
//! * R*-flavoured insertion (minimum-overlap subtree choice, margin-driven
//!   axis split),
//! * best-first incremental nearest-neighbour search by box-to-box
//!   MinDist,
//! * range (intersection) queries.

pub mod classify;
pub mod knn;
pub mod node;
pub mod rtree;

pub use classify::{ClassifyOutcome, ClassifyScratch, NodeDecision};
pub use knn::{KnnIter, Neighbor, WithinDistanceIter};
pub use rtree::{RTree, RangeIter};
