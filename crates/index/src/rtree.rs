//! The R-tree proper: bulk loading, insertion, queries.

use udb_geometry::{LpNorm, Rect};

use crate::knn::{KnnIter, Neighbor, WithinDistanceIter};
use crate::node::{split_entries, Node, DEFAULT_MAX_ENTRIES};

/// An R-tree mapping MBRs to payloads.
///
/// `T` is the payload type (typically an object id); it must be `Clone`
/// because queries hand out copies.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    pub(crate) root: Option<Node<T>>,
    max_entries: usize,
    min_entries: usize,
    size: usize,
}

impl<T: Clone> Default for RTree<T> {
    fn default() -> Self {
        RTree::new(DEFAULT_MAX_ENTRIES)
    }
}

impl<T: Clone> RTree<T> {
    /// An empty tree with the given maximal fan-out (`>= 4`).
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "fan-out must be at least 4");
        RTree {
            root: None,
            max_entries,
            min_entries: (max_entries * 2) / 5, // R* recommendation: 40 %
            size: 0,
        }
    }

    /// Bulk-loads with Sort-Tile-Recursive packing (Leutenegger et al.).
    /// Produces a balanced tree with near-full leaves in `O(n log n)`.
    pub fn bulk_load(items: Vec<(Rect, T)>, max_entries: usize) -> Self {
        assert!(max_entries >= 4, "fan-out must be at least 4");
        let mut tree = RTree::new(max_entries);
        tree.size = items.len();
        if items.is_empty() {
            return tree;
        }
        let leaves: Vec<Node<T>> = str_pack(items, max_entries)
            .into_iter()
            .map(Node::Leaf)
            .collect();
        tree.root = Some(build_upper_levels(leaves, max_entries));
        tree
    }

    /// The root node (crate-internal traversal hook).
    pub(crate) fn root(&self) -> Option<&Node<T>> {
        self.root.as_ref()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Height of the tree (0 when empty; leaves have height 1).
    pub fn height(&self) -> usize {
        self.root.as_ref().map_or(0, Node::height)
    }

    /// Inserts an entry (R*-flavoured: least-overlap/least-enlargement
    /// subtree choice, margin-driven split on overflow).
    pub fn insert(&mut self, mbr: Rect, payload: T) {
        self.size += 1;
        let max = self.max_entries;
        let min = self.min_entries;
        match self.root.take() {
            None => {
                self.root = Some(Node::Leaf(vec![(mbr, payload)]));
            }
            Some(mut root) => {
                if let Some((split_a, split_b)) = insert_rec(&mut root, mbr, payload, max, min) {
                    // root split: grow the tree by one level
                    let a_mbr = split_a.mbr();
                    let b_mbr = split_b.mbr();
                    self.root = Some(Node::inner(vec![(a_mbr, split_a), (b_mbr, split_b)]));
                } else {
                    self.root = Some(root);
                }
            }
        }
    }

    /// Removes the entry with exactly this `(mbr, payload)` pair,
    /// returning whether it was found. Deletion condenses the tree the
    /// classic way (Guttman): the search descends only into subtrees
    /// whose box covers `mbr`; removing the entry re-tightens the MBRs
    /// along the path, and any node underflowing below the 40 % minimum
    /// is dissolved — its remaining data entries re-enter through the
    /// normal insertion path. Cached subtree entry counts stay exact
    /// along the whole path ([`RTree::check_invariants`] verifies them),
    /// and a root left with a single child collapses, so the tree
    /// shrinks back as entries leave.
    pub fn remove(&mut self, mbr: &Rect, payload: &T) -> bool
    where
        T: PartialEq,
    {
        let Some(mut root) = self.root.take() else {
            return false;
        };
        let mut orphans: Vec<(Rect, T)> = Vec::new();
        if remove_rec(&mut root, mbr, payload, self.min_entries, &mut orphans).is_none() {
            self.root = Some(root);
            return false;
        }
        // orphans re-enter via insert below
        self.size -= 1 + orphans.len();
        // root fix-ups: an empty root disappears, a single-child inner
        // root collapses one level (repeatedly, after deep condensing)
        self.root = loop {
            match root {
                Node::Leaf(ref entries) if entries.is_empty() => break None,
                Node::Inner { ref children, .. } if children.is_empty() => break None,
                Node::Inner {
                    ref mut children, ..
                } if children.len() == 1 => {
                    root = children.pop().expect("single child").1;
                }
                _ => break Some(root),
            }
        };
        for (mbr, payload) in orphans {
            self.insert(mbr, payload);
        }
        true
    }

    /// All payloads whose MBR intersects `query`.
    pub fn range(&self, query: &Rect) -> Vec<T> {
        self.range_iter(query).cloned().collect()
    }

    /// Iterator over references to all payloads whose MBR intersects
    /// `query` (depth-first, arbitrary order). Allocation-free apart
    /// from its traversal stack, so probe loops can prune without
    /// collecting a `Vec` per probe; [`RTree::range`] delegates here.
    pub fn range_iter<'q>(&'q self, query: &'q Rect) -> RangeIter<'q, T> {
        RangeIter {
            query,
            leaf: [].iter(),
            stack: self.root.as_ref().into_iter().collect(),
        }
    }

    /// The `k` nearest entries to `query` by box-to-box MinDist, sorted
    /// ascending (ties in arbitrary order).
    pub fn knn(&self, query: &Rect, k: usize, norm: LpNorm) -> Vec<Neighbor<T>> {
        self.knn_iter(query, norm).take(k).collect()
    }

    /// Incremental best-first nearest-neighbour iterator (distance-ordered
    /// stream of all entries).
    pub fn knn_iter(&self, query: &Rect, norm: LpNorm) -> KnnIter<'_, T> {
        KnnIter::new(self.root.as_ref(), query.clone(), norm)
    }

    /// Payloads within MinDist `radius` of `query`, in ascending MinDist
    /// order.
    pub fn within_distance(&self, query: &Rect, radius: f64, norm: LpNorm) -> Vec<T> {
        self.within_distance_iter(query, radius, norm)
            .map(|n| n.payload)
            .collect()
    }

    /// Distance-ordered iterator over the entries within MinDist
    /// `radius` of `query` (see [`WithinDistanceIter`]);
    /// [`RTree::within_distance`] delegates here.
    pub fn within_distance_iter(
        &self,
        query: &Rect,
        radius: f64,
        norm: LpNorm,
    ) -> WithinDistanceIter<'_, T> {
        WithinDistanceIter::new(self.root.as_ref(), query.clone(), norm, radius)
    }

    /// Visits every payload whose MBR lies within MinDist `radius` of
    /// `query`, in arbitrary order, stopping the whole traversal early
    /// once `visit` returns `false`. Recursive and allocation-free — the
    /// cheapest form of a bounded probe for hot loops that only count or
    /// test a predicate (the distance-*ordered*
    /// [`RTree::within_distance_iter`] pays for a traversal heap).
    pub fn for_each_within_distance(
        &self,
        query: &Rect,
        radius: f64,
        norm: LpNorm,
        visit: &mut impl FnMut(&T) -> bool,
    ) {
        fn rec<T>(
            node: &Node<T>,
            query: &Rect,
            radius: f64,
            norm: LpNorm,
            visit: &mut impl FnMut(&T) -> bool,
        ) -> bool {
            match node {
                Node::Leaf(entries) => {
                    for (mbr, p) in entries {
                        if mbr.min_dist_rect(query, norm) <= radius && !visit(p) {
                            return false;
                        }
                    }
                }
                Node::Inner { children, .. } => {
                    for (mbr, child) in children {
                        if mbr.min_dist_rect(query, norm) <= radius
                            && !rec(child, query, radius, norm, visit)
                        {
                            return false;
                        }
                    }
                }
            }
            true
        }
        if radius < 0.0 {
            return;
        }
        if let Some(root) = &self.root {
            rec(root, query, radius, norm, visit);
        }
    }

    /// One best-first descent serving many queries at once: every node is
    /// tested against each query that still wants it, so subtrees shared
    /// by several queries are visited once instead of once per query.
    ///
    /// `radii[i]` is query `i`'s current prune radius: nodes and entries
    /// with `MinDist > radii[i]` are skipped for that query. `visit`
    /// receives `(query_idx, payload, min_dist, radii)` for every entry
    /// within the query's radius and may *shrink* radii as it learns
    /// better bounds (e.g. a kNN pruning distance tightening as
    /// candidates stream in). Radii must never grow during the
    /// traversal — pruning decisions already taken assume monotonically
    /// shrinking radii and are not revisited. Under that contract the
    /// visited set for query `i` is exactly the entries a per-query
    /// pruned descent would visit: a skipped entry had
    /// `MinDist > radii[i]` at skip time, and the final radius is no
    /// larger.
    ///
    /// Nodes pop in order of their smallest per-query MinDist (best
    /// first), so radius-tightening visitors converge as fast as the
    /// per-query [`RTree::knn_iter`] stream.
    ///
    /// # Panics
    /// Panics if `queries` and `radii` lengths differ.
    pub fn for_each_grouped(
        &self,
        queries: &[Rect],
        norm: LpNorm,
        radii: &mut [f64],
        mut visit: impl FnMut(usize, &T, f64, &mut [f64]),
    ) {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        assert_eq!(
            queries.len(),
            radii.len(),
            "one prune radius per grouped query"
        );
        let Some(root) = self.root.as_ref() else {
            return;
        };
        if queries.is_empty() {
            return;
        }

        /// A node awaiting expansion: its per-query MinDists (∞ where the
        /// query pruned it at push time — permanent, radii only shrink)
        /// and the smallest of them as the best-first heap key.
        struct Pending<'a, T> {
            key: f64,
            dists: Box<[f64]>,
            node: &'a Node<T>,
        }
        impl<T> PartialEq for Pending<'_, T> {
            fn eq(&self, other: &Self) -> bool {
                self.key == other.key
            }
        }
        impl<T> Eq for Pending<'_, T> {}
        impl<T> PartialOrd for Pending<'_, T> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T> Ord for Pending<'_, T> {
            fn cmp(&self, other: &Self) -> Ordering {
                // reversed: BinaryHeap is a max-heap, smallest key first
                other
                    .key
                    .partial_cmp(&self.key)
                    .expect("NaN distance in grouped descent")
            }
        }

        let mut heap: BinaryHeap<Pending<'_, T>> = BinaryHeap::new();
        let root_mbr = root.mbr();
        let root_dists: Box<[f64]> = queries
            .iter()
            .map(|q| root_mbr.min_dist_rect(q, norm))
            .collect();
        let root_key = root_dists.iter().copied().fold(f64::INFINITY, f64::min);
        heap.push(Pending {
            key: root_key,
            dists: root_dists,
            node: root,
        });

        while let Some(Pending { dists, node, .. }) = heap.pop() {
            // radii may have shrunk since the push: re-check who still
            // wants this subtree, skip it entirely when nobody does
            if !dists.iter().zip(radii.iter()).any(|(d, r)| d <= r) {
                continue;
            }
            match node {
                Node::Leaf(entries) => {
                    for (mbr, payload) in entries {
                        for i in 0..queries.len() {
                            if dists[i] > radii[i] {
                                continue;
                            }
                            let d = mbr.min_dist_rect(&queries[i], norm);
                            if d <= radii[i] {
                                visit(i, payload, d, radii);
                            }
                        }
                    }
                }
                Node::Inner { children, .. } => {
                    for (mbr, child) in children {
                        let mut key = f64::INFINITY;
                        let child_dists: Box<[f64]> = (0..queries.len())
                            .map(|i| {
                                if dists[i] > radii[i] {
                                    return f64::INFINITY; // pruned above: stays pruned
                                }
                                let d = mbr.min_dist_rect(&queries[i], norm);
                                if d <= radii[i] {
                                    key = key.min(d);
                                    d
                                } else {
                                    f64::INFINITY
                                }
                            })
                            .collect();
                        if key.is_finite() {
                            heap.push(Pending {
                                key,
                                dists: child_dists,
                                node: child,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Validates structural invariants (test/debug helper): MBR coverage,
    /// balanced depth, fan-out limits. Returns the tree height.
    pub fn check_invariants(&self) -> usize {
        fn rec<T>(node: &Node<T>, max: usize, is_root: bool) -> usize {
            assert!(node.len() <= max, "node overflow: {} > {max}", node.len());
            if !is_root {
                assert!(node.len() >= 1, "empty non-root node");
            }
            match node {
                Node::Leaf(_) => 1,
                Node::Inner { count, children } => {
                    assert_eq!(
                        *count,
                        children.iter().map(|(_, c)| c.count()).sum::<usize>(),
                        "stale cached subtree entry count"
                    );
                    let mut depth = None;
                    for (mbr, child) in children {
                        assert!(
                            mbr.contains_rect(&child.mbr()),
                            "child MBR not covered by parent entry"
                        );
                        let d = rec(child, max, false);
                        match depth {
                            None => depth = Some(d),
                            Some(prev) => assert_eq!(prev, d, "unbalanced tree"),
                        }
                    }
                    depth.expect("inner node without children") + 1
                }
            }
        }
        match &self.root {
            None => 0,
            Some(root) => rec(root, self.max_entries, true),
        }
    }
}

/// Recursive deletion: descends every child whose box covers `mbr` until
/// the entry is found, removes it, and condenses on the way back up —
/// a child dropping below `min` entries is dissolved into `orphans`
/// (all its data entries), a surviving child's box is re-tightened.
/// Cached counts are adjusted exactly along the search path.
fn remove_rec<T: Clone + PartialEq>(
    node: &mut Node<T>,
    mbr: &Rect,
    payload: &T,
    min: usize,
    orphans: &mut Vec<(Rect, T)>,
) -> Option<usize> {
    match node {
        Node::Leaf(entries) => {
            let pos = entries.iter().position(|(m, p)| p == payload && m == mbr)?;
            entries.remove(pos);
            Some(1)
        }
        Node::Inner { count, children } => {
            for i in 0..children.len() {
                if !children[i].0.contains_rect(mbr) {
                    continue;
                }
                if let Some(mut removed) =
                    remove_rec(&mut children[i].1, mbr, payload, min, orphans)
                {
                    if children[i].1.len() < min {
                        // condense: dissolve the underflowed child; its
                        // entries leave this subtree and re-enter through
                        // the normal insertion path — every ancestor's
                        // cached count drops by them too
                        let (_, child) = children.swap_remove(i);
                        removed += child.count();
                        collect_entries(child, orphans);
                    } else {
                        children[i].0 = children[i].1.mbr();
                    }
                    *count -= removed;
                    return Some(removed);
                }
            }
            None
        }
    }
}

/// Drains every data entry below `node` into `out` (condense helper).
fn collect_entries<T>(node: Node<T>, out: &mut Vec<(Rect, T)>) {
    match node {
        Node::Leaf(entries) => out.extend(entries),
        Node::Inner { children, .. } => {
            for (_, child) in children {
                collect_entries(child, out);
            }
        }
    }
}

/// Recursive insertion; returns `Some((a, b))` when the node split.
fn insert_rec<T>(
    node: &mut Node<T>,
    mbr: Rect,
    payload: T,
    max: usize,
    min: usize,
) -> Option<(Node<T>, Node<T>)> {
    match node {
        Node::Leaf(entries) => {
            entries.push((mbr, payload));
            if entries.len() <= max {
                return None;
            }
            let (a, b) = split_entries(std::mem::take(entries), min);
            Some((Node::Leaf(a), Node::Leaf(b)))
        }
        Node::Inner { count, children } => {
            // the new entry lands somewhere below: keep the cached count
            // correct along the whole insertion path
            *count += 1;
            let idx = choose_subtree(children, &mbr);
            children[idx].0 = children[idx].0.union(&mbr);
            if let Some((a, b)) = insert_rec(&mut children[idx].1, mbr, payload, max, min) {
                let a_mbr = a.mbr();
                let b_mbr = b.mbr();
                children[idx] = (a_mbr, a);
                children.push((b_mbr, b));
                if children.len() > max {
                    let (ga, gb) = split_entries(std::mem::take(children), min);
                    return Some((Node::inner(ga), Node::inner(gb)));
                }
            }
            None
        }
    }
}

/// R* subtree choice: minimal volume enlargement, ties by minimal volume.
fn choose_subtree<T>(children: &[(Rect, Node<T>)], mbr: &Rect) -> usize {
    let mut best = 0;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for (i, (child_mbr, _)) in children.iter().enumerate() {
        let vol = child_mbr.volume();
        let enlargement = child_mbr.union(mbr).volume() - vol;
        let key = (enlargement, vol);
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// Depth-first iterator over the payloads intersecting a query rectangle
/// (see [`RTree::range_iter`]).
pub struct RangeIter<'a, T> {
    query: &'a Rect,
    /// Remaining entries of the leaf currently being scanned.
    leaf: std::slice::Iter<'a, (Rect, T)>,
    /// Nodes whose MBR intersects the query, not yet expanded.
    stack: Vec<&'a Node<T>>,
}

impl<'a, T> Iterator for RangeIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        loop {
            for (mbr, payload) in self.leaf.by_ref() {
                if mbr.intersects(self.query) {
                    return Some(payload);
                }
            }
            match self.stack.pop()? {
                Node::Leaf(entries) => self.leaf = entries.iter(),
                Node::Inner { children, .. } => {
                    for (mbr, child) in children {
                        if mbr.intersects(self.query) {
                            self.stack.push(child);
                        }
                    }
                }
            }
        }
    }
}

/// Sort-Tile-Recursive leaf packing: returns groups of at most
/// `max_entries` items, tiled along x then y (generalized to `d`
/// dimensions by recursive slicing).
fn str_pack<T>(mut items: Vec<(Rect, T)>, max_entries: usize) -> Vec<Vec<(Rect, T)>> {
    fn pack_dim<T>(
        mut items: Vec<(Rect, T)>,
        axis: usize,
        dims: usize,
        max_entries: usize,
        out: &mut Vec<Vec<(Rect, T)>>,
    ) {
        if items.len() <= max_entries {
            if !items.is_empty() {
                out.push(items);
            }
            return;
        }
        if axis + 1 == dims {
            // final axis: emit runs of max_entries
            items.sort_by(|a, b| {
                a.0.dim(axis)
                    .center()
                    .partial_cmp(&b.0.dim(axis).center())
                    .expect("NaN in MBR")
            });
            while !items.is_empty() {
                let take = items.len().min(max_entries);
                let rest = items.split_off(take);
                out.push(std::mem::replace(&mut items, rest));
            }
            return;
        }
        // number of leaves and slices per STR
        let leaves = items.len().div_ceil(max_entries);
        let remaining_dims = (dims - axis) as f64;
        let slices = (leaves as f64).powf(1.0 / remaining_dims).ceil() as usize;
        let per_slice = items.len().div_ceil(slices.max(1));
        items.sort_by(|a, b| {
            a.0.dim(axis)
                .center()
                .partial_cmp(&b.0.dim(axis).center())
                .expect("NaN in MBR")
        });
        while !items.is_empty() {
            let take = items.len().min(per_slice);
            let rest = items.split_off(take);
            let slice = std::mem::replace(&mut items, rest);
            pack_dim(slice, axis + 1, dims, max_entries, out);
        }
    }

    let mut out = Vec::new();
    if items.is_empty() {
        return out;
    }
    let dims = items[0].0.dims();
    // sort is done inside pack_dim
    pack_dim(std::mem::take(&mut items), 0, dims, max_entries, &mut out);
    out
}

/// Builds inner levels over packed leaves until a single root remains.
fn build_upper_levels<T>(mut level: Vec<Node<T>>, max_entries: usize) -> Node<T> {
    while level.len() > 1 {
        let entries: Vec<(Rect, Node<T>)> = level.into_iter().map(|n| (n.mbr(), n)).collect();
        let groups = str_pack(entries, max_entries);
        level = groups.into_iter().map(Node::inner).collect();
    }
    level.pop().expect("non-empty level")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use udb_geometry::{Interval, Point};

    fn pt_rect(x: f64, y: f64) -> Rect {
        Rect::from_point(&Point::from([x, y]))
    }

    fn random_rects(n: usize, seed: u64) -> Vec<(Rect, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.gen_range(0.0..100.0);
                let y: f64 = rng.gen_range(0.0..100.0);
                let w: f64 = rng.gen_range(0.0..2.0);
                let h: f64 = rng.gen_range(0.0..2.0);
                (
                    Rect::new(vec![Interval::new(x, x + w), Interval::new(y, y + h)]),
                    i,
                )
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t: RTree<usize> = RTree::default();
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.range(&pt_rect(0.0, 0.0)).is_empty());
        assert!(t.knn(&pt_rect(0.0, 0.0), 3, LpNorm::L2).is_empty());
    }

    #[test]
    fn bulk_load_invariants() {
        for n in [1, 4, 16, 17, 100, 1000] {
            let t = RTree::bulk_load(random_rects(n, 7), 16);
            assert_eq!(t.len(), n);
            let h = t.check_invariants();
            assert_eq!(h, t.height());
        }
    }

    #[test]
    fn insert_invariants() {
        let mut t = RTree::new(8);
        for (r, i) in random_rects(500, 3) {
            t.insert(r, i);
        }
        assert_eq!(t.len(), 500);
        t.check_invariants();
    }

    #[test]
    fn remove_maintains_invariants_and_queries() {
        // interleave removals with range checks against a scan oracle,
        // validating structural invariants (incl. cached counts) after
        // every deletion
        let items = random_rects(300, 21);
        let mut t = RTree::bulk_load(items.clone(), 8);
        let mut live = items.clone();
        let mut rng = StdRng::seed_from_u64(99);
        let q = Rect::new(vec![Interval::new(10.0, 60.0), Interval::new(10.0, 60.0)]);
        while !live.is_empty() {
            let idx = rng.gen_range(0..live.len());
            let (mbr, payload) = live.swap_remove(idx);
            assert!(t.remove(&mbr, &payload), "entry {payload} not found");
            assert_eq!(t.len(), live.len());
            t.check_invariants();
            if live.len().is_multiple_of(37) {
                let mut got = t.range(&q);
                got.sort_unstable();
                let mut want: Vec<usize> = live
                    .iter()
                    .filter(|(r, _)| r.intersects(&q))
                    .map(|(_, i)| *i)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want);
            }
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn remove_missing_entry_is_noop() {
        let items = random_rects(40, 23);
        let mut t = RTree::bulk_load(items.clone(), 8);
        assert!(!t.remove(&pt_rect(1000.0, 1000.0), &0));
        // right box, wrong payload
        assert!(!t.remove(&items[0].0, &usize::MAX));
        assert_eq!(t.len(), 40);
        t.check_invariants();
    }

    #[test]
    fn remove_then_insert_round_trips() {
        let items = random_rects(120, 29);
        let mut t = RTree::bulk_load(items.clone(), 8);
        for (mbr, payload) in items.iter().take(60) {
            assert!(t.remove(mbr, payload));
        }
        for (mbr, payload) in items.iter().take(60) {
            t.insert(mbr.clone(), *payload);
        }
        assert_eq!(t.len(), 120);
        t.check_invariants();
        let q = Rect::new(vec![Interval::new(0.0, 100.0), Interval::new(0.0, 100.0)]);
        let mut got = t.range(&q);
        got.sort_unstable();
        let mut want: Vec<usize> = items
            .iter()
            .filter(|(r, _)| r.intersects(&q))
            .map(|(_, i)| *i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn range_matches_scan_bulk() {
        let items = random_rects(400, 11);
        let t = RTree::bulk_load(items.clone(), 16);
        let q = Rect::new(vec![Interval::new(20.0, 40.0), Interval::new(20.0, 40.0)]);
        let mut got = t.range(&q);
        got.sort_unstable();
        let mut want: Vec<usize> = items
            .iter()
            .filter(|(r, _)| r.intersects(&q))
            .map(|(_, i)| *i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!want.is_empty(), "query should match something");
    }

    #[test]
    fn knn_matches_scan() {
        let items = random_rects(300, 13);
        let t = RTree::bulk_load(items.clone(), 16);
        let q = pt_rect(50.0, 50.0);
        let got = t.knn(&q, 10, LpNorm::L2);
        assert_eq!(got.len(), 10);
        // sorted ascending
        for w in got.windows(2) {
            assert!(w[0].dist <= w[1].dist + 1e-12);
        }
        // matches brute force distances
        let mut dists: Vec<f64> = items
            .iter()
            .map(|(r, _)| r.min_dist_rect(&q, LpNorm::L2))
            .collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (n, d) in got.iter().zip(dists.iter()) {
            assert!((n.dist - d).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_iter_streams_everything_in_order() {
        let items = random_rects(64, 17);
        let t = RTree::bulk_load(items, 8);
        let q = pt_rect(0.0, 0.0);
        let all: Vec<Neighbor<usize>> = t.knn_iter(&q, LpNorm::L2).collect();
        assert_eq!(all.len(), 64);
        for w in all.windows(2) {
            assert!(w[0].dist <= w[1].dist + 1e-12);
        }
    }

    #[test]
    fn within_distance_filters() {
        let items = vec![
            (pt_rect(0.0, 0.0), 0usize),
            (pt_rect(3.0, 0.0), 1),
            (pt_rect(10.0, 0.0), 2),
        ];
        let t = RTree::bulk_load(items, 4);
        let mut got = t.within_distance(&pt_rect(0.0, 0.0), 5.0, LpNorm::L2);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn range_iter_matches_range() {
        let items = random_rects(300, 19);
        let t = RTree::bulk_load(items, 16);
        let q = Rect::new(vec![Interval::new(25.0, 55.0), Interval::new(10.0, 70.0)]);
        let mut via_iter: Vec<usize> = t.range_iter(&q).copied().collect();
        via_iter.sort_unstable();
        let mut via_vec = t.range(&q);
        via_vec.sort_unstable();
        assert_eq!(via_iter, via_vec);
        assert!(!via_vec.is_empty());
        // an empty tree streams nothing
        let empty: RTree<usize> = RTree::default();
        assert_eq!(empty.range_iter(&q).count(), 0);
    }

    #[test]
    fn for_each_within_distance_visits_all_and_stops_early() {
        let items = random_rects(200, 29);
        let t = RTree::bulk_load(items.clone(), 8);
        let q = pt_rect(40.0, 60.0);
        let radius = 20.0;
        let mut seen: Vec<usize> = Vec::new();
        t.for_each_within_distance(&q, radius, LpNorm::L2, &mut |&i| {
            seen.push(i);
            true
        });
        seen.sort_unstable();
        let mut want: Vec<usize> = t
            .within_distance(&q, radius, LpNorm::L2)
            .into_iter()
            .collect();
        want.sort_unstable();
        assert_eq!(seen, want);
        assert!(!want.is_empty());
        // early stop: the traversal ends after the first `false`
        let mut visits = 0;
        t.for_each_within_distance(&q, radius, LpNorm::L2, &mut |_| {
            visits += 1;
            visits < 3
        });
        assert_eq!(visits, 3);
        // negative radius visits nothing
        t.for_each_within_distance(&q, -1.0, LpNorm::L2, &mut |_| {
            panic!("negative radius must visit nothing")
        });
    }

    #[test]
    fn within_distance_iter_is_ordered_and_bounded() {
        let items = random_rects(200, 23);
        let t = RTree::bulk_load(items.clone(), 8);
        let q = pt_rect(50.0, 50.0);
        let radius = 15.0;
        let stream: Vec<Neighbor<usize>> = t.within_distance_iter(&q, radius, LpNorm::L2).collect();
        for w in stream.windows(2) {
            assert!(w[0].dist <= w[1].dist + 1e-12, "not distance-ordered");
        }
        assert!(stream.iter().all(|n| n.dist <= radius));
        // fused: once past the radius the iterator stays exhausted
        let mut it = t.within_distance_iter(&q, radius, LpNorm::L2);
        for _ in 0..stream.len() {
            assert!(it.next().is_some());
        }
        assert!(it.next().is_none());
        assert!(it.next().is_none());
        // agrees with the brute-force count
        let want = items
            .iter()
            .filter(|(r, _)| r.min_dist_rect(&q, LpNorm::L2) <= radius)
            .count();
        assert_eq!(stream.len(), want);
    }

    #[test]
    fn incremental_insert_then_query() {
        let mut t = RTree::new(4);
        for i in 0..50usize {
            t.insert(pt_rect(i as f64, 0.0), i);
        }
        t.check_invariants();
        let got = t.knn(&pt_rect(25.2, 0.0), 3, LpNorm::L2);
        let ids: Vec<usize> = got.iter().map(|n| n.payload).collect();
        assert_eq!(ids[0], 25);
        assert!(ids.contains(&26) && ids.contains(&24));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_knn_equals_linear_scan(seed in 0u64..500, k in 1usize..20) {
            let items = random_rects(120, seed);
            let bulk = RTree::bulk_load(items.clone(), 8);
            let mut incr = RTree::new(8);
            for (r, i) in items.clone() {
                incr.insert(r, i);
            }
            let q = pt_rect(50.0, 50.0);
            for t in [&bulk, &incr] {
                let got = t.knn(&q, k, LpNorm::L2);
                let mut dists: Vec<f64> = items
                    .iter()
                    .map(|(r, _)| r.min_dist_rect(&q, LpNorm::L2))
                    .collect();
                dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
                prop_assert_eq!(got.len(), k.min(items.len()));
                for (n, d) in got.iter().zip(dists.iter()) {
                    prop_assert!((n.dist - d).abs() < 1e-9);
                }
            }
        }

        #[test]
        fn prop_range_equals_linear_scan(seed in 0u64..500) {
            let items = random_rects(150, seed);
            let t = RTree::bulk_load(items.clone(), 8);
            let q = Rect::new(vec![Interval::new(10.0, 60.0), Interval::new(30.0, 80.0)]);
            let mut got = t.range(&q);
            got.sort_unstable();
            let mut want: Vec<usize> = items
                .iter()
                .filter(|(r, _)| r.intersects(&q))
                .map(|(_, i)| *i)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
