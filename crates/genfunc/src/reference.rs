//! The original nested-`Vec` UGF implementation, kept as the correctness
//! reference for the flat-arena [`crate::Ugf`].
//!
//! [`NestedUgf`] stores the coefficient triangle as `Vec<Vec<f64>>` rows
//! and allocates a fresh triangle per [`NestedUgf::multiply`]. It is the
//! straightforward transcription of §IV-C/D of the paper and easy to
//! audit; the property tests in `ugf.rs` assert the arena implementation
//! agrees with it to ≤ 1e-12 on every query, and the `genfunc` criterion
//! bench measures the speedup of the rewrite against it.

use crate::bounds::CountDistributionBounds;

/// Reference uncertain generating function (allocating, nested rows).
#[derive(Debug, Clone)]
pub struct NestedUgf {
    /// `rows[i][j] = c_{i,j}`.
    rows: Vec<Vec<f64>>,
    truncate_at: Option<usize>,
    factors: usize,
}

impl NestedUgf {
    /// The empty product `F^0 = 1·x⁰y⁰`.
    pub fn new(truncate_at: Option<usize>) -> Self {
        NestedUgf {
            rows: vec![vec![1.0]],
            truncate_at,
            factors: 0,
        }
    }

    /// Number of factors multiplied so far.
    pub fn factors(&self) -> usize {
        self.factors
    }

    /// Maximal row index currently representable.
    fn row_cap(&self) -> usize {
        self.truncate_at.unwrap_or(usize::MAX)
    }

    /// Maximal column index representable in row `i`.
    fn col_cap(&self, i: usize) -> usize {
        match self.truncate_at {
            Some(k) => (k + 1).saturating_sub(i),
            None => usize::MAX,
        }
    }

    /// Multiplies by `(p_lb·x + (p_ub − p_lb)·y + (1 − p_ub))`.
    ///
    /// # Panics
    /// Panics (debug) unless `0 ≤ p_lb ≤ p_ub ≤ 1`.
    pub fn multiply(&mut self, p_lb: f64, p_ub: f64) {
        debug_assert!(
            (-1e-9..=1.0 + 1e-9).contains(&p_lb)
                && (-1e-9..=1.0 + 1e-9).contains(&p_ub)
                && p_lb <= p_ub + 1e-9,
            "invalid probability bounds [{p_lb}, {p_ub}]"
        );
        let p_lb = p_lb.clamp(0.0, 1.0);
        let p_ub = p_ub.clamp(p_lb, 1.0);
        let unknown = p_ub - p_lb;
        let zero = 1.0 - p_ub;

        self.factors += 1;
        let new_rows = (self.factors + 1).min(self.row_cap().saturating_add(1));
        let mut next: Vec<Vec<f64>> = (0..new_rows)
            .map(|i| vec![0.0; (self.factors + 1 - i).min(self.col_cap(i).saturating_add(1))])
            .collect();
        let row_cap = self.row_cap();
        let mut add = |i: usize, j: usize, v: f64| {
            if v == 0.0 {
                return;
            }
            let i = i.min(row_cap);
            let jc = next[i].len() - 1;
            next[i][j.min(jc)] += v;
        };
        for (i, row) in self.rows.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if c == 0.0 {
                    continue;
                }
                add(i + 1, j, c * p_lb);
                add(i, j + 1, c * unknown);
                add(i, j, c * zero);
            }
        }
        self.rows = next;
    }

    /// The coefficient `c_{i,j}` (0 outside the stored triangle).
    pub fn coefficient(&self, i: usize, j: usize) -> f64 {
        self.rows
            .get(i)
            .and_then(|row| row.get(j))
            .copied()
            .unwrap_or(0.0)
    }

    /// Total coefficient mass (always 1 up to rounding).
    pub fn total(&self) -> f64 {
        self.rows.iter().flatten().sum()
    }

    /// Lemma 4 lower bound: `P(Σ = k) ≥ c_{k,0}`.
    pub fn lower_bound(&self, k: usize) -> f64 {
        self.coefficient(k, 0)
    }

    /// Lemma 4 upper bound: `P(Σ = k) ≤ Σ_{i ≤ k, i+j ≥ k} c_{i,j}`.
    pub fn upper_bound(&self, k: usize) -> f64 {
        let mut sum = 0.0;
        for i in 0..=k.min(self.rows.len().saturating_sub(1)) {
            let row = &self.rows[i];
            for (j, &c) in row.iter().enumerate() {
                if i + j >= k {
                    sum += c;
                }
            }
        }
        sum.min(1.0)
    }

    /// Per-`k` bounds for `k = 0..len` as a [`CountDistributionBounds`].
    ///
    /// # Panics
    /// Panics if `len` exceeds the truncation point.
    pub fn count_bounds(&self, len: usize) -> CountDistributionBounds {
        if let Some(t) = self.truncate_at {
            assert!(
                len <= t,
                "cannot extract {len} counts from a UGF truncated at {t}"
            );
        }
        let lower: Vec<f64> = (0..len).map(|k| self.lower_bound(k)).collect();
        let upper: Vec<f64> = (0..len).map(|k| self.upper_bound(k)).collect();
        CountDistributionBounds::new(lower, upper)
    }

    /// Direct bounds on the CDF `P(Σ < k)`.
    ///
    /// # Panics
    /// Panics if `k` exceeds the truncation point.
    pub fn cdf_bounds(&self, k: usize) -> (f64, f64) {
        if let Some(t) = self.truncate_at {
            assert!(
                k <= t,
                "cannot extract CDF at {k} from a UGF truncated at {t}"
            );
        }
        let mut lo = 0.0;
        let mut hi = 0.0;
        for (i, row) in self.rows.iter().enumerate() {
            if i >= k {
                break;
            }
            for (j, &c) in row.iter().enumerate() {
                hi += c;
                if i + j < k {
                    lo += c;
                }
            }
        }
        (lo.clamp(0.0, 1.0), hi.clamp(0.0, 1.0))
    }
}
