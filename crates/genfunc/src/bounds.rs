//! Bounded probability distributions over counts.

/// Lower/upper bounds on `P(count = k)` for `k = 0..len` — the
/// `(DomCountLB, DomCountUB)` lists returned by Algorithm 1 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct CountDistributionBounds {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl CountDistributionBounds {
    /// The vacuous bounds `[0, 1]` for every count in `0..len`.
    pub fn unknown(len: usize) -> Self {
        CountDistributionBounds {
            lower: vec![0.0; len],
            upper: vec![1.0; len],
        }
    }

    /// All-zero bounds of the given length (the neutral element of
    /// [`CountDistributionBounds::add_weighted`]).
    pub fn zero(len: usize) -> Self {
        CountDistributionBounds {
            lower: vec![0.0; len],
            upper: vec![0.0; len],
        }
    }

    /// Builds from explicit per-`k` bounds.
    ///
    /// # Panics
    /// Panics if lengths differ or any pair violates
    /// `0 ≤ lower ≤ upper ≤ 1`.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Self {
        assert_eq!(lower.len(), upper.len(), "bound vectors must align");
        for (k, (l, u)) in lower.iter().zip(upper.iter()).enumerate() {
            assert!(
                (0.0..=1.0 + 1e-9).contains(l)
                    && (0.0..=1.0 + 1e-9).contains(u)
                    && l <= &(u + 1e-9),
                "invalid bounds at k={k}: [{l}, {u}]"
            );
        }
        CountDistributionBounds { lower, upper }
    }

    /// Number of counts covered (`k = 0..len`).
    pub fn len(&self) -> usize {
        self.lower.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.lower.is_empty()
    }

    /// Lower bound of `P(count = k)` (0 beyond the stored range).
    pub fn lower(&self, k: usize) -> f64 {
        self.lower.get(k).copied().unwrap_or(0.0)
    }

    /// Upper bound of `P(count = k)` (0 beyond the stored range).
    pub fn upper(&self, k: usize) -> f64 {
        self.upper.get(k).copied().unwrap_or(0.0)
    }

    /// The full lower-bound vector.
    pub fn lower_slice(&self) -> &[f64] {
        &self.lower
    }

    /// The full upper-bound vector.
    pub fn upper_slice(&self) -> &[f64] {
        &self.upper
    }

    /// Mutable views of both bound vectors, for fused in-place
    /// accumulation (see [`crate::Ugf::add_bounds_weighted`]).
    pub(crate) fn bounds_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.lower, &mut self.upper)
    }

    /// The paper's *accumulated uncertainty*
    /// `Σ_k (upper_k − lower_k)` — the convergence measure plotted in
    /// Figures 6(b) and 7.
    pub fn uncertainty(&self) -> f64 {
        self.lower
            .iter()
            .zip(self.upper.iter())
            .map(|(l, u)| (u - l).max(0.0))
            .sum()
    }

    /// Bounds on the CDF `P(count < k)`.
    ///
    /// The lower bound is the larger of `Σ_{i<k} lower_i` and
    /// `1 − Σ_{i≥k} upper_i`; the upper bound is the smaller of
    /// `Σ_{i<k} upper_i` and `1 − Σ_{i≥k} lower_i`. Both complements are
    /// valid because the true per-`k` probabilities sum to one.
    pub fn cdf_bounds(&self, k: usize) -> (f64, f64) {
        let k = k.min(self.len());
        let low_head: f64 = self.lower[..k].iter().sum();
        let up_head: f64 = self.upper[..k].iter().sum();
        let low_tail: f64 = self.lower[k..].iter().sum();
        let up_tail: f64 = self.upper[k..].iter().sum();
        let lo = low_head.max(1.0 - up_tail).clamp(0.0, 1.0);
        let hi = up_head.min(1.0 - low_tail).clamp(0.0, 1.0);
        (lo, hi.max(lo))
    }

    /// Bounds on the expectation `E[count + 1]` — the *expected rank* of
    /// Corollary 6 (rank = domination count + 1).
    pub fn expected_rank_bounds(&self) -> (f64, f64) {
        // distribute the undecided mass adversarially: all of it on the
        // smallest k for the lower bound, on the largest k for the upper
        let total_lower: f64 = self.lower.iter().sum();
        let slack = (1.0 - total_lower).max(0.0);
        let base: f64 = self
            .lower
            .iter()
            .enumerate()
            .map(|(k, l)| l * (k + 1) as f64)
            .sum();
        let lo = base + slack * 1.0;
        let hi = base + slack * self.len() as f64;
        (lo, hi)
    }

    /// Shifts the distribution right by `c` counts (the
    /// `ShiftRight(DomCount, CompleteDominationCount)` of Algorithm 1:
    /// objects that *certainly* dominate add a constant to the count).
    /// The vector grows by `c`.
    pub fn shift_right(&mut self, c: usize) {
        if c == 0 {
            return;
        }
        let mut lower = vec![0.0; c];
        lower.extend_from_slice(&self.lower);
        let mut upper = vec![0.0; c];
        upper.extend_from_slice(&self.upper);
        self.lower = lower;
        self.upper = upper;
    }

    /// Accumulates `weight × other` (the per-partition-pair aggregation of
    /// §IV-E: `DomCount_k(B,R) = Σ_{B',R'} DomCount_k(B',R') · P(B')P(R')`).
    ///
    /// # Panics
    /// Panics if `other` is longer than `self`.
    pub fn add_weighted(&mut self, other: &CountDistributionBounds, weight: f64) {
        assert!(
            other.len() <= self.len(),
            "cannot accumulate longer bounds ({} > {})",
            other.len(),
            self.len()
        );
        for k in 0..other.len() {
            self.lower[k] += weight * other.lower[k];
            self.upper[k] += weight * other.upper[k];
        }
    }

    /// Clamps all bounds into `[0, 1]` and enforces `lower ≤ upper`
    /// (floating-point hygiene after long accumulations).
    pub fn normalize(&mut self) {
        for (l, u) in self.lower.iter_mut().zip(self.upper.iter_mut()) {
            *l = l.clamp(0.0, 1.0);
            *u = u.clamp(0.0, 1.0);
            if *u < *l {
                let m = 0.5 * (*l + *u);
                *l = m;
                *u = m;
            }
        }
    }

    /// Truncates to the first `k` counts (used when only
    /// `P(count < k)` matters, cf. §VI).
    pub fn truncate(&mut self, k: usize) {
        self.lower.truncate(k);
        self.upper.truncate(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CountDistributionBounds {
        // Example 3 / Figure 4 of the paper
        CountDistributionBounds::new(vec![0.10, 0.34, 0.12], vec![0.32, 0.78, 0.40])
    }

    #[test]
    fn accessors() {
        let b = example();
        assert_eq!(b.len(), 3);
        assert_eq!(b.lower(1), 0.34);
        assert_eq!(b.upper(2), 0.40);
        assert_eq!(b.lower(99), 0.0);
    }

    #[test]
    fn uncertainty_sums_widths() {
        let b = example();
        let expect = (0.32 - 0.10) + (0.78 - 0.34) + (0.40 - 0.12);
        assert!((b.uncertainty() - expect).abs() < 1e-12);
        assert_eq!(CountDistributionBounds::unknown(4).uncertainty(), 4.0);
    }

    #[test]
    fn cdf_bounds_use_complement() {
        let b = example();
        // P(count < 2) >= max(0.10 + 0.34, 1 - 0.40) = 0.60
        let (lo, hi) = b.cdf_bounds(2);
        assert!((lo - 0.60).abs() < 1e-12, "lo={lo}");
        // P(count < 2) <= min(0.32 + 0.78, 1 - 0.12) = 0.88
        assert!((hi - 0.88).abs() < 1e-12, "hi={hi}");
    }

    #[test]
    fn cdf_bounds_full_range_is_one() {
        let b = example();
        let (lo, hi) = b.cdf_bounds(3);
        // total mass is exactly 1 for a real distribution; bounds must
        // allow it
        assert!(lo <= 1.0 && hi >= lo);
        assert!((hi - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_bounds_zero() {
        let b = example();
        assert_eq!(b.cdf_bounds(0), (0.0, 0.0));
    }

    #[test]
    fn shift_right_prepends_zeros() {
        let mut b = example();
        b.shift_right(2);
        assert_eq!(b.len(), 5);
        assert_eq!(b.lower(0), 0.0);
        assert_eq!(b.lower(2), 0.10);
        assert_eq!(b.upper(4), 0.40);
    }

    #[test]
    fn add_weighted_accumulates() {
        let mut acc = CountDistributionBounds::zero(3);
        acc.add_weighted(&example(), 0.5);
        acc.add_weighted(&example(), 0.5);
        let b = example();
        for k in 0..3 {
            assert!((acc.lower(k) - b.lower(k)).abs() < 1e-12);
            assert!((acc.upper(k) - b.upper(k)).abs() < 1e-12);
        }
    }

    #[test]
    fn normalize_fixes_rounding() {
        let mut b = CountDistributionBounds {
            lower: vec![1.0 + 1e-12, 0.5],
            upper: vec![1.0, 0.5 - 1e-13],
        };
        b.normalize();
        assert!(b.lower(0) <= b.upper(0));
        assert!(b.lower(1) <= b.upper(1));
        assert!(b.upper(0) <= 1.0);
    }

    #[test]
    fn expected_rank_bounds_bracket() {
        // fully decided distribution: count = 1 surely -> rank 2
        let b = CountDistributionBounds::new(vec![0.0, 1.0, 0.0], vec![0.0, 1.0, 0.0]);
        let (lo, hi) = b.expected_rank_bounds();
        assert!((lo - 2.0).abs() < 1e-12);
        assert!((hi - 2.0).abs() < 1e-12);
        // fully unknown: rank anywhere in [1, len]
        let u = CountDistributionBounds::new(vec![0.0; 3], vec![1.0; 3]);
        let (lo, hi) = u.expected_rank_bounds();
        assert!((lo - 1.0).abs() < 1e-12);
        assert!((hi - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn rejects_lower_above_upper() {
        let _ = CountDistributionBounds::new(vec![0.8], vec![0.2]);
    }

    #[test]
    fn truncate_drops_tail() {
        let mut b = example();
        b.truncate(1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.lower(0), 0.10);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Arbitrary valid bound vectors whose exact distribution exists:
        /// generate a true PDF plus per-k slack.
        fn arb_bounds() -> impl Strategy<Value = (CountDistributionBounds, Vec<f64>)> {
            proptest::collection::vec((0.01..1.0f64, 0.0..0.5f64, 0.0..0.5f64), 1..8).prop_map(
                |raw| {
                    let total: f64 = raw.iter().map(|(p, _, _)| p).sum();
                    let pdf: Vec<f64> = raw.iter().map(|(p, _, _)| p / total).collect();
                    let lower: Vec<f64> = pdf
                        .iter()
                        .zip(raw.iter())
                        .map(|(p, (_, dl, _))| (p * (1.0 - dl)).max(0.0))
                        .collect();
                    let upper: Vec<f64> = pdf
                        .iter()
                        .zip(raw.iter())
                        .map(|(p, (_, _, du))| (p + du * (1.0 - p)).min(1.0))
                        .collect();
                    (CountDistributionBounds::new(lower, upper), pdf)
                },
            )
        }

        proptest! {
            /// The CDF bounds bracket the true CDF of the generating PDF
            /// and are monotone in k.
            #[test]
            fn prop_cdf_bounds_bracket_truth((b, pdf) in arb_bounds()) {
                let mut prev = (0.0f64, 0.0f64);
                for k in 0..=b.len() {
                    let truth: f64 = pdf[..k].iter().sum();
                    let (lo, hi) = b.cdf_bounds(k);
                    prop_assert!(lo <= truth + 1e-9, "k={k}: lo {lo} truth {truth}");
                    prop_assert!(hi >= truth - 1e-9, "k={k}: hi {hi} truth {truth}");
                    prop_assert!(lo >= prev.0 - 1e-9, "lower CDF must be monotone");
                    prop_assert!(hi >= prev.1 - 1e-9, "upper CDF must be monotone");
                    prev = (lo, hi);
                }
            }

            /// Shifting preserves per-k widths (hence total uncertainty).
            #[test]
            fn prop_shift_preserves_uncertainty((b, _) in arb_bounds(), c in 0usize..5) {
                let mut shifted = b.clone();
                shifted.shift_right(c);
                prop_assert!((shifted.uncertainty() - b.uncertainty()).abs() < 1e-12);
                prop_assert_eq!(shifted.len(), b.len() + c);
                for k in 0..b.len() {
                    prop_assert_eq!(shifted.lower(k + c), b.lower(k));
                    prop_assert_eq!(shifted.upper(k + c), b.upper(k));
                }
            }

            /// Weighted accumulation is linear: accumulating the same
            /// bounds with weights summing to one reproduces them.
            #[test]
            fn prop_add_weighted_convexity((b, _) in arb_bounds(), w in 0.1..0.9f64) {
                let mut acc = CountDistributionBounds::zero(b.len());
                acc.add_weighted(&b, w);
                acc.add_weighted(&b, 1.0 - w);
                for k in 0..b.len() {
                    prop_assert!((acc.lower(k) - b.lower(k)).abs() < 1e-12);
                    prop_assert!((acc.upper(k) - b.upper(k)).abs() < 1e-12);
                }
            }

            /// Expected-rank bounds bracket the true expectation.
            #[test]
            fn prop_expected_rank_brackets_truth((b, pdf) in arb_bounds()) {
                let truth: f64 = pdf
                    .iter()
                    .enumerate()
                    .map(|(k, p)| p * (k + 1) as f64)
                    .sum();
                let (lo, hi) = b.expected_rank_bounds();
                prop_assert!(lo <= truth + 1e-9, "lo {lo} truth {truth}");
                prop_assert!(hi >= truth - 1e-9, "hi {hi} truth {truth}");
            }
        }
    }
}
