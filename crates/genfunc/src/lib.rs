//! Generating-function machinery for domination counts (§IV of the paper).
//!
//! Three layers:
//!
//! * [`poisson`] — the Poisson-binomial recurrence: the exact distribution
//!   of a sum of independent (non-identical) Bernoulli variables, used by
//!   the Monte-Carlo baseline where per-world probabilities are exact.
//! * [`classic`] — the equivalent classic generating function
//!   `Π (1 − p_i + p_i·x)` with the `O(k·N)` truncation of §IV-C, plus the
//!   *two-regular-GF* bounding scheme the paper's technical report proves
//!   to be looser than the UGF (kept for the ablation benchmark).
//! * [`ugf`] — the paper's novel **Uncertain Generating Function**:
//!   `Π (pLB_i·x + (pUB_i − pLB_i)·y + (1 − pUB_i))`, whose coefficient
//!   `c_{i,j}` is the probability that the count is *certainly* at least
//!   `i` and *possibly* up to `i + j`. (Note: the §IV-C display of the
//!   paper swaps the `y` and constant terms; Example 3 and Equation (1) of
//!   §IV-D fix the convention implemented here.) The implementation is a
//!   flat-arena, zero-allocation-per-factor rewrite; [`mod@reference`] keeps
//!   the original nested-`Vec` transcription as the equivalence oracle
//!   for tests and benches.
//!
//! The shared output type is [`CountDistributionBounds`]: per-`k` lower and
//! upper bounds on `P(count = k)` with the CDF/uncertainty helpers the
//! query layer needs.

pub mod algebra;
pub mod bounds;
pub mod classic;
pub mod poisson;
pub mod reference;
pub mod ugf;

pub use algebra::{MinMaxCdf, ProbAlgebra};
pub use bounds::CountDistributionBounds;
pub use classic::{two_gf_bounds, ClassicGf};
pub use poisson::poisson_binomial;
pub use reference::NestedUgf;
pub use ugf::Ugf;
