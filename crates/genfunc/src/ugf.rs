//! Uncertain Generating Functions (§IV-C/D — the paper's novel technique).
//!
//! For independent Bernoulli variables known only through probability
//! bounds `pLB_i ≤ P(X_i = 1) ≤ pUB_i`, the UGF
//!
//! ```text
//! F^N = Π_i ( pLB_i·x  +  (pUB_i − pLB_i)·y  +  (1 − pUB_i) )
//!     = Σ_{i,j} c_{i,j} x^i y^j
//! ```
//!
//! has coefficients with the semantics: *with probability `c_{i,j}` the sum
//! is certainly at least `i` and possibly up to `i + j`*. Hence
//!
//! * `P(Σ = k) ≥ c_{k,0}` (Lemma 4, lower bound),
//! * `P(Σ = k) ≤ Σ_{i ≤ k, i+j ≥ k} c_{i,j}` (Lemma 4, upper bound),
//! * `P(Σ < k) ∈ [ Σ_{i+j < k} c_{i,j}, Σ_{i < k} c_{i,j} ]` — the direct
//!   CDF bounds used by threshold predicates (tighter than differencing
//!   the per-`k` bounds).
//!
//! (The displayed formula in the paper's §IV-C swaps the `y` and constant
//! terms; Example 3's expansion `0.12x² + 0.34x + 0.22xy + …` confirms the
//! §IV-D Equation (1) convention implemented here.)
//!
//! With `truncate_at = Some(k)` the paper's §VI optimization applies: all
//! coefficients with the same `i` and `i + j > k` are merged, and certain
//! counts beyond `k` are absorbed into row `k`, bounding the state to
//! `O(k²)` and the total cost to `O(k²·N)` instead of `O(N³)`.

use crate::bounds::CountDistributionBounds;

/// An incrementally built uncertain generating function.
///
/// ```
/// use udb_genfunc::Ugf;
///
/// // Example 3 of the paper: bounds [0.2, 0.5] and [0.6, 0.8]
/// let mut f = Ugf::new(None);
/// f.multiply(0.2, 0.5);
/// f.multiply(0.6, 0.8);
/// // P(Σ = 2) ∈ [12 %, 40 %]
/// assert!((f.lower_bound(2) - 0.12).abs() < 1e-12);
/// assert!((f.upper_bound(2) - 0.40).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Ugf {
    /// `rows[i][j] = c_{i,j}`.
    rows: Vec<Vec<f64>>,
    truncate_at: Option<usize>,
    factors: usize,
}

impl Ugf {
    /// The empty product `F^0 = 1·x⁰y⁰`.
    pub fn new(truncate_at: Option<usize>) -> Self {
        Ugf {
            rows: vec![vec![1.0]],
            truncate_at,
            factors: 0,
        }
    }

    /// Number of factors multiplied so far.
    pub fn factors(&self) -> usize {
        self.factors
    }

    /// Maximal row index currently representable.
    fn row_cap(&self) -> usize {
        self.truncate_at.unwrap_or(usize::MAX)
    }

    /// Maximal column index representable in row `i`.
    fn col_cap(&self, i: usize) -> usize {
        match self.truncate_at {
            Some(k) => (k + 1).saturating_sub(i),
            None => usize::MAX,
        }
    }

    /// Multiplies by `(p_lb·x + (p_ub − p_lb)·y + (1 − p_ub))`.
    ///
    /// # Panics
    /// Panics (debug) unless `0 ≤ p_lb ≤ p_ub ≤ 1`.
    pub fn multiply(&mut self, p_lb: f64, p_ub: f64) {
        debug_assert!(
            (-1e-9..=1.0 + 1e-9).contains(&p_lb)
                && (-1e-9..=1.0 + 1e-9).contains(&p_ub)
                && p_lb <= p_ub + 1e-9,
            "invalid probability bounds [{p_lb}, {p_ub}]"
        );
        let p_lb = p_lb.clamp(0.0, 1.0);
        let p_ub = p_ub.clamp(p_lb, 1.0);
        let unknown = p_ub - p_lb;
        let zero = 1.0 - p_ub;

        self.factors += 1;
        let new_rows = (self.factors + 1).min(self.row_cap().saturating_add(1));
        let mut next: Vec<Vec<f64>> = (0..new_rows)
            .map(|i| vec![0.0; (self.factors + 1 - i).min(self.col_cap(i).saturating_add(1))])
            .collect();
        let row_cap = self.row_cap();
        let mut add = |i: usize, j: usize, v: f64| {
            if v == 0.0 {
                return;
            }
            let i = i.min(row_cap);
            let jc = next[i].len() - 1;
            next[i][j.min(jc)] += v;
        };
        for (i, row) in self.rows.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if c == 0.0 {
                    continue;
                }
                add(i + 1, j, c * p_lb);
                add(i, j + 1, c * unknown);
                add(i, j, c * zero);
            }
        }
        self.rows = next;
    }

    /// The coefficient `c_{i,j}` (0 outside the stored triangle).
    pub fn coefficient(&self, i: usize, j: usize) -> f64 {
        self.rows
            .get(i)
            .and_then(|row| row.get(j))
            .copied()
            .unwrap_or(0.0)
    }

    /// Total coefficient mass (always 1 up to rounding — the three factor
    /// terms partition the probability space).
    pub fn total(&self) -> f64 {
        self.rows.iter().flatten().sum()
    }

    /// Lemma 4 lower bound: `P(Σ = k) ≥ c_{k,0}`.
    pub fn lower_bound(&self, k: usize) -> f64 {
        self.coefficient(k, 0)
    }

    /// Lemma 4 upper bound: `P(Σ = k) ≤ Σ_{i ≤ k, i+j ≥ k} c_{i,j}`.
    pub fn upper_bound(&self, k: usize) -> f64 {
        let mut sum = 0.0;
        for i in 0..=k.min(self.rows.len().saturating_sub(1)) {
            let row = &self.rows[i];
            for (j, &c) in row.iter().enumerate() {
                if i + j >= k {
                    sum += c;
                }
            }
        }
        sum.min(1.0)
    }

    /// Per-`k` bounds for `k = 0..len` as a [`CountDistributionBounds`].
    ///
    /// With truncation `Some(t)`, `len` must satisfy `len ≤ t` (counts at
    /// and beyond the truncation point have been merged).
    pub fn count_bounds(&self, len: usize) -> CountDistributionBounds {
        if let Some(t) = self.truncate_at {
            assert!(
                len <= t,
                "cannot extract {len} counts from a UGF truncated at {t}"
            );
        }
        let lower: Vec<f64> = (0..len).map(|k| self.lower_bound(k)).collect();
        let upper: Vec<f64> = (0..len).map(|k| self.upper_bound(k)).collect();
        CountDistributionBounds::new(lower, upper)
    }

    /// Direct bounds on the CDF `P(Σ < k)`:
    /// `[ Σ_{i+j ≤ k−1} c_{i,j}, Σ_{i ≤ k−1} c_{i,j} ]`.
    ///
    /// Valid for `k ≤ truncate_at` (merged coefficients all satisfy
    /// `i + j > truncate_at` or live in rows `≥ truncate_at`).
    pub fn cdf_bounds(&self, k: usize) -> (f64, f64) {
        if let Some(t) = self.truncate_at {
            assert!(k <= t, "cannot extract CDF at {k} from a UGF truncated at {t}");
        }
        let mut lo = 0.0;
        let mut hi = 0.0;
        for (i, row) in self.rows.iter().enumerate() {
            if i >= k {
                break;
            }
            for (j, &c) in row.iter().enumerate() {
                hi += c;
                if i + j < k {
                    lo += c;
                }
            }
        }
        (lo.clamp(0.0, 1.0), hi.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::classic::ClassicGf;
    use crate::poisson::poisson_binomial;
    use proptest::prelude::*;

    /// Example 3 of the paper: two variables with bounds
    /// `[0.2, 0.5]` and `[0.6, 0.8]`.
    fn example3() -> Ugf {
        let mut f = Ugf::new(None);
        f.multiply(0.2, 0.5);
        f.multiply(0.6, 0.8);
        f
    }

    #[test]
    fn paper_example3_coefficients() {
        let f = example3();
        // F2 = 0.12x² + 0.22xy + 0.34x + 0.06y² + 0.16y + 0.10
        assert!((f.coefficient(2, 0) - 0.12).abs() < 1e-12);
        assert!((f.coefficient(1, 1) - 0.22).abs() < 1e-12);
        assert!((f.coefficient(1, 0) - 0.34).abs() < 1e-12);
        assert!((f.coefficient(0, 2) - 0.06).abs() < 1e-12);
        assert!((f.coefficient(0, 1) - 0.16).abs() < 1e-12);
        assert!((f.coefficient(0, 0) - 0.10).abs() < 1e-12);
        assert!((f.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_example3_bounds() {
        let f = example3();
        // P(Σ = 2) ∈ [12%, 40%]
        assert!((f.lower_bound(2) - 0.12).abs() < 1e-12);
        assert!((f.upper_bound(2) - 0.40).abs() < 1e-12);
        // P(Σ = 1) ∈ [34%, 78%]
        assert!((f.lower_bound(1) - 0.34).abs() < 1e-12);
        assert!((f.upper_bound(1) - 0.78).abs() < 1e-12);
        // P(Σ = 0) ∈ [10%, 32%]
        assert!((f.lower_bound(0) - 0.10).abs() < 1e-12);
        assert!((f.upper_bound(0) - 0.32).abs() < 1e-12);
    }

    #[test]
    fn paper_example3_count_bounds_struct() {
        let b = example3().count_bounds(3);
        for (got, want) in b.lower_slice().iter().zip([0.10, 0.34, 0.12]) {
            assert!((got - want).abs() < 1e-12);
        }
        assert!((b.upper(0) - 0.32).abs() < 1e-12);
        assert!((b.upper(1) - 0.78).abs() < 1e-12);
        assert!((b.upper(2) - 0.40).abs() < 1e-12);
    }

    #[test]
    fn cdf_bounds_direct() {
        let f = example3();
        // P(Σ < 2): lower = c00 + c10 + c01 = 0.60, upper = rows 0..=1 = 0.88
        let (lo, hi) = f.cdf_bounds(2);
        assert!((lo - 0.60).abs() < 1e-12);
        assert!((hi - 0.88).abs() < 1e-12);
        // P(Σ < 0) is empty
        assert_eq!(f.cdf_bounds(0), (0.0, 0.0));
    }

    #[test]
    fn tight_probabilities_reduce_to_classic_gf() {
        let probs = [0.2, 0.1, 0.3];
        let mut ugf = Ugf::new(None);
        let mut gf = ClassicGf::new(None);
        for &p in &probs {
            ugf.multiply(p, p);
            gf.multiply(p);
        }
        for k in 0..=probs.len() {
            assert!((ugf.lower_bound(k) - gf.coefficient(k)).abs() < 1e-12);
            assert!((ugf.upper_bound(k) - gf.coefficient(k)).abs() < 1e-12);
        }
    }

    #[test]
    fn truncation_matches_full_for_small_counts() {
        let pairs = [(0.1, 0.4), (0.3, 0.5), (0.2, 0.9), (0.0, 1.0), (0.6, 0.6)];
        let mut full = Ugf::new(None);
        let mut trunc = Ugf::new(Some(2));
        for &(l, u) in &pairs {
            full.multiply(l, u);
            trunc.multiply(l, u);
        }
        for k in 0..2 {
            assert!(
                (full.lower_bound(k) - trunc.lower_bound(k)).abs() < 1e-12,
                "lower at {k}"
            );
            assert!(
                (full.upper_bound(k) - trunc.upper_bound(k)).abs() < 1e-12,
                "upper at {k}"
            );
        }
        let (flo, fhi) = full.cdf_bounds(2);
        let (tlo, thi) = trunc.cdf_bounds(2);
        assert!((flo - tlo).abs() < 1e-12);
        assert!((fhi - thi).abs() < 1e-12);
        assert!((trunc.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncated_state_is_bounded() {
        let mut f = Ugf::new(Some(3));
        for _ in 0..200 {
            f.multiply(0.2, 0.7);
        }
        // rows 0..=3, row i has at most 3 + 2 − i entries
        assert!(f.rows.len() <= 4);
        for (i, row) in f.rows.iter().enumerate() {
            assert!(row.len() <= 4 + 1 - i);
        }
        assert!((f.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "truncated at")]
    fn count_bounds_beyond_truncation_rejected() {
        let mut f = Ugf::new(Some(2));
        f.multiply(0.1, 0.5);
        let _ = f.count_bounds(3);
    }

    #[test]
    fn certain_domination_shifts_counts() {
        let mut f = Ugf::new(None);
        f.multiply(1.0, 1.0);
        f.multiply(1.0, 1.0);
        assert!((f.lower_bound(2) - 1.0).abs() < 1e-12);
        assert!((f.upper_bound(2) - 1.0).abs() < 1e-12);
        assert_eq!(f.lower_bound(0), 0.0);
        assert_eq!(f.upper_bound(1), 0.0);
    }

    proptest! {
        #[test]
        fn prop_total_mass_one(
            pairs in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 0..12)
        ) {
            let mut f = Ugf::new(None);
            for (a, b) in &pairs {
                f.multiply(a.min(*b), a.max(*b));
            }
            prop_assert!((f.total() - 1.0).abs() < 1e-9);
        }

        /// Soundness: for any instantiation of the true probabilities
        /// inside the per-variable bounds, the exact Poisson-binomial PDF
        /// lies inside the UGF bounds, and the exact CDF inside the CDF
        /// bounds.
        #[test]
        fn prop_ugf_brackets_exact(
            pairs in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..9),
            ts in proptest::collection::vec(0.0..1.0f64, 9),
        ) {
            let mut f = Ugf::new(None);
            let mut probs = Vec::new();
            for ((a, b), t) in pairs.iter().zip(ts.iter()) {
                let (lo, hi) = (a.min(*b), a.max(*b));
                f.multiply(lo, hi);
                probs.push(lo + t * (hi - lo));
            }
            let exact = poisson_binomial(&probs, None);
            for k in 0..exact.len() {
                prop_assert!(exact[k] >= f.lower_bound(k) - 1e-9,
                    "k={k} exact={} lb={}", exact[k], f.lower_bound(k));
                prop_assert!(exact[k] <= f.upper_bound(k) + 1e-9,
                    "k={k} exact={} ub={}", exact[k], f.upper_bound(k));
            }
            for k in 0..=exact.len() {
                let cdf: f64 = exact[..k].iter().sum();
                let (lo, hi) = f.cdf_bounds(k);
                prop_assert!(cdf >= lo - 1e-9);
                prop_assert!(cdf <= hi + 1e-9);
            }
        }

        /// The UGF per-k bounds are never looser than the two-regular-GF
        /// bounds (the technical-report claim the paper summarizes in
        /// §IV-D).
        #[test]
        fn prop_ugf_at_least_as_tight_as_two_gf(
            pairs in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..8)
        ) {
            let p_lb: Vec<f64> = pairs.iter().map(|(a, b)| a.min(*b)).collect();
            let p_ub: Vec<f64> = pairs.iter().map(|(a, b)| a.max(*b)).collect();
            let mut f = Ugf::new(None);
            for (l, u) in p_lb.iter().zip(p_ub.iter()) {
                f.multiply(*l, *u);
            }
            let two = crate::classic::two_gf_bounds(&p_lb, &p_ub);
            let ugf_b = f.count_bounds(p_lb.len() + 1);
            let ugf_unc = ugf_b.uncertainty();
            let two_unc = two.uncertainty();
            prop_assert!(ugf_unc <= two_unc + 1e-9,
                "UGF uncertainty {ugf_unc} vs two-GF {two_unc}");
        }

        #[test]
        fn prop_truncated_prefix_equivalence(
            pairs in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..10),
            k in 1usize..6,
        ) {
            let mut full = Ugf::new(None);
            let mut trunc = Ugf::new(Some(k));
            for (a, b) in &pairs {
                full.multiply(a.min(*b), a.max(*b));
                trunc.multiply(a.min(*b), a.max(*b));
            }
            for x in 0..k {
                prop_assert!((full.lower_bound(x) - trunc.lower_bound(x)).abs() < 1e-9);
                prop_assert!((full.upper_bound(x) - trunc.upper_bound(x)).abs() < 1e-9);
            }
            let (flo, fhi) = full.cdf_bounds(k);
            let (tlo, thi) = trunc.cdf_bounds(k);
            prop_assert!((flo - tlo).abs() < 1e-9);
            prop_assert!((fhi - thi).abs() < 1e-9);
        }
    }
}
