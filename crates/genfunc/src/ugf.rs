//! Uncertain Generating Functions (§IV-C/D — the paper's novel technique).
//!
//! For independent Bernoulli variables known only through probability
//! bounds `pLB_i ≤ P(X_i = 1) ≤ pUB_i`, the UGF
//!
//! ```text
//! F^N = Π_i ( pLB_i·x  +  (pUB_i − pLB_i)·y  +  (1 − pUB_i) )
//!     = Σ_{i,j} c_{i,j} x^i y^j
//! ```
//!
//! has coefficients with the semantics: *with probability `c_{i,j}` the sum
//! is certainly at least `i` and possibly up to `i + j`*. Hence
//!
//! * `P(Σ = k) ≥ c_{k,0}` (Lemma 4, lower bound),
//! * `P(Σ = k) ≤ Σ_{i ≤ k, i+j ≥ k} c_{i,j}` (Lemma 4, upper bound),
//! * `P(Σ < k) ∈ [ Σ_{i+j < k} c_{i,j}, Σ_{i < k} c_{i,j} ]` — the direct
//!   CDF bounds used by threshold predicates (tighter than differencing
//!   the per-`k` bounds).
//!
//! (The displayed formula in the paper's §IV-C swaps the `y` and constant
//! terms; Example 3's expansion `0.12x² + 0.34x + 0.22xy + …` confirms the
//! §IV-D Equation (1) convention implemented here.)
//!
//! With `truncate_at = Some(k)` the paper's §VI optimization applies: all
//! coefficients with the same `i` and `i + j > k` are merged, and certain
//! counts beyond `k` are absorbed into row `k`, bounding the state to
//! `O(k²)` and the total cost to `O(k²·N)` instead of `O(N³)`.
//!
//! # Flat memory layout
//!
//! This is the IDCA hot path — one UGF product per partition pair, with
//! up to thousands of pairs per refinement snapshot — so the coefficient
//! triangle lives in a **single flat arena** instead of nested rows:
//!
//! ```text
//! buf = [ c_{0,0} … c_{0,L₀−1} | c_{1,0} … c_{1,L₀−2} | … | c_{rows−1,0} … ]
//! ```
//!
//! where `L₀ = min(conv + 1, k + 2)` is the length of row 0, row `i` holds
//! `L₀ − i` entries, and `conv` counts the factors materialized in the
//! triangle. Row offsets follow in closed form
//! (`offset(i) = i·L₀ − i·(i−1)/2`), so no per-row pointers exist at all.
//!
//! [`Ugf::multiply`] convolves `buf` into a same-shaped `scratch` buffer
//! and swaps the two — after the buffers have grown to the final state
//! size (or after a [`Ugf::reset`] reuse), **no allocation happens per
//! factor**. Decided factors take fast paths that skip the convolution
//! entirely:
//!
//! * `[0, 0]` (certain non-domination) multiplies by the constant 1 —
//!   a no-op on the triangle;
//! * `[1, 1]` (certain domination, untruncated) is a pure `x`-shift —
//!   tracked as the O(1) counter `shift` and applied lazily in every
//!   accessor (`c_{i,j}` logically lives at row `i + shift`). Under
//!   truncation the shift must merge mass into the cap row, which the
//!   regular convolution path already does without multiplications.
//!
//! The nested reference implementation lives in
//! [`crate::reference::NestedUgf`]; property tests assert agreement to
//! ≤ 1e-12.

use crate::bounds::CountDistributionBounds;

/// An incrementally built uncertain generating function over a flat
/// coefficient arena.
///
/// ```
/// use udb_genfunc::Ugf;
///
/// // Example 3 of the paper: bounds [0.2, 0.5] and [0.6, 0.8]
/// let mut f = Ugf::new(None);
/// f.multiply(0.2, 0.5);
/// f.multiply(0.6, 0.8);
/// // P(Σ = 2) ∈ [12 %, 40 %]
/// assert!((f.lower_bound(2) - 0.12).abs() < 1e-12);
/// assert!((f.upper_bound(2) - 0.40).abs() < 1e-12);
///
/// // reuse the arena for an unrelated product: no reallocation
/// f.reset(None);
/// f.multiply(0.5, 0.5);
/// assert!((f.upper_bound(1) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Ugf {
    /// Flat triangular coefficient arena (see the module docs).
    buf: Vec<f64>,
    /// Same-shaped double buffer for [`Ugf::multiply`], and scratch space
    /// for the one-pass bound accumulation.
    scratch: Vec<f64>,
    truncate_at: Option<usize>,
    /// Factors multiplied in total (including fast-path factors).
    factors: usize,
    /// Factors materialized in the triangle (excludes fast-path factors).
    conv: usize,
    /// Certain `[1, 1]` factors absorbed as an `x`-shift (untruncated
    /// mode only; under truncation such factors are materialized so their
    /// mass merges into the cap row).
    shift: usize,
}

impl Ugf {
    /// The empty product `F^0 = 1·x⁰y⁰`.
    pub fn new(truncate_at: Option<usize>) -> Self {
        Ugf {
            buf: vec![1.0],
            scratch: Vec::new(),
            truncate_at,
            factors: 0,
            conv: 0,
            shift: 0,
        }
    }

    /// Resets to the empty product `F^0`, keeping both buffers' capacity —
    /// the reuse API that lets one `Ugf` serve every partition pair of a
    /// refinement snapshot without allocating.
    pub fn reset(&mut self, truncate_at: Option<usize>) {
        self.buf.clear();
        self.buf.push(1.0);
        self.truncate_at = truncate_at;
        self.factors = 0;
        self.conv = 0;
        self.shift = 0;
    }

    /// Number of factors multiplied so far.
    pub fn factors(&self) -> usize {
        self.factors
    }

    /// Row count and row-0 length of the triangle for `conv` materialized
    /// factors.
    #[inline]
    fn geometry(&self, conv: usize) -> (usize, usize) {
        match self.truncate_at {
            Some(k) => (conv.min(k) + 1, (conv + 1).min(k + 2)),
            None => (conv + 1, conv + 1),
        }
    }

    /// Arena size of a triangle with `rows` rows of lengths `l0, l0-1, …`.
    #[inline]
    fn arena_size(rows: usize, l0: usize) -> usize {
        rows * l0 - rows * (rows - 1) / 2
    }

    /// Start of row `i` in a triangle with row-0 length `l0`.
    #[inline]
    fn offset(i: usize, l0: usize) -> usize {
        i * l0 - i * i.saturating_sub(1) / 2
    }

    /// Multiplies by `(p_lb·x + (p_ub − p_lb)·y + (1 − p_ub))`.
    ///
    /// Zero-allocation once `buf`/`scratch` have grown to the final state
    /// size; decided factors short-circuit (see the module docs).
    ///
    /// # Panics
    /// Panics (debug) unless `0 ≤ p_lb ≤ p_ub ≤ 1`.
    pub fn multiply(&mut self, p_lb: f64, p_ub: f64) {
        debug_assert!(
            (-1e-9..=1.0 + 1e-9).contains(&p_lb)
                && (-1e-9..=1.0 + 1e-9).contains(&p_ub)
                && p_lb <= p_ub + 1e-9,
            "invalid probability bounds [{p_lb}, {p_ub}]"
        );
        let p_lb = p_lb.clamp(0.0, 1.0);
        let p_ub = p_ub.clamp(p_lb, 1.0);
        self.factors += 1;

        // fast path: the factor is the constant 1 — nothing to convolve
        if p_ub == 0.0 {
            return;
        }
        // fast path: a certain factor is a pure x-shift; without
        // truncation that is a counter bump instead of a convolution
        if p_lb == 1.0 && self.truncate_at.is_none() {
            self.shift += 1;
            return;
        }

        let unknown = p_ub - p_lb;
        let zero = 1.0 - p_ub;

        let (old_rows, old_l0) = self.geometry(self.conv);
        self.conv += 1;
        let (new_rows, new_l0) = self.geometry(self.conv);
        self.scratch.clear();
        self.scratch.resize(Self::arena_size(new_rows, new_l0), 0.0);

        // Dense path: while the triangle is still growing (untruncated, or
        // conv ≤ k under truncation) the new geometry is exactly
        // (conv + 1, conv + 1) and no coefficient clamps into a cap row or
        // cap column. Every destination row is then three contiguous
        // streams — `x`-carry from the row above, `1`-stay and `y`-shift
        // from the old row — with no branches, so the inner loops
        // vectorize (see `convolve_row_dense`).
        if new_rows == self.conv + 1 && new_l0 == self.conv + 1 {
            let src = &self.buf[..];
            let dst = &mut self.scratch[..];
            let mut src_base = 0usize;
            let mut dst_base = 0usize;
            for i in 0..old_rows {
                let cur_len = old_l0 - i;
                let cur = &src[src_base..src_base + cur_len];
                // dst row i has cur_len + 1 slots
                let d = &mut dst[dst_base..dst_base + cur_len + 1];
                let prev = (i > 0).then(|| {
                    // src row i − 1, exactly as long as the dst row
                    &src[src_base - (cur_len + 1)..src_base]
                });
                convolve_row_dense(d, cur, prev, p_lb, zero, unknown);
                src_base += cur_len;
                dst_base += cur_len + 1;
            }
            // last dst row: pure x-carry of the last src row
            let last_src = &src[src_base - (old_l0 - old_rows + 1)..src_base];
            let d = &mut dst[dst_base..dst_base + last_src.len()];
            for (d, &p) in d.iter_mut().zip(last_src) {
                *d = p_lb * p;
            }
        } else {
            // Saturated truncated state (conv > k): rows/columns clamp
            // into the caps. The state is only O(k²) here, so the scalar
            // scatter loop stays.
            let next = &mut self.scratch[..];
            let mut add = |i: usize, j: usize, v: f64| {
                if v == 0.0 {
                    return;
                }
                let i = i.min(new_rows - 1);
                let len = new_l0 - i;
                let slot = Self::offset(i, new_l0) + j.min(len - 1);
                next[slot] += v;
            };
            let mut base = 0usize;
            for i in 0..old_rows {
                let len = old_l0 - i;
                for j in 0..len {
                    let c = self.buf[base + j];
                    if c == 0.0 {
                        continue;
                    }
                    add(i + 1, j, c * p_lb);
                    add(i, j + 1, c * unknown);
                    add(i, j, c * zero);
                }
                base += len;
            }
        }
        std::mem::swap(&mut self.buf, &mut self.scratch);
    }

    /// The coefficient `c_{i,j}` (0 outside the stored triangle).
    pub fn coefficient(&self, i: usize, j: usize) -> f64 {
        if i < self.shift {
            return 0.0;
        }
        let i = i - self.shift;
        let (rows, l0) = self.geometry(self.conv);
        if i >= rows || j >= l0 - i {
            return 0.0;
        }
        self.buf[Self::offset(i, l0) + j]
    }

    /// Total coefficient mass (always 1 up to rounding — the three factor
    /// terms partition the probability space).
    pub fn total(&self) -> f64 {
        self.buf.iter().sum()
    }

    /// Lemma 4 lower bound: `P(Σ = k) ≥ c_{k,0}`.
    pub fn lower_bound(&self, k: usize) -> f64 {
        self.coefficient(k, 0)
    }

    /// Lemma 4 upper bound: `P(Σ = k) ≤ Σ_{i ≤ k, i+j ≥ k} c_{i,j}`.
    pub fn upper_bound(&self, k: usize) -> f64 {
        if k < self.shift {
            return 0.0;
        }
        let k = k - self.shift;
        let (rows, l0) = self.geometry(self.conv);
        let mut sum = 0.0;
        for i in 0..rows.min(k + 1) {
            let base = Self::offset(i, l0);
            // j ≥ k − i contributes; smaller j cannot reach k
            for j in (k - i)..(l0 - i) {
                sum += self.buf[base + j];
            }
        }
        sum.min(1.0)
    }

    /// Per-`k` bounds for `k = 0..len` as a [`CountDistributionBounds`].
    ///
    /// With truncation `Some(t)`, `len` must satisfy `len ≤ t` (counts at
    /// and beyond the truncation point have been merged).
    pub fn count_bounds(&self, len: usize) -> CountDistributionBounds {
        if let Some(t) = self.truncate_at {
            assert!(
                len <= t,
                "cannot extract {len} counts from a UGF truncated at {t}"
            );
        }
        let mut bounds = CountDistributionBounds::zero(len);
        self.accumulate_bounds(&mut bounds, 1.0, &mut vec![0.0; len + 1]);
        bounds
    }

    /// Fused, allocation-free form of
    /// `agg.add_weighted(&self.count_bounds(agg.len()), weight)`: both
    /// bound vectors are accumulated in **one pass** over the arena
    /// (`O(state + len)`) instead of re-scanning the triangle per `k`
    /// (`O(state · len)`). This is the per-partition-pair aggregation of
    /// §IV-E on the refinement hot path.
    pub fn add_bounds_weighted(&mut self, agg: &mut CountDistributionBounds, weight: f64) {
        if let Some(t) = self.truncate_at {
            assert!(
                agg.len() <= t,
                "cannot extract {} counts from a UGF truncated at {t}",
                agg.len()
            );
        }
        let len = agg.len();
        // borrow dance: the scratch diff buffer and the arena are disjoint
        // fields, so take scratch out while accumulating
        let mut diff = std::mem::take(&mut self.scratch);
        diff.clear();
        diff.resize(len + 1, 0.0);
        self.accumulate_bounds(agg, weight, &mut diff);
        self.scratch = diff;
    }

    /// Shared one-pass accumulation core. `diff` must hold `len + 1`
    /// zeroed slots; on return it is dirty.
    ///
    /// Every stored coefficient `c_{i,j}` (at logical row `i + shift`)
    /// contributes to `upper_k` for exactly the contiguous range
    /// `k ∈ [i, i + j]`, so the upper bounds build from a difference
    /// array + prefix sum; the lower bounds are the `j = 0` column.
    fn accumulate_bounds(&self, agg: &mut CountDistributionBounds, weight: f64, diff: &mut [f64]) {
        let len = agg.len();
        let (rows, l0) = self.geometry(self.conv);
        let mut base = 0usize;
        for i in 0..rows {
            let row_len = l0 - i;
            let logical_i = i + self.shift;
            if logical_i < len {
                // c_{i,j} covers `upper_k` for k ∈ [logical_i, logical_i+j]:
                // one += of the row total at the range starts, a contiguous
                // vector subtract at the range ends, and the clamped tail
                // (ranges reaching past `len`) lumped into the sentinel.
                let row = &self.buf[base..base + row_len];
                let in_range = row_len.min(len - logical_i);
                let ends = &mut diff[logical_i + 1..logical_i + 1 + in_range];
                let mut head_sum = 0.0;
                for (d, &c) in ends.iter_mut().zip(&row[..in_range]) {
                    *d -= c;
                    head_sum += c;
                }
                let tail_sum: f64 = row[in_range..].iter().sum();
                diff[logical_i] += head_sum + tail_sum;
                diff[len] -= tail_sum;
            }
            base += row_len;
        }
        let (lower, upper) = agg.bounds_mut();
        let mut running = 0.0;
        for k in 0..len {
            running += diff[k];
            upper[k] += weight * running.min(1.0);
        }
        // lower lane: Lemma 4's `P(Σ = k) ≥ c_{k,0}` is the j = 0 column —
        // one strided pass over the row starts instead of a geometry
        // lookup per k
        let mut base = 0usize;
        for i in 0..rows {
            let logical_i = i + self.shift;
            if logical_i >= len {
                break;
            }
            lower[logical_i] += weight * self.buf[base];
            base += l0 - i;
        }
    }

    /// Direct bounds on the CDF `P(Σ < k)`:
    /// `[ Σ_{i+j ≤ k−1} c_{i,j}, Σ_{i ≤ k−1} c_{i,j} ]`.
    ///
    /// Valid for `k ≤ truncate_at` (merged coefficients all satisfy
    /// `i + j > truncate_at` or live in rows `≥ truncate_at`).
    pub fn cdf_bounds(&self, k: usize) -> (f64, f64) {
        if let Some(t) = self.truncate_at {
            assert!(
                k <= t,
                "cannot extract CDF at {k} from a UGF truncated at {t}"
            );
        }
        if k <= self.shift {
            return (0.0, 0.0);
        }
        let k = k - self.shift;
        let (rows, l0) = self.geometry(self.conv);
        let mut lo = 0.0;
        let mut hi = 0.0;
        let mut base = 0usize;
        for i in 0..rows.min(k) {
            let row_len = l0 - i;
            for j in 0..row_len {
                let c = self.buf[base + j];
                hi += c;
                if i + j < k {
                    lo += c;
                }
            }
            base += row_len;
        }
        (lo.clamp(0.0, 1.0), hi.clamp(0.0, 1.0))
    }

    /// Current arena length in coefficients (diagnostic; used by state
    /// bound tests and the allocation-count test).
    pub fn state_len(&self) -> usize {
        self.buf.len()
    }
}

/// Lane width of the chunked convolution/accumulation kernels: four f64
/// fit one AVX2 register, and LLVM unrolls the fixed-width chunk body
/// into straight-line SIMD.
const LANES: usize = 4;

/// One dense destination row of the UGF convolution:
///
/// ```text
/// d[0]         = zero·cur[0]                         (+ p_lb·prev[0])
/// d[j]         = zero·cur[j] + unknown·cur[j−1]      (+ p_lb·prev[j])
/// d[cur_len]   =              unknown·cur[cur_len−1] (+ p_lb·prev[cur_len])
/// ```
///
/// `cur` is the same-index source row (the `1`-stay and `y`-shift
/// streams), `prev` the row above (the `x`-carry stream, exactly
/// `cur.len() + 1` long, `None` for row 0). All three streams are
/// contiguous and branch-free, so the chunked interior loop autovectorizes.
#[inline]
fn convolve_row_dense(
    d: &mut [f64],
    cur: &[f64],
    prev: Option<&[f64]>,
    p_lb: f64,
    zero: f64,
    unknown: f64,
) {
    let n = cur.len();
    debug_assert_eq!(d.len(), n + 1);
    match prev {
        Some(prev) => {
            debug_assert_eq!(prev.len(), n + 1);
            d[0] = zero * cur[0] + p_lb * prev[0];
            let (dm, pm, cm, cl) = (&mut d[1..n], &prev[1..n], &cur[1..n], &cur[..n - 1]);
            let mut chunks = dm
                .chunks_exact_mut(LANES)
                .zip(pm.chunks_exact(LANES))
                .zip(cm.chunks_exact(LANES))
                .zip(cl.chunks_exact(LANES));
            for (((d, p), c), l) in chunks.by_ref() {
                for t in 0..LANES {
                    d[t] = p_lb * p[t] + zero * c[t] + unknown * l[t];
                }
            }
            let done = (n - 1) / LANES * LANES;
            for t in done..n - 1 {
                dm[t] = p_lb * pm[t] + zero * cm[t] + unknown * cl[t];
            }
            d[n] = p_lb * prev[n] + unknown * cur[n - 1];
        }
        None => {
            d[0] = zero * cur[0];
            let (dm, cm, cl) = (&mut d[1..n], &cur[1..n], &cur[..n - 1]);
            for t in 0..n - 1 {
                dm[t] = zero * cm[t] + unknown * cl[t];
            }
            d[n] = unknown * cur[n - 1];
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::classic::ClassicGf;
    use crate::poisson::poisson_binomial;
    use crate::reference::NestedUgf;
    use proptest::prelude::*;

    /// Example 3 of the paper: two variables with bounds
    /// `[0.2, 0.5]` and `[0.6, 0.8]`.
    fn example3() -> Ugf {
        let mut f = Ugf::new(None);
        f.multiply(0.2, 0.5);
        f.multiply(0.6, 0.8);
        f
    }

    #[test]
    fn paper_example3_coefficients() {
        let f = example3();
        // F2 = 0.12x² + 0.22xy + 0.34x + 0.06y² + 0.16y + 0.10
        assert!((f.coefficient(2, 0) - 0.12).abs() < 1e-12);
        assert!((f.coefficient(1, 1) - 0.22).abs() < 1e-12);
        assert!((f.coefficient(1, 0) - 0.34).abs() < 1e-12);
        assert!((f.coefficient(0, 2) - 0.06).abs() < 1e-12);
        assert!((f.coefficient(0, 1) - 0.16).abs() < 1e-12);
        assert!((f.coefficient(0, 0) - 0.10).abs() < 1e-12);
        assert!((f.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_example3_bounds() {
        let f = example3();
        // P(Σ = 2) ∈ [12%, 40%]
        assert!((f.lower_bound(2) - 0.12).abs() < 1e-12);
        assert!((f.upper_bound(2) - 0.40).abs() < 1e-12);
        // P(Σ = 1) ∈ [34%, 78%]
        assert!((f.lower_bound(1) - 0.34).abs() < 1e-12);
        assert!((f.upper_bound(1) - 0.78).abs() < 1e-12);
        // P(Σ = 0) ∈ [10%, 32%]
        assert!((f.lower_bound(0) - 0.10).abs() < 1e-12);
        assert!((f.upper_bound(0) - 0.32).abs() < 1e-12);
    }

    #[test]
    fn paper_example3_count_bounds_struct() {
        let b = example3().count_bounds(3);
        for (got, want) in b.lower_slice().iter().zip([0.10, 0.34, 0.12]) {
            assert!((got - want).abs() < 1e-12);
        }
        assert!((b.upper(0) - 0.32).abs() < 1e-12);
        assert!((b.upper(1) - 0.78).abs() < 1e-12);
        assert!((b.upper(2) - 0.40).abs() < 1e-12);
    }

    #[test]
    fn cdf_bounds_direct() {
        let f = example3();
        // P(Σ < 2): lower = c00 + c10 + c01 = 0.60, upper = rows 0..=1 = 0.88
        let (lo, hi) = f.cdf_bounds(2);
        assert!((lo - 0.60).abs() < 1e-12);
        assert!((hi - 0.88).abs() < 1e-12);
        // P(Σ < 0) is empty
        assert_eq!(f.cdf_bounds(0), (0.0, 0.0));
    }

    #[test]
    fn tight_probabilities_reduce_to_classic_gf() {
        let probs = [0.2, 0.1, 0.3];
        let mut ugf = Ugf::new(None);
        let mut gf = ClassicGf::new(None);
        for &p in &probs {
            ugf.multiply(p, p);
            gf.multiply(p);
        }
        for k in 0..=probs.len() {
            assert!((ugf.lower_bound(k) - gf.coefficient(k)).abs() < 1e-12);
            assert!((ugf.upper_bound(k) - gf.coefficient(k)).abs() < 1e-12);
        }
    }

    #[test]
    fn truncation_matches_full_for_small_counts() {
        let pairs = [(0.1, 0.4), (0.3, 0.5), (0.2, 0.9), (0.0, 1.0), (0.6, 0.6)];
        let mut full = Ugf::new(None);
        let mut trunc = Ugf::new(Some(2));
        for &(l, u) in &pairs {
            full.multiply(l, u);
            trunc.multiply(l, u);
        }
        for k in 0..2 {
            assert!(
                (full.lower_bound(k) - trunc.lower_bound(k)).abs() < 1e-12,
                "lower at {k}"
            );
            assert!(
                (full.upper_bound(k) - trunc.upper_bound(k)).abs() < 1e-12,
                "upper at {k}"
            );
        }
        let (flo, fhi) = full.cdf_bounds(2);
        let (tlo, thi) = trunc.cdf_bounds(2);
        assert!((flo - tlo).abs() < 1e-12);
        assert!((fhi - thi).abs() < 1e-12);
        assert!((trunc.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncated_state_is_bounded() {
        let mut f = Ugf::new(Some(3));
        for _ in 0..200 {
            f.multiply(0.2, 0.7);
        }
        // rows 0..=3 of lengths 5, 4, 3, 2 — the arena never exceeds the
        // O(k²) truncated state
        assert!(f.state_len() <= 5 + 4 + 3 + 2, "state {}", f.state_len());
        assert!((f.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "truncated at")]
    fn count_bounds_beyond_truncation_rejected() {
        let mut f = Ugf::new(Some(2));
        f.multiply(0.1, 0.5);
        let _ = f.count_bounds(3);
    }

    #[test]
    fn certain_domination_shifts_counts() {
        let mut f = Ugf::new(None);
        f.multiply(1.0, 1.0);
        f.multiply(1.0, 1.0);
        assert!((f.lower_bound(2) - 1.0).abs() < 1e-12);
        assert!((f.upper_bound(2) - 1.0).abs() < 1e-12);
        assert_eq!(f.lower_bound(0), 0.0);
        assert_eq!(f.upper_bound(1), 0.0);
        // the fast path kept the arena at the empty product
        assert_eq!(f.state_len(), 1);
        assert_eq!(f.factors(), 2);
    }

    #[test]
    fn decided_factors_mix_with_undecided() {
        // shift counter + convolved factors must compose
        let mut f = Ugf::new(None);
        f.multiply(1.0, 1.0);
        f.multiply(0.2, 0.5);
        f.multiply(0.0, 0.0);
        f.multiply(1.0, 1.0);
        let mut reference = NestedUgf::new(None);
        reference.multiply(1.0, 1.0);
        reference.multiply(0.2, 0.5);
        reference.multiply(0.0, 0.0);
        reference.multiply(1.0, 1.0);
        for k in 0..6 {
            assert!(
                (f.lower_bound(k) - reference.lower_bound(k)).abs() < 1e-12,
                "k={k}"
            );
            assert!(
                (f.upper_bound(k) - reference.upper_bound(k)).abs() < 1e-12,
                "k={k}"
            );
            let (flo, fhi) = f.cdf_bounds(k);
            let (rlo, rhi) = reference.cdf_bounds(k);
            assert!(
                (flo - rlo).abs() < 1e-12 && (fhi - rhi).abs() < 1e-12,
                "k={k}"
            );
        }
    }

    #[test]
    fn reset_reuses_capacity_and_clears_state() {
        let mut f = Ugf::new(None);
        for _ in 0..6 {
            f.multiply(0.3, 0.6);
        }
        f.reset(Some(2));
        assert_eq!(f.factors(), 0);
        assert_eq!(f.state_len(), 1);
        assert!((f.total() - 1.0).abs() < 1e-12);
        f.multiply(0.2, 0.5);
        f.multiply(0.6, 0.8);
        // behaves exactly like a fresh truncated UGF
        let mut fresh = Ugf::new(Some(2));
        fresh.multiply(0.2, 0.5);
        fresh.multiply(0.6, 0.8);
        for k in 0..2 {
            assert_eq!(f.lower_bound(k), fresh.lower_bound(k));
            assert_eq!(f.upper_bound(k), fresh.upper_bound(k));
        }
    }

    /// Strategy for factor sequences mixing undecided, decided-one and
    /// decided-zero bounds.
    fn arb_factors() -> impl Strategy<Value = Vec<(f64, f64)>> {
        proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64, 0..5u8), 0..12).prop_map(|raw| {
            raw.into_iter()
                .map(|(a, b, kind)| match kind {
                    0 => (0.0, 0.0),
                    1 => (1.0, 1.0),
                    _ => (a.min(b), a.max(b)),
                })
                .collect()
        })
    }

    proptest! {
        #[test]
        fn prop_total_mass_one(
            pairs in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 0..12)
        ) {
            let mut f = Ugf::new(None);
            for (a, b) in &pairs {
                f.multiply(a.min(*b), a.max(*b));
            }
            prop_assert!((f.total() - 1.0).abs() < 1e-9);
        }

        /// The flat arena agrees with the nested reference implementation
        /// on every query, untruncated.
        #[test]
        fn prop_flat_matches_nested_reference(pairs in arb_factors()) {
            let mut flat = Ugf::new(None);
            let mut nested = NestedUgf::new(None);
            for &(l, u) in &pairs {
                flat.multiply(l, u);
                nested.multiply(l, u);
            }
            prop_assert!((flat.total() - nested.total()).abs() < 1e-12);
            for k in 0..=pairs.len() + 1 {
                prop_assert!(
                    (flat.lower_bound(k) - nested.lower_bound(k)).abs() < 1e-12,
                    "lower k={k}: {} vs {}", flat.lower_bound(k), nested.lower_bound(k)
                );
                prop_assert!(
                    (flat.upper_bound(k) - nested.upper_bound(k)).abs() < 1e-12,
                    "upper k={k}: {} vs {}", flat.upper_bound(k), nested.upper_bound(k)
                );
                let (flo, fhi) = flat.cdf_bounds(k);
                let (nlo, nhi) = nested.cdf_bounds(k);
                prop_assert!((flo - nlo).abs() < 1e-12, "cdf lo k={k}");
                prop_assert!((fhi - nhi).abs() < 1e-12, "cdf hi k={k}");
            }
            for i in 0..=pairs.len() {
                for j in 0..=pairs.len() {
                    prop_assert!(
                        (flat.coefficient(i, j) - nested.coefficient(i, j)).abs() < 1e-12,
                        "c({i},{j})"
                    );
                }
            }
        }

        /// Same agreement under truncation, including the one-pass
        /// count-bound accumulation against the reference's per-k scans.
        #[test]
        fn prop_flat_matches_nested_reference_truncated(
            pairs in arb_factors(),
            t in 1usize..6,
        ) {
            let mut flat = Ugf::new(Some(t));
            let mut nested = NestedUgf::new(Some(t));
            for &(l, u) in &pairs {
                flat.multiply(l, u);
                nested.multiply(l, u);
            }
            let fb = flat.count_bounds(t);
            let nb = nested.count_bounds(t);
            for k in 0..t {
                prop_assert!((fb.lower(k) - nb.lower(k)).abs() < 1e-12, "lower k={k}");
                prop_assert!((fb.upper(k) - nb.upper(k)).abs() < 1e-12, "upper k={k}");
            }
            let (flo, fhi) = flat.cdf_bounds(t);
            let (nlo, nhi) = nested.cdf_bounds(t);
            prop_assert!((flo - nlo).abs() < 1e-12);
            prop_assert!((fhi - nhi).abs() < 1e-12);
        }

        /// With tight per-variable bounds (`p_lb == p_ub`) the UGF bounds
        /// collapse onto the exact Poisson-binomial PDF.
        #[test]
        fn prop_tight_bounds_equal_poisson_binomial(
            probs in proptest::collection::vec(0.0..1.0f64, 0..10)
        ) {
            let mut f = Ugf::new(None);
            for &p in &probs {
                f.multiply(p, p);
            }
            let exact = poisson_binomial(&probs, None);
            for k in 0..exact.len() {
                prop_assert!(
                    (f.lower_bound(k) - exact[k]).abs() < 1e-12,
                    "lower k={k}: {} vs {}", f.lower_bound(k), exact[k]
                );
                prop_assert!(
                    (f.upper_bound(k) - exact[k]).abs() < 1e-12,
                    "upper k={k}: {} vs {}", f.upper_bound(k), exact[k]
                );
            }
        }

        /// The fused accumulation matches add_weighted over count_bounds.
        #[test]
        fn prop_add_bounds_weighted_matches_two_pass(
            pairs in arb_factors(),
            w in 0.0..1.0f64,
        ) {
            let mut f = Ugf::new(None);
            for &(l, u) in &pairs {
                f.multiply(l, u);
            }
            let len = pairs.len() + 1;
            let mut fused = CountDistributionBounds::zero(len);
            f.add_bounds_weighted(&mut fused, w);
            let mut two_pass = CountDistributionBounds::zero(len);
            two_pass.add_weighted(&f.count_bounds(len), w);
            for k in 0..len {
                prop_assert!((fused.lower(k) - two_pass.lower(k)).abs() < 1e-12);
                prop_assert!((fused.upper(k) - two_pass.upper(k)).abs() < 1e-12);
            }
        }

        /// Soundness: for any instantiation of the true probabilities
        /// inside the per-variable bounds, the exact Poisson-binomial PDF
        /// lies inside the UGF bounds, and the exact CDF inside the CDF
        /// bounds.
        #[test]
        fn prop_ugf_brackets_exact(
            pairs in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..9),
            ts in proptest::collection::vec(0.0..1.0f64, 9),
        ) {
            let mut f = Ugf::new(None);
            let mut probs = Vec::new();
            for ((a, b), t) in pairs.iter().zip(ts.iter()) {
                let (lo, hi) = (a.min(*b), a.max(*b));
                f.multiply(lo, hi);
                probs.push(lo + t * (hi - lo));
            }
            let exact = poisson_binomial(&probs, None);
            for k in 0..exact.len() {
                prop_assert!(exact[k] >= f.lower_bound(k) - 1e-9,
                    "k={k} exact={} lb={}", exact[k], f.lower_bound(k));
                prop_assert!(exact[k] <= f.upper_bound(k) + 1e-9,
                    "k={k} exact={} ub={}", exact[k], f.upper_bound(k));
            }
            for k in 0..=exact.len() {
                let cdf: f64 = exact[..k].iter().sum();
                let (lo, hi) = f.cdf_bounds(k);
                prop_assert!(cdf >= lo - 1e-9);
                prop_assert!(cdf <= hi + 1e-9);
            }
        }

        /// The UGF per-k bounds are never looser than the two-regular-GF
        /// bounds (the technical-report claim the paper summarizes in
        /// §IV-D).
        #[test]
        fn prop_ugf_at_least_as_tight_as_two_gf(
            pairs in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..8)
        ) {
            let p_lb: Vec<f64> = pairs.iter().map(|(a, b)| a.min(*b)).collect();
            let p_ub: Vec<f64> = pairs.iter().map(|(a, b)| a.max(*b)).collect();
            let mut f = Ugf::new(None);
            for (l, u) in p_lb.iter().zip(p_ub.iter()) {
                f.multiply(*l, *u);
            }
            let two = crate::classic::two_gf_bounds(&p_lb, &p_ub);
            let ugf_b = f.count_bounds(p_lb.len() + 1);
            let ugf_unc = ugf_b.uncertainty();
            let two_unc = two.uncertainty();
            prop_assert!(ugf_unc <= two_unc + 1e-9,
                "UGF uncertainty {ugf_unc} vs two-GF {two_unc}");
        }

        /// Long factor streams (rows far wider than one SIMD chunk) agree
        /// with the nested oracle on every bound and CDF query — the
        /// dense chunked kernel's interior, remainder and boundary lanes
        /// all get exercised, including decided factors riding along.
        #[test]
        fn prop_long_streams_match_reference(
            pairs in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64, 0..8u8), 16..40)
        ) {
            let pairs: Vec<(f64, f64)> = pairs
                .into_iter()
                .map(|(a, b, kind)| match kind {
                    0 => (0.0, 0.0),
                    1 => (1.0, 1.0),
                    _ => (a.min(b), a.max(b)),
                })
                .collect();
            let mut flat = Ugf::new(None);
            let mut nested = NestedUgf::new(None);
            for &(l, u) in &pairs {
                flat.multiply(l, u);
                nested.multiply(l, u);
            }
            for k in 0..=pairs.len() {
                prop_assert!((flat.lower_bound(k) - nested.lower_bound(k)).abs() < 1e-12);
                prop_assert!((flat.upper_bound(k) - nested.upper_bound(k)).abs() < 1e-12);
                let (flo, fhi) = flat.cdf_bounds(k);
                let (nlo, nhi) = nested.cdf_bounds(k);
                prop_assert!((flo - nlo).abs() < 1e-12 && (fhi - nhi).abs() < 1e-12);
            }
            let len = pairs.len() + 1;
            let mut fused = CountDistributionBounds::zero(len);
            flat.add_bounds_weighted(&mut fused, 0.5);
            let nb = nested.count_bounds(len);
            for k in 0..len {
                prop_assert!((fused.lower(k) - 0.5 * nb.lower(k)).abs() < 1e-12);
                prop_assert!((fused.upper(k) - 0.5 * nb.upper(k)).abs() < 1e-12);
            }
        }

        /// The dense kernel hands over to the saturated scalar path when
        /// the factor count crosses the truncation point; the transition
        /// must be seamless against the oracle for every (stream, k).
        #[test]
        fn prop_dense_to_saturated_transition_matches_reference(
            pairs in arb_factors(),
            extra in proptest::collection::vec((0.01..0.99f64, 0.01..0.99f64), 4..16),
            t in 1usize..5,
        ) {
            let mut flat = Ugf::new(Some(t));
            let mut nested = NestedUgf::new(Some(t));
            for (l, u) in pairs.iter().copied().chain(
                extra.iter().map(|(a, b)| (a.min(*b), a.max(*b))),
            ) {
                flat.multiply(l, u);
                nested.multiply(l, u);
                // compare mid-stream too: the handover itself must agree
                let (flo, fhi) = flat.cdf_bounds(t);
                let (nlo, nhi) = nested.cdf_bounds(t);
                prop_assert!((flo - nlo).abs() < 1e-12 && (fhi - nhi).abs() < 1e-12);
            }
            let fb = flat.count_bounds(t);
            let nb = nested.count_bounds(t);
            for k in 0..t {
                prop_assert!((fb.lower(k) - nb.lower(k)).abs() < 1e-12);
                prop_assert!((fb.upper(k) - nb.upper(k)).abs() < 1e-12);
            }
        }

        /// The fused accumulation handles the lazy x-shift (certain
        /// factors absorbed as a counter): bounds equal the unshifted
        /// product's bounds shifted right, and match the oracle.
        #[test]
        fn prop_shifted_accumulation_matches_shift_right(
            pairs in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..10),
            shifts in 1usize..4,
        ) {
            let mut shifted = Ugf::new(None);
            let mut plain = Ugf::new(None);
            for _ in 0..shifts {
                shifted.multiply(1.0, 1.0);
            }
            for (a, b) in &pairs {
                shifted.multiply(a.min(*b), a.max(*b));
                plain.multiply(a.min(*b), a.max(*b));
            }
            assert_eq!(plain.state_len(), shifted.state_len(), "shift must stay lazy");
            let len = pairs.len() + shifts + 1;
            let mut via_shift = CountDistributionBounds::zero(len - shifts);
            plain.add_bounds_weighted(&mut via_shift, 1.0);
            via_shift.shift_right(shifts);
            let mut direct = CountDistributionBounds::zero(len);
            shifted.add_bounds_weighted(&mut direct, 1.0);
            for k in 0..len {
                prop_assert!((direct.lower(k) - via_shift.lower(k)).abs() < 1e-12);
                prop_assert!((direct.upper(k) - via_shift.upper(k)).abs() < 1e-12);
            }
        }

        #[test]
        fn prop_truncated_prefix_equivalence(
            pairs in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..10),
            k in 1usize..6,
        ) {
            let mut full = Ugf::new(None);
            let mut trunc = Ugf::new(Some(k));
            for (a, b) in &pairs {
                full.multiply(a.min(*b), a.max(*b));
                trunc.multiply(a.min(*b), a.max(*b));
            }
            for x in 0..k {
                prop_assert!((full.lower_bound(x) - trunc.lower_bound(x)).abs() < 1e-9);
                prop_assert!((full.upper_bound(x) - trunc.upper_bound(x)).abs() < 1e-9);
            }
            let (flo, fhi) = full.cdf_bounds(k);
            let (tlo, thi) = trunc.cdf_bounds(k);
            prop_assert!((flo - tlo).abs() < 1e-9);
            prop_assert!((fhi - thi).abs() < 1e-9);
        }
    }
}
