//! The [`ProbAlgebra`] abstraction and the O(n) min/max bound instance.
//!
//! The refiner consumes a candidate as a stream of per-influence
//! probability intervals `(p_lb, p_ub)` and needs bounds on the CDF
//! `P(Σ < k)` of the domination count. The exact algebra is the
//! uncertain generating function ([`Ugf`]): O(k) work per factor, O(k²)
//! state. This module abstracts that contract behind a trait so a *cheap*
//! algebra can run the same stream first and decide rounds where the
//! exact answer is not needed.
//!
//! [`MinMaxCdf`] is that cheap instance: O(1) amortised work per factor
//! (a size-`k` min-heap-style buffer plus two running reductions) and
//! O(k) state. It brackets the two *exact* endpoints the UGF would
//! return. The key identity making this sound: the UGF CDF bounds at `k`
//! are themselves exact Poisson-binomial CDFs of the endpoint streams,
//!
//! * `cdf_lo(k) = P(Σ_ub < k)` — every unknown resolved *up* (`y → x`),
//! * `cdf_hi(k) = P(Σ_lb < k)` — every unknown resolved *down* (`y → 1`),
//!
//! so bracketing `P(Σ < k)` for a Poisson binomial with known
//! probabilities `v_1..v_n` brackets the UGF output. Per stream, with
//! `S = Σ v_i` and `1 ≤ k ≤ n`:
//!
//! * **Lower bounds on `P(Σ < k)`**
//!   * Markov on `Σ`: `P(Σ ≥ k) ≤ S/k`, hence `P(Σ < k) ≥ 1 − S/k`.
//!   * Product: if every variable outside the `k−1` largest is 0 then
//!     `Σ ≤ k − 1`, hence `P(Σ < k) ≥ Π_{i ∉ top-(k−1)} (1 − v_i)`.
//! * **Upper bounds on `P(Σ < k)`**
//!   * Markov on the complement count: `P(Σ < k) = P(n − Σ ≥ n − k + 1)
//!     ≤ (n − S)/(n − k + 1)`.
//!   * Product: if the `k` largest are all 1 then `Σ ≥ k`, hence
//!     `P(Σ < k) ≤ 1 − Π_{top-k} v_i`.
//!
//! The edge cases are exact: `k = 0 ⇒ (0, 0)` and `n < k ⇒ (1, 1)`.
//!
//! The min/max-probability provenance semiring of scallop computes the
//! same O(n) top-k shape for `P(count ≥ k)`; this instance extends it to
//! a two-sided bracket of both UGF endpoints.

use crate::ugf::Ugf;

/// The probability-stream contract shared by the exact UGF and cheap
/// bounding algebras.
///
/// An implementation consumes one `(p_lb, p_ub)` factor per influence
/// object and answers CDF queries `P(Σ < k)` as a `(lower, upper)` pair
/// that contains the true interval. The exact [`Ugf`] returns the
/// tightest bounds derivable from the intervals (Lemma 4 of the paper);
/// [`MinMaxCdf`] returns a looser superset in O(n) total work.
pub trait ProbAlgebra {
    /// Clears all accumulated factors; `truncate_at` bounds the largest
    /// `k` that will be queried (must be `Some` for bounded-state
    /// algebras).
    fn reset(&mut self, truncate_at: Option<usize>);

    /// Multiplies in one factor with probability interval `[p_lb, p_ub]`.
    fn multiply(&mut self, p_lb: f64, p_ub: f64);

    /// Number of factors multiplied since the last reset.
    fn factors(&self) -> usize;

    /// `(lower, upper)` bounds on the CDF `P(Σ < k)`.
    fn cdf_bounds(&self, k: usize) -> (f64, f64);
}

impl ProbAlgebra for Ugf {
    fn reset(&mut self, truncate_at: Option<usize>) {
        Ugf::reset(self, truncate_at);
    }

    fn multiply(&mut self, p_lb: f64, p_ub: f64) {
        Ugf::multiply(self, p_lb, p_ub);
    }

    fn factors(&self) -> usize {
        Ugf::factors(self)
    }

    fn cdf_bounds(&self, k: usize) -> (f64, f64) {
        Ugf::cdf_bounds(self, k)
    }
}

/// One endpoint stream (all `p_lb` or all `p_ub`): the running sum, the
/// `cap` largest values (sorted ascending), and the complement product
/// of everything evicted from that buffer.
#[derive(Debug, Clone)]
struct Envelope {
    sum: f64,
    /// The `min(n, cap)` largest values seen, sorted ascending.
    top: Vec<f64>,
    /// `Π (1 − v)` over every value *not* retained in `top`.
    evicted_comp: f64,
}

impl Envelope {
    fn new(cap: usize) -> Self {
        Envelope {
            sum: 0.0,
            top: Vec::with_capacity(cap),
            evicted_comp: 1.0,
        }
    }

    fn clear(&mut self) {
        self.sum = 0.0;
        self.top.clear();
        self.evicted_comp = 1.0;
    }

    fn push(&mut self, v: f64, cap: usize) {
        self.sum += v;
        if cap == 0 {
            self.evicted_comp *= 1.0 - v;
            return;
        }
        if self.top.len() == cap {
            if v <= self.top[0] {
                self.evicted_comp *= 1.0 - v;
                return;
            }
            self.evicted_comp *= 1.0 - self.top[0];
            self.top.remove(0);
        }
        let at = self.top.partition_point(|&t| t < v);
        self.top.insert(at, v);
    }

    /// Brackets `P(Σ < k)` for the Poisson binomial over the pushed
    /// values (`n` of them). Requires `k ≤ cap` so the top-`k` values
    /// are all retained.
    fn bracket(&self, k: usize, n: usize) -> (f64, f64) {
        if k == 0 {
            return (0.0, 0.0);
        }
        if n < k {
            return (1.0, 1.0);
        }
        let top = &self.top;
        debug_assert!(
            top.len() >= k,
            "query k={k} exceeds retained top-{}",
            top.len()
        );
        let mut top_prod = 1.0;
        for &v in &top[top.len() - k..] {
            top_prod *= v;
        }
        let mut out_comp = self.evicted_comp;
        for &v in &top[..top.len() - (k - 1)] {
            out_comp *= 1.0 - v;
        }
        let lower = (1.0 - self.sum / k as f64).max(out_comp).max(0.0);
        let markov_hi = (n as f64 - self.sum) / (n - k + 1) as f64;
        let upper = markov_hi.min(1.0 - top_prod).min(1.0);
        (lower, upper)
    }
}

/// O(n) min/max bracket of the exact UGF CDF bounds (see module docs).
///
/// Tracks both endpoint streams of the factor intervals. For a query
/// `k`, [`MinMaxCdf::cdf_brackets`] returns an interval around *each*
/// exact UGF endpoint; the [`ProbAlgebra::cdf_bounds`] impl returns the
/// outer hull (guaranteed to contain the exact `(lo, hi)` pair).
#[derive(Debug, Clone)]
pub struct MinMaxCdf {
    /// Largest `k` that may be queried (buffer capacity per stream).
    cap: usize,
    n: usize,
    ones_lb: usize,
    lb: Envelope,
    ub: Envelope,
}

impl MinMaxCdf {
    /// A fresh bracket algebra; `truncate_at` must be `Some(cap)` with
    /// `cap` at least the largest `k` that will be queried.
    pub fn new(truncate_at: Option<usize>) -> Self {
        let cap = truncate_at.expect("MinMaxCdf requires a truncation point");
        MinMaxCdf {
            cap,
            n: 0,
            ones_lb: 0,
            lb: Envelope::new(cap),
            ub: Envelope::new(cap),
        }
    }

    /// Number of factors whose scaled `p_lb` is exactly `1.0` — i.e.
    /// influences that *certainly* dominate. Used by the top-m driver to
    /// drop candidates whose exact predicate probability is exactly 0.
    pub fn ones_lb(&self) -> usize {
        self.ones_lb
    }

    /// Brackets around both exact UGF endpoints at `k`:
    /// `((lo_lo, lo_hi), (hi_lo, hi_hi))` with
    /// `lo_lo ≤ cdf_lo(k) ≤ lo_hi` and `hi_lo ≤ cdf_hi(k) ≤ hi_hi`
    /// (up to float rounding — callers guard decisions with a margin).
    pub fn cdf_brackets(&self, k: usize) -> ((f64, f64), (f64, f64)) {
        assert!(k <= self.cap, "query k={k} exceeds capacity {}", self.cap);
        // cdf_lo is the Poisson-binomial CDF of the *upper* endpoints,
        // cdf_hi that of the *lower* endpoints.
        (self.ub.bracket(k, self.n), self.lb.bracket(k, self.n))
    }
}

impl ProbAlgebra for MinMaxCdf {
    fn reset(&mut self, truncate_at: Option<usize>) {
        let cap = truncate_at.expect("MinMaxCdf requires a truncation point");
        if cap > self.cap {
            self.lb.top.reserve(cap - self.lb.top.capacity().min(cap));
            self.ub.top.reserve(cap - self.ub.top.capacity().min(cap));
        }
        self.cap = cap;
        self.n = 0;
        self.ones_lb = 0;
        self.lb.clear();
        self.ub.clear();
    }

    fn multiply(&mut self, p_lb: f64, p_ub: f64) {
        debug_assert!(
            (-1e-9..=1.0 + 1e-9).contains(&p_lb)
                && (-1e-9..=1.0 + 1e-9).contains(&p_ub)
                && p_lb <= p_ub + 1e-9,
            "invalid probability bounds [{p_lb}, {p_ub}]"
        );
        let p_lb = p_lb.clamp(0.0, 1.0);
        let p_ub = p_ub.clamp(p_lb, 1.0);
        self.n += 1;
        if p_lb == 1.0 {
            self.ones_lb += 1;
        }
        self.lb.push(p_lb, self.cap);
        self.ub.push(p_ub, self.cap);
    }

    fn factors(&self) -> usize {
        self.n
    }

    fn cdf_bounds(&self, k: usize) -> (f64, f64) {
        let ((lo_lo, _), (_, hi_hi)) = self.cdf_brackets(k);
        (lo_lo, hi_hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn stream_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
        proptest::collection::vec(
            (0.0f64..=1.0, 0.0f64..=1.0).prop_map(|(a, b)| if a <= b { (a, b) } else { (b, a) }),
            1..24,
        )
    }

    proptest! {
        /// The min/max brackets always contain the exact UGF CDF bounds,
        /// and the inner edges are on the correct side of each endpoint.
        #[test]
        fn brackets_contain_exact_ugf_bounds(
            stream in stream_strategy(),
            k in 0usize..12,
        ) {
            let cap = k.max(1);
            let mut exact = Ugf::new(Some(cap));
            let mut cheap = MinMaxCdf::new(Some(cap));
            for &(l, u) in &stream {
                ProbAlgebra::multiply(&mut exact, l, u);
                cheap.multiply(l, u);
            }
            let (elo, ehi) = ProbAlgebra::cdf_bounds(&exact, k);
            let ((lo_lo, lo_hi), (hi_lo, hi_hi)) = cheap.cdf_brackets(k);
            prop_assert!(lo_lo <= elo + 1e-12, "lo_lo {lo_lo} > exact lo {elo}");
            prop_assert!(lo_hi >= elo - 1e-12, "lo_hi {lo_hi} < exact lo {elo}");
            prop_assert!(hi_lo <= ehi + 1e-12, "hi_lo {hi_lo} > exact hi {ehi}");
            prop_assert!(hi_hi >= ehi - 1e-12, "hi_hi {hi_hi} < exact hi {ehi}");
            let (clo, chi) = cheap.cdf_bounds(k);
            prop_assert!(clo <= elo + 1e-12 && chi >= ehi - 1e-12);
        }

        /// With tight factors (p_lb == p_ub) both exact endpoints agree
        /// and every bracket surrounds that single CDF value.
        #[test]
        fn tight_streams_bracket_the_true_cdf(
            probs in proptest::collection::vec(0.0f64..=1.0, 1..20),
            k in 1usize..10,
        ) {
            let mut exact = Ugf::new(Some(k));
            let mut cheap = MinMaxCdf::new(Some(k));
            for &p in &probs {
                ProbAlgebra::multiply(&mut exact, p, p);
                cheap.multiply(p, p);
            }
            let (elo, ehi) = ProbAlgebra::cdf_bounds(&exact, k);
            prop_assert!((elo - ehi).abs() < 1e-12);
            let ((lo_lo, lo_hi), (hi_lo, hi_hi)) = cheap.cdf_brackets(k);
            prop_assert!(lo_lo <= elo + 1e-12 && lo_hi >= elo - 1e-12);
            prop_assert!(hi_lo <= ehi + 1e-12 && hi_hi >= ehi - 1e-12);
        }
    }

    #[test]
    fn edge_cases_are_exact() {
        let mut cheap = MinMaxCdf::new(Some(3));
        cheap.multiply(0.2, 0.5);
        // k = 0: P(Σ < 0) is the empty event on both streams.
        assert_eq!(cheap.cdf_brackets(0), ((0.0, 0.0), (0.0, 0.0)));
        // n < k: P(Σ < k) = 1 exactly.
        assert_eq!(cheap.cdf_brackets(2), ((1.0, 1.0), (1.0, 1.0)));
    }

    #[test]
    fn ones_lb_counts_certain_factors() {
        let mut cheap = MinMaxCdf::new(Some(2));
        cheap.multiply(1.0, 1.0);
        cheap.multiply(0.3, 1.0);
        cheap.multiply(1.0, 1.0);
        assert_eq!(cheap.ones_lb(), 2);
        ProbAlgebra::reset(&mut cheap, Some(2));
        assert_eq!(cheap.ones_lb(), 0);
        assert_eq!(ProbAlgebra::factors(&cheap), 0);
    }

    #[test]
    fn reset_can_grow_capacity() {
        let mut cheap = MinMaxCdf::new(Some(1));
        cheap.multiply(0.9, 0.9);
        ProbAlgebra::reset(&mut cheap, Some(4));
        for _ in 0..6 {
            cheap.multiply(0.5, 0.7);
        }
        let ((lo_lo, _), (_, hi_hi)) = cheap.cdf_brackets(4);
        let mut exact = Ugf::new(Some(4));
        for _ in 0..6 {
            ProbAlgebra::multiply(&mut exact, 0.5, 0.7);
        }
        let (elo, ehi) = ProbAlgebra::cdf_bounds(&exact, 4);
        assert!(lo_lo <= elo + 1e-12 && hi_hi >= ehi - 1e-12);
    }
}
