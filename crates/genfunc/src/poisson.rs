//! Poisson-binomial recurrence.
//!
//! The exact distribution of `Σ X_i` for independent Bernoulli variables
//! with success probabilities `p_i`. Referenced by the paper (§IV-C) as
//! the `O(N)`-per-step / `O(N²)`-total dynamic program; the Monte-Carlo
//! baseline uses it with exact per-sample probabilities.

/// Computes `P(Σ X_i = k)` for `k = 0..=n` from success probabilities
/// `probs` (each in `[0, 1]`).
///
/// With `truncate_at = Some(k)`, only `P(Σ = 0..k)` are maintained
/// (`O(k·N)` instead of `O(N²)`); the returned vector then has length
/// `min(k, n + 1)` and omits the probability mass at counts `≥ k`.
pub fn poisson_binomial(probs: &[f64], truncate_at: Option<usize>) -> Vec<f64> {
    debug_assert!(
        probs.iter().all(|p| (-1e-9..=1.0 + 1e-9).contains(p)),
        "probabilities must be in [0, 1]"
    );
    let full_len = probs.len() + 1;
    let keep = truncate_at.map_or(full_len, |k| k.min(full_len));
    if keep == 0 {
        return Vec::new();
    }
    // dist[k] = P(sum of processed variables = k)
    let mut dist = Vec::with_capacity(keep);
    dist.push(1.0f64);
    for (processed, &p) in probs.iter().enumerate() {
        let p = p.clamp(0.0, 1.0);
        let q = 1.0 - p;
        let cur_len = dist.len();
        let new_len = (processed + 2).min(keep);
        if new_len > cur_len {
            dist.push(0.0);
        }
        // in-place back-to-front update: dist[k] = q·dist[k] + p·dist[k−1]
        for k in (0..dist.len()).rev() {
            let from_below = if k > 0 { p * dist[k - 1] } else { 0.0 };
            dist[k] = q * dist[k] + from_below;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Brute-force oracle: enumerate all 2^n worlds.
    fn brute_force(probs: &[f64]) -> Vec<f64> {
        let n = probs.len();
        let mut dist = vec![0.0; n + 1];
        for mask in 0u32..(1 << n) {
            let mut p = 1.0;
            let mut ones = 0;
            for (i, &pi) in probs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    p *= pi;
                    ones += 1;
                } else {
                    p *= 1.0 - pi;
                }
            }
            dist[ones] += p;
        }
        dist
    }

    #[test]
    fn empty_input_is_point_mass_at_zero() {
        assert_eq!(poisson_binomial(&[], None), vec![1.0]);
    }

    #[test]
    fn single_variable() {
        let d = poisson_binomial(&[0.3], None);
        assert!((d[0] - 0.7).abs() < 1e-12);
        assert!((d[1] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn paper_example2_probabilities() {
        // Example 2: P(X1)=0.2, P(X2)=0.1, P(X3)=0.3.
        // The paper prints 0.418x + 0.504 for F3, but 0.26·0.7 + 0.72·0.3
        // = 0.398 — a typo in the paper's arithmetic (its own x²-dropping
        // rule is applied correctly; only the x¹ product is off). The
        // exact distribution is {0.504, 0.398, 0.092, 0.006}.
        let d = poisson_binomial(&[0.2, 0.1, 0.3], None);
        assert!((d[0] - 0.504).abs() < 1e-12);
        assert!((d[1] - 0.398).abs() < 1e-12);
        assert!((d[2] - 0.092).abs() < 1e-12);
        assert!((d[3] - 0.006).abs() < 1e-12);
        // P(count < 2) = 0.902 -> B is a hit for tau <= 90.2%
        assert!((d[0] + d[1] - 0.902).abs() < 1e-12);
    }

    #[test]
    fn paper_example2_truncated() {
        let d = poisson_binomial(&[0.2, 0.1, 0.3], Some(2));
        assert_eq!(d.len(), 2);
        assert!((d[0] - 0.504).abs() < 1e-12);
        assert!((d[1] - 0.398).abs() < 1e-12);
    }

    #[test]
    fn deterministic_variables() {
        let d = poisson_binomial(&[1.0, 1.0, 0.0], None);
        assert!((d[2] - 1.0).abs() < 1e-12);
        assert!(d[0].abs() < 1e-12 && d[1].abs() < 1e-12 && d[3].abs() < 1e-12);
    }

    #[test]
    fn identical_halves_are_binomial() {
        let d = poisson_binomial(&[0.5; 4], None);
        let expect = [1.0, 4.0, 6.0, 4.0, 1.0].map(|c| c / 16.0);
        for (a, e) in d.iter().zip(expect.iter()) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn truncate_zero_returns_empty() {
        assert!(poisson_binomial(&[0.5], Some(0)).is_empty());
    }

    proptest! {
        #[test]
        fn prop_matches_brute_force(probs in proptest::collection::vec(0.0..1.0f64, 1..10)) {
            let fast = poisson_binomial(&probs, None);
            let slow = brute_force(&probs);
            prop_assert_eq!(fast.len(), slow.len());
            for (f, s) in fast.iter().zip(slow.iter()) {
                prop_assert!((f - s).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_sums_to_one(probs in proptest::collection::vec(0.0..1.0f64, 0..20)) {
            let d = poisson_binomial(&probs, None);
            let total: f64 = d.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_truncation_is_prefix(
            probs in proptest::collection::vec(0.0..1.0f64, 1..15),
            k in 1usize..10,
        ) {
            let full = poisson_binomial(&probs, None);
            let trunc = poisson_binomial(&probs, Some(k));
            prop_assert_eq!(trunc.len(), k.min(full.len()));
            for (t, f) in trunc.iter().zip(full.iter()) {
                prop_assert!((t - f).abs() < 1e-9);
            }
        }
    }
}
