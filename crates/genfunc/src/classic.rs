//! Classic (univariate) generating functions and the two-regular-GF
//! bounding scheme.
//!
//! `F^N = Π_i (1 − p_i + p_i·x)`: the coefficient of `x^j` is the
//! probability that exactly `j` of the independent Bernoulli events occur
//! (§IV-C, following Li/Saha/Deshpande). Incremental multiplication keeps
//! the cost `O(N)` per factor, and dropping coefficients `x^j, j ≥ k`
//! reduces the total to `O(k·N)` when only `P(count < k)` is needed.

use crate::bounds::CountDistributionBounds;
use crate::poisson::poisson_binomial;

/// An incrementally built classic generating function.
#[derive(Debug, Clone)]
pub struct ClassicGf {
    /// `coeffs[j] =` coefficient of `x^j`.
    coeffs: Vec<f64>,
    truncate_at: Option<usize>,
}

impl ClassicGf {
    /// The empty product `F^0 = 1`. With `truncate_at = Some(k)` only the
    /// coefficients of `x^0..x^(k−1)` are maintained.
    pub fn new(truncate_at: Option<usize>) -> Self {
        ClassicGf {
            coeffs: vec![1.0],
            truncate_at,
        }
    }

    /// Multiplies by the factor `(1 − p + p·x)`.
    pub fn multiply(&mut self, p: f64) {
        debug_assert!(
            (-1e-9..=1.0 + 1e-9).contains(&p),
            "probability out of range: {p}"
        );
        let p = p.clamp(0.0, 1.0);
        let q = 1.0 - p;
        let keep = self.truncate_at.unwrap_or(usize::MAX);
        if self.coeffs.len() < keep {
            self.coeffs.push(0.0);
        }
        for j in (0..self.coeffs.len()).rev() {
            let carry = if j > 0 { p * self.coeffs[j - 1] } else { 0.0 };
            self.coeffs[j] = q * self.coeffs[j] + carry;
        }
    }

    /// The coefficient of `x^j` — `P(count = j)` (0 beyond the kept range).
    pub fn coefficient(&self, j: usize) -> f64 {
        self.coeffs.get(j).copied().unwrap_or(0.0)
    }

    /// All kept coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// `P(count < k)` (exact when `k` is within the kept range).
    pub fn cdf(&self, k: usize) -> f64 {
        self.coeffs[..k.min(self.coeffs.len())].iter().sum()
    }
}

/// The *two-regular-GF* approximation of the domination-count PDF the
/// paper's technical report compares the UGF against: one GF built from
/// the conservative probabilities `pLB_i`, one from the progressive
/// `pUB_i`.
///
/// `P(count < k)` is monotonically decreasing in every `p_i`, so the
/// CDF built from the upper probabilities lower-bounds the true CDF and
/// vice versa; per-`k` bounds follow by differencing:
///
/// ```text
/// P(count = k) ∈ [ max(0, cdfLB(k+1) − cdfUB(k)),
///                  min(1, cdfUB(k+1) − cdfLB(k)) ]
/// ```
///
/// These bounds are *correct* but provably looser than the UGF's
/// (benchmarked in `ablation_ugf_vs_two_gf`).
pub fn two_gf_bounds(p_lb: &[f64], p_ub: &[f64]) -> CountDistributionBounds {
    assert_eq!(p_lb.len(), p_ub.len(), "bound vectors must align");
    let n = p_lb.len();
    let low_dist = poisson_binomial(p_lb, None); // stochastically smallest count
    let high_dist = poisson_binomial(p_ub, None); // stochastically largest count
                                                  // prefix CDFs: cdf_low_probs(k) = P(count < k) when every p_i = pLB_i
    let cdf_at = |dist: &[f64], k: usize| -> f64 { dist[..k.min(dist.len())].iter().sum() };
    let mut lower = Vec::with_capacity(n + 1);
    let mut upper = Vec::with_capacity(n + 1);
    for k in 0..=n {
        // true CDF(k) ∈ [cdf_at(high), cdf_at(low)]
        let cdf_lb_k = cdf_at(&high_dist, k);
        let cdf_ub_k = cdf_at(&low_dist, k);
        let cdf_lb_k1 = cdf_at(&high_dist, k + 1);
        let cdf_ub_k1 = cdf_at(&low_dist, k + 1);
        lower.push((cdf_lb_k1 - cdf_ub_k).max(0.0));
        upper.push((cdf_ub_k1 - cdf_lb_k).clamp(0.0, 1.0));
    }
    CountDistributionBounds::new(lower, upper)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example2_expansions() {
        // Example 2 with k = 2: F1, F2, F3 coefficient checks
        let mut gf = ClassicGf::new(Some(2));
        gf.multiply(0.2);
        assert!((gf.coefficient(0) - 0.8).abs() < 1e-12);
        assert!((gf.coefficient(1) - 0.2).abs() < 1e-12);
        gf.multiply(0.1);
        assert!((gf.coefficient(0) - 0.72).abs() < 1e-12);
        assert!((gf.coefficient(1) - 0.26).abs() < 1e-12);
        gf.multiply(0.3);
        assert!((gf.coefficient(0) - 0.504).abs() < 1e-12);
        // the paper prints 0.418 here; the correct product
        // 0.26·0.7 + 0.72·0.3 is 0.398 (see poisson::tests for the full
        // distribution cross-check)
        assert!((gf.coefficient(1) - 0.398).abs() < 1e-12);
        assert!((gf.cdf(2) - 0.902).abs() < 1e-12);
    }

    #[test]
    fn untruncated_matches_poisson() {
        let probs = [0.2, 0.5, 0.9, 0.1];
        let mut gf = ClassicGf::new(None);
        for &p in &probs {
            gf.multiply(p);
        }
        let pb = poisson_binomial(&probs, None);
        assert_eq!(gf.coefficients().len(), pb.len());
        for (a, b) in gf.coefficients().iter().zip(pb.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn two_gf_bounds_collapse_when_tight() {
        // pLB == pUB: the two GFs coincide and the bounds pin the exact PDF
        let p = [0.2, 0.7];
        let b = two_gf_bounds(&p, &p);
        let exact = poisson_binomial(&p, None);
        for k in 0..exact.len() {
            assert!((b.lower(k) - exact[k]).abs() < 1e-9, "k={k}");
            assert!((b.upper(k) - exact[k]).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn two_gf_bounds_bracket_any_consistent_instance() {
        let p_lb = [0.2, 0.6];
        let p_ub = [0.5, 0.8];
        let b = two_gf_bounds(&p_lb, &p_ub);
        // any true probabilities inside the per-variable bounds must be
        // bracketed
        for &p1 in &[0.2, 0.35, 0.5] {
            for &p2 in &[0.6, 0.7, 0.8] {
                let exact = poisson_binomial(&[p1, p2], None);
                for k in 0..exact.len() {
                    assert!(
                        exact[k] >= b.lower(k) - 1e-9 && exact[k] <= b.upper(k) + 1e-9,
                        "p=({p1},{p2}) k={k} exact={} bounds=[{},{}]",
                        exact[k],
                        b.lower(k),
                        b.upper(k)
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_truncated_is_prefix(
            probs in proptest::collection::vec(0.0..1.0f64, 1..12),
            k in 1usize..8,
        ) {
            let mut full = ClassicGf::new(None);
            let mut trunc = ClassicGf::new(Some(k));
            for &p in &probs {
                full.multiply(p);
                trunc.multiply(p);
            }
            for j in 0..k {
                prop_assert!((full.coefficient(j) - trunc.coefficient(j)).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_two_gf_sound(
            pairs in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..8),
            ts in proptest::collection::vec(0.0..1.0f64, 8),
        ) {
            let p_lb: Vec<f64> = pairs.iter().map(|(a, b)| a.min(*b)).collect();
            let p_ub: Vec<f64> = pairs.iter().map(|(a, b)| a.max(*b)).collect();
            let bounds = two_gf_bounds(&p_lb, &p_ub);
            // an arbitrary consistent instantiation
            let probs: Vec<f64> = p_lb
                .iter()
                .zip(p_ub.iter())
                .zip(ts.iter())
                .map(|((l, u), t)| l + t * (u - l))
                .collect();
            let exact = poisson_binomial(&probs, None);
            for k in 0..exact.len() {
                prop_assert!(exact[k] >= bounds.lower(k) - 1e-9);
                prop_assert!(exact[k] <= bounds.upper(k) + 1e-9);
            }
        }
    }
}
