//! Verifies the flat-arena UGF's zero-allocation claim: after warm-up
//! (or a `reset()` reuse), `multiply`, `add_bounds_weighted` and
//! `cdf_bounds` never touch the heap.
//!
//! A counting global allocator tracks per-thread allocation counts, so
//! concurrent test-harness threads cannot perturb the measurement. This
//! file intentionally contains a single test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use udb_genfunc::{CountDistributionBounds, Ugf};

struct CountingAllocator;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocs_on_this_thread() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

#[test]
fn multiply_is_allocation_free_after_warmup() {
    let factors: Vec<(f64, f64)> = (0..48)
        .map(|i| match i % 5 {
            0 => (0.0, 0.0),
            1 => (1.0, 1.0),
            _ => {
                let l = (i % 7) as f64 / 10.0;
                (l, (l + 0.25).min(1.0))
            }
        })
        .collect();

    // warm-up: grow buffers (and the bounds accumulator) to full size
    let mut ugf = Ugf::new(None);
    for &(l, u) in &factors {
        ugf.multiply(l, u);
    }
    let mut agg = CountDistributionBounds::zero(factors.len() + 1);
    ugf.add_bounds_weighted(&mut agg, 0.5);

    // measured passes: reset + rebuild the full product, twice, plus the
    // bound extraction — all through the warm buffers
    let before = allocs_on_this_thread();
    for _ in 0..2 {
        ugf.reset(None);
        for &(l, u) in &factors {
            ugf.multiply(l, u);
        }
        ugf.add_bounds_weighted(&mut agg, 0.25);
        let (lo, hi) = ugf.cdf_bounds(3);
        assert!(lo <= hi);
    }
    let during = allocs_on_this_thread() - before;
    assert_eq!(during, 0, "hot path allocated {during} times after warm-up");

    // sanity: the warm-up path itself definitely allocates, so the
    // counter is live
    let before = allocs_on_this_thread();
    let _v: Vec<u8> = Vec::with_capacity(128);
    assert!(allocs_on_this_thread() > before, "counter is not recording");
}
