//! Monte-Carlo comparison baseline (§VII-A of the paper).
//!
//! "Draw a sufficiently large number S of samples from each object by
//! Monte-Carlo-Sampling. Then, for each sample qi ∈ Q of the query, apply
//! the algorithm proposed in [Lian & Chen] to compute an exact
//! probabilistic domination count PDF of an object B [...] using the
//! generating function technique [...]. Finally, accumulate the resulting
//! certain domination count PDFs of each qi ∈ Q into a single domination
//! count PDF by taking the average."
//!
//! Conditioning on one sample of the reference object *and* one sample of
//! the target object makes the per-object domination events independent
//! Bernoulli variables (this is the role of the and/xor tree in the
//! original discrete algorithm), so the Poisson-binomial recurrence yields
//! the **exact** domination-count PDF of the discretized instance; the
//! average over sample pairs is the Monte-Carlo estimate for the
//! continuous one.

pub mod engine;
pub mod estimate;

pub use engine::{McDomCount, MonteCarlo};
pub use estimate::{estimate_domination_count_pdf, estimate_pdom};
