//! The MC domination-count engine.

use rand::Rng;
use udb_domination::DominationCriterion;
use udb_genfunc::poisson_binomial;
use udb_geometry::{LpNorm, Point};
use udb_object::{Database, ObjectId, UncertainObject};

/// Configuration of the Monte-Carlo baseline.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    /// Samples drawn per object (paper default: 1,000).
    pub samples: usize,
    /// Distance norm.
    pub norm: LpNorm,
    /// Criterion for the (optional) complete-domination prefilter.
    pub criterion: DominationCriterion,
    /// Whether to apply the spatial prefilter before sampling. The paper's
    /// comparison evaluates the refinement step, so both IDCA and MC see
    /// the same influence-object sets; disable for a fully naive baseline.
    pub prefilter: bool,
}

impl Default for MonteCarlo {
    fn default() -> Self {
        MonteCarlo {
            samples: 1_000,
            norm: LpNorm::L2,
            criterion: DominationCriterion::Optimal,
            prefilter: true,
        }
    }
}

/// Result of an MC domination-count evaluation.
#[derive(Debug, Clone)]
pub struct McDomCount {
    /// The estimated PDF of `DomCount(B, R)`: `pdf[k] ≈ P(DomCount = k)`.
    /// Exact for the sampled (discretized) instance.
    pub pdf: Vec<f64>,
    /// Objects that dominate `B` in every possible world (prefilter).
    pub complete_count: usize,
    /// Objects with uncertain domination relation (prefilter survivors).
    pub influence: Vec<ObjectId>,
}

impl McDomCount {
    /// `P(DomCount < k)` under the estimated PDF.
    pub fn cdf(&self, k: usize) -> f64 {
        self.pdf[..k.min(self.pdf.len())].iter().sum()
    }

    /// Expected rank `E[DomCount] + 1` (Corollary 6).
    pub fn expected_rank(&self) -> f64 {
        self.pdf
            .iter()
            .enumerate()
            .map(|(k, p)| p * (k + 1) as f64)
            .sum()
    }
}

impl MonteCarlo {
    /// Estimates the PDF of `DomCount(target, reference)` over
    /// `db \ {target}`.
    pub fn domination_count<R: Rng + ?Sized>(
        &self,
        db: &Database,
        target: ObjectId,
        reference: &UncertainObject,
        rng: &mut R,
    ) -> McDomCount {
        assert!(self.samples > 0, "sample count must be positive");
        let b_obj = db.get(target);

        // spatial prefilter (identical to IDCA's filter step)
        let mut complete_count = 0usize;
        let mut influence: Vec<ObjectId> = Vec::new();
        for (id, a) in db.iter() {
            if id == target {
                continue;
            }
            if self.prefilter {
                if self
                    .criterion
                    .dominates(a.mbr(), b_obj.mbr(), reference.mbr(), self.norm)
                {
                    complete_count += 1;
                    continue;
                }
                if self
                    .criterion
                    .dominates(b_obj.mbr(), a.mbr(), reference.mbr(), self.norm)
                {
                    continue; // never dominates B
                }
            }
            influence.push(id);
        }

        let pdf = self.influence_count_pdf(db, b_obj, reference, &influence, rng);

        // shift by the certain dominators
        let mut full = vec![0.0; complete_count];
        full.extend(pdf);
        McDomCount {
            pdf: full,
            complete_count,
            influence,
        }
    }

    /// Exact domination-count PDF of the discretized influence set:
    /// averages the conditional Poisson-binomial PDF over all
    /// `(reference sample, target sample)` pairs.
    fn influence_count_pdf<R: Rng + ?Sized>(
        &self,
        db: &Database,
        b_obj: &UncertainObject,
        reference: &UncertainObject,
        influence: &[ObjectId],
        rng: &mut R,
    ) -> Vec<f64> {
        let s = self.samples;
        let b_samples: Vec<Point> = (0..s).map(|_| b_obj.sample(rng)).collect();
        let r_samples: Vec<Point> = (0..s).map(|_| reference.sample(rng)).collect();
        let a_samples: Vec<Vec<Point>> = influence
            .iter()
            .map(|&id| (0..s).map(|_| db.get(id).sample(rng)).collect())
            .collect();

        let mut pdf = vec![0.0f64; influence.len() + 1];
        let weight = 1.0 / (s * s) as f64;
        let mut probs = vec![0.0f64; influence.len()];
        let mut sorted_dists: Vec<Vec<f64>> = vec![Vec::with_capacity(s); influence.len()];
        for q in &r_samples {
            // per reference sample: sorted distances of every influence
            // object's samples to q (the "and/xor tree" leaves)
            for (dists, samples) in sorted_dists.iter_mut().zip(a_samples.iter()) {
                dists.clear();
                dists.extend(samples.iter().map(|p| self.norm.dist_pow(p, q)));
                dists.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
            }
            for b in &b_samples {
                let db_dist = self.norm.dist_pow(b, q);
                for (p, dists) in probs.iter_mut().zip(sorted_dists.iter()) {
                    *p = strict_below(dists, db_dist) as f64 / s as f64;
                }
                let cond = poisson_binomial(&probs, None);
                for (acc, p) in pdf.iter_mut().zip(cond.iter()) {
                    *acc += weight * p;
                }
            }
        }
        pdf
    }
}

/// Number of elements strictly below `x` in the sorted slice.
fn strict_below(sorted: &[f64], x: f64) -> usize {
    sorted.partition_point(|&d| d < x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use udb_geometry::{Interval, Rect};
    use udb_pdf::Pdf;

    fn certain(x: f64) -> UncertainObject {
        UncertainObject::certain(Point::from([x, 0.0]))
    }

    fn uniform_seg(lo: f64, hi: f64) -> UncertainObject {
        UncertainObject::new(Pdf::uniform(Rect::new(vec![
            Interval::new(lo, hi),
            Interval::point(0.0),
        ])))
    }

    #[test]
    fn strict_below_counts() {
        let v = [1.0, 2.0, 2.0, 3.0];
        assert_eq!(strict_below(&v, 0.5), 0);
        assert_eq!(strict_below(&v, 2.0), 1);
        assert_eq!(strict_below(&v, 2.5), 3);
        assert_eq!(strict_below(&v, 9.0), 4);
    }

    #[test]
    fn certain_configuration_is_deterministic() {
        // reference at 0; objects at 1, 2, 4; target at 3 -> exactly two
        // dominators in every world
        let db =
            Database::from_objects(vec![certain(1.0), certain(2.0), certain(4.0), certain(3.0)]);
        let mc = MonteCarlo {
            samples: 16,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let res = mc.domination_count(&db, ObjectId(3), &certain(0.0), &mut rng);
        assert_eq!(res.complete_count, 2);
        assert!(res.influence.is_empty());
        assert!((res.pdf[2] - 1.0).abs() < 1e-12);
        assert!((res.cdf(3) - 1.0).abs() < 1e-12);
        assert!((res.expected_rank() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fifty_fifty_influence_object() {
        // B certain at 0; A uniform on [-1, 1] (w.r.t. reference at the
        // same spot as B? no:) reference certain at 0. dist(B,R) = 0, so A
        // dominates iff dist(A, 0) < 0 — never. Use a separated layout:
        // R at 0, B at 2, A uniform on [1, 3]: A dominates iff |a| < 2,
        // i.e. a < 2 -> probability 1/2.
        let db = Database::from_objects(vec![uniform_seg(1.0, 3.0), certain(2.0)]);
        let mc = MonteCarlo {
            samples: 400,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let res = mc.domination_count(&db, ObjectId(1), &certain(0.0), &mut rng);
        assert_eq!(res.complete_count, 0);
        assert_eq!(res.influence.len(), 1);
        assert!((res.pdf[0] - 0.5).abs() < 0.08, "pdf {:?}", res.pdf);
        assert!((res.pdf[1] - 0.5).abs() < 0.05);
    }

    #[test]
    fn pdf_sums_to_one() {
        let db = Database::from_objects(vec![
            uniform_seg(0.0, 2.0),
            uniform_seg(1.0, 3.0),
            uniform_seg(2.0, 4.0),
            uniform_seg(1.5, 2.5),
        ]);
        let mc = MonteCarlo {
            samples: 64,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let res = mc.domination_count(&db, ObjectId(3), &uniform_seg(-1.0, 0.5), &mut rng);
        let total: f64 = res.pdf.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn prefilter_off_keeps_all_objects() {
        let db = Database::from_objects(vec![certain(1.0), certain(5.0), certain(3.0)]);
        let mc = MonteCarlo {
            samples: 8,
            prefilter: false,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let res = mc.domination_count(&db, ObjectId(2), &certain(0.0), &mut rng);
        assert_eq!(res.complete_count, 0);
        assert_eq!(res.influence.len(), 2);
        // same final distribution as with prefilter: count = 1 surely
        assert!((res.pdf[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dependency_example1_handled_correctly() {
        // Example 1 / Figure 3 of the paper: A1 = A2 certain coincident
        // points, B certain, R uncertain with PDom(Ai,B,R) = 1/2. The
        // naive product rule would give P(count = 2) = 1/4; the correct
        // answer (domination events fully correlated through R) is
        // P(count = 2) = 1/2, P(count = 0) = 1/2.
        let db = Database::from_objects(vec![certain(2.0), certain(2.0), certain(0.0)]);
        let mc = MonteCarlo {
            samples: 500,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let r = uniform_seg(0.0, 2.0); // A dominates B iff r > 1
        let res = mc.domination_count(&db, ObjectId(2), &r, &mut rng);
        assert!((res.pdf[0] - 0.5).abs() < 0.08, "pdf {:?}", res.pdf);
        assert!(res.pdf[1] < 0.02, "pdf {:?}", res.pdf);
        assert!((res.pdf[2] - 0.5).abs() < 0.08, "pdf {:?}", res.pdf);
    }
}
