//! Simple possible-world samplers used as ground-truth oracles in tests
//! and experiments.

use rand::Rng;
use udb_geometry::LpNorm;
use udb_object::{Database, ObjectId, UncertainObject};

/// Estimates `PDom(A, B, R)` by sampling `worlds` independent triples.
pub fn estimate_pdom<R: Rng + ?Sized>(
    a: &UncertainObject,
    b: &UncertainObject,
    r: &UncertainObject,
    norm: LpNorm,
    worlds: usize,
    rng: &mut R,
) -> f64 {
    assert!(worlds > 0);
    let mut hits = 0usize;
    for _ in 0..worlds {
        let (pa, pb, pr) = (a.sample(rng), b.sample(rng), r.sample(rng));
        if norm.dist_pow(&pa, &pr) < norm.dist_pow(&pb, &pr) {
            hits += 1;
        }
    }
    hits as f64 / worlds as f64
}

/// Estimates the PDF of `DomCount(target, reference)` by sampling whole
/// possible worlds: one position per object per world, with existentially
/// uncertain objects (`existence < 1`) present only in a Bernoulli
/// fraction of worlds. This estimator is unbiased for the *continuous*
/// model (no discretization step), which makes it the preferred oracle
/// for validating IDCA bounds.
pub fn estimate_domination_count_pdf<R: Rng + ?Sized>(
    db: &Database,
    target: ObjectId,
    reference: &UncertainObject,
    norm: LpNorm,
    worlds: usize,
    rng: &mut R,
) -> Vec<f64> {
    assert!(worlds > 0);
    let mut pdf = vec![0.0f64; db.len()]; // counts in 0..=len-1 (target excluded)
    let w = 1.0 / worlds as f64;
    for _ in 0..worlds {
        let q = reference.sample(rng);
        let b = db.get(target).sample(rng);
        let db_dist = norm.dist_pow(&b, &q);
        let mut count = 0usize;
        for (id, o) in db.iter() {
            if id == target {
                continue;
            }
            if o.existence() < 1.0 && rng.gen::<f64>() >= o.existence() {
                continue; // object absent from this possible world
            }
            let a = o.sample(rng);
            if norm.dist_pow(&a, &q) < db_dist {
                count += 1;
            }
        }
        pdf[count] += w;
    }
    pdf
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use udb_geometry::{Interval, Point, Rect};
    use udb_pdf::Pdf;

    fn certain(x: f64) -> UncertainObject {
        UncertainObject::certain(Point::from([x, 0.0]))
    }

    fn uniform_seg(lo: f64, hi: f64) -> UncertainObject {
        UncertainObject::new(Pdf::uniform(Rect::new(vec![
            Interval::new(lo, hi),
            Interval::point(0.0),
        ])))
    }

    #[test]
    fn pdom_certain_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = estimate_pdom(
            &certain(1.0),
            &certain(5.0),
            &certain(0.0),
            LpNorm::L2,
            100,
            &mut rng,
        );
        assert_eq!(p, 1.0);
        let q = estimate_pdom(
            &certain(5.0),
            &certain(1.0),
            &certain(0.0),
            LpNorm::L2,
            100,
            &mut rng,
        );
        assert_eq!(q, 0.0);
    }

    #[test]
    fn pdom_half_case() {
        let mut rng = StdRng::seed_from_u64(2);
        // A = {2}, B = {0}, R uniform on [0,2]: PDom = 1/2
        let p = estimate_pdom(
            &certain(2.0),
            &certain(0.0),
            &uniform_seg(0.0, 2.0),
            LpNorm::L2,
            20_000,
            &mut rng,
        );
        assert!((p - 0.5).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn world_sampler_matches_simple_case() {
        let db = Database::from_objects(vec![certain(1.0), certain(5.0), certain(3.0)]);
        let mut rng = StdRng::seed_from_u64(3);
        let pdf = estimate_domination_count_pdf(
            &db,
            ObjectId(2),
            &certain(0.0),
            LpNorm::L2,
            500,
            &mut rng,
        );
        assert!((pdf[1] - 1.0).abs() < 1e-12); // exactly object 0 dominates
    }

    #[test]
    fn world_sampler_respects_existence() {
        // a certain dominator that exists only half the time: the count is
        // 1 with p = 0.5, 0 otherwise
        let dominator = UncertainObject::with_existence(
            Pdf::uniform(Rect::from_point(&Point::from([1.0, 0.0]))),
            0.5,
        );
        let db = Database::from_objects(vec![dominator, certain(3.0)]);
        let mut rng = StdRng::seed_from_u64(21);
        let pdf = estimate_domination_count_pdf(
            &db,
            ObjectId(1),
            &certain(0.0),
            LpNorm::L2,
            20_000,
            &mut rng,
        );
        assert!((pdf[0] - 0.5).abs() < 0.02, "pdf {pdf:?}");
        assert!((pdf[1] - 0.5).abs() < 0.02, "pdf {pdf:?}");
    }

    #[test]
    fn world_sampler_sums_to_one() {
        let db = Database::from_objects(vec![
            uniform_seg(0.0, 2.0),
            uniform_seg(1.0, 3.0),
            uniform_seg(0.5, 2.5),
        ]);
        let mut rng = StdRng::seed_from_u64(4);
        let pdf = estimate_domination_count_pdf(
            &db,
            ObjectId(0),
            &uniform_seg(-1.0, 0.0),
            LpNorm::L2,
            2_000,
            &mut rng,
        );
        assert!((pdf.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
