//! Workload generators reproducing the paper's evaluation datasets (§VII).
//!
//! * [`synthetic`] — "a synthetic dataset with 10,000 objects modeled as 2D
//!   rectangles. The degree of uncertainty of the objects in each dimension
//!   is modeled by their relative extent. The extents were generated
//!   uniformly and at random with 0.004 as maximum value."
//! * [`iceberg`] — a simulation of the International Ice Patrol (IIP)
//!   Iceberg Sightings dataset (6,216 objects, Gaussian positional noise
//!   scaled by the time since the latest sighting, maximum extent 0.0004).
//!   The real dataset is not redistributable here; the generator
//!   reproduces its statistical shape (see DESIGN.md §3).
//! * [`query`] — helpers for the paper's query protocol ("we chose B to be
//!   the object with the 10th smallest MinDist to the reference object").

//! * [`stream`] — query-stream workloads for serving benchmarks: mixed
//!   kNN/RkNN/top-`m` traffic arriving in batches, with optional
//!   hot-spot skew, plus the [`stream::serve_stream`] driver that runs a
//!   stream sequentially or through the batched engine.

pub mod iceberg;
pub mod query;
pub mod stream;
pub mod synthetic;

pub use iceberg::IcebergConfig;
pub use query::{target_by_min_dist_rank, QuerySet};
pub use stream::{
    serve_stream, serve_stream_with_report, MixCounts, QueryStream, QueryStreamConfig, ServeMode,
    ServeReport, ServeResults, StreamEngine, StreamOp, StreamQuery,
};
pub use synthetic::{PdfKind, SyntheticConfig};
