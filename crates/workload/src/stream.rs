//! Query-stream workloads: sustained multi-user traffic instead of
//! single queries.
//!
//! The paper's evaluation protocol measures one query at a time; a
//! serving system sees *streams* — queries arriving in batches, with a
//! mix of operation types and (realistically) spatial skew: many users
//! ask about the same hot regions. [`QueryStreamConfig`] generates such
//! a stream deterministically (same seed ⇒ same stream), and
//! [`serve_stream`] drives it through an [`IndexedEngine`] either
//! query-by-query ([`ServeMode::Sequential`], the per-query entry
//! points) or batch-by-batch ([`ServeMode::Batched`], the shared-work
//! [`QueryBatch`] pass). Both modes return bit-identical results; the
//! `serve_stream` bench group records the throughput ratio.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use udb_core::{IndexedEngine, QueryBatch, ThresholdResult};
use udb_geometry::Point;
use udb_object::UncertainObject;

use crate::synthetic::SyntheticConfig;

/// The operation one stream query performs, with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StreamOp {
    /// Probabilistic threshold kNN.
    KnnThreshold {
        /// The `k` of the query.
        k: usize,
        /// The probability threshold `τ`.
        tau: f64,
    },
    /// Probabilistic threshold reverse kNN.
    RknnThreshold {
        /// The `k` of the query.
        k: usize,
        /// The probability threshold `τ`.
        tau: f64,
    },
    /// Top-`m` probable nearest neighbours.
    TopProbableNn {
        /// Result-set size.
        m: usize,
    },
}

/// One query of the stream: an uncertain query object plus the operation
/// to run against it.
#[derive(Debug, Clone)]
pub struct StreamQuery {
    /// The query object (drawn from the data distribution, or around a
    /// hot-spot center).
    pub object: UncertainObject,
    /// The operation and its parameters.
    pub op: StreamOp,
}

/// Configuration of a synthetic query stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryStreamConfig {
    /// Number of arrival batches.
    pub batches: usize,
    /// Queries per arrival batch.
    pub batch_size: usize,
    /// Relative weight of kNN-threshold queries in the mix.
    pub knn_weight: f64,
    /// Relative weight of RkNN-threshold queries.
    pub rknn_weight: f64,
    /// Relative weight of top-`m` queries.
    pub top_m_weight: f64,
    /// The `k` of generated kNN/RkNN queries.
    pub k: usize,
    /// The `τ` of generated threshold queries.
    pub tau: f64,
    /// The `m` of generated top-`m` queries.
    pub m: usize,
    /// Number of hot-spot centers; `0` disables hot spots (every query
    /// object follows the data distribution).
    pub hotspots: usize,
    /// Fraction of queries drawn near a hot-spot center (the rest follow
    /// the data distribution).
    pub hotspot_fraction: f64,
    /// Half-extent of the uniform offset around a hot-spot center.
    pub hotspot_spread: f64,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for QueryStreamConfig {
    fn default() -> Self {
        QueryStreamConfig {
            batches: 4,
            batch_size: 8,
            knn_weight: 0.5,
            rknn_weight: 0.25,
            top_m_weight: 0.25,
            k: 5,
            tau: 0.3,
            m: 3,
            hotspots: 2,
            hotspot_fraction: 0.75,
            hotspot_spread: 0.02,
            seed: 0x57EAu64,
        }
    }
}

/// A generated stream: queries grouped into arrival batches.
#[derive(Debug)]
pub struct QueryStream {
    /// The arrival batches, each a mixed set of queries.
    pub batches: Vec<Vec<StreamQuery>>,
}

impl QueryStream {
    /// Number of arrival batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether the stream holds no batches.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Total queries across all batches.
    pub fn total_queries(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }

    /// `(knn, rknn, top_m)` operation counts across the stream.
    pub fn mix_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for q in self.batches.iter().flatten() {
            match q.op {
                StreamOp::KnnThreshold { .. } => counts.0 += 1,
                StreamOp::RknnThreshold { .. } => counts.1 += 1,
                StreamOp::TopProbableNn { .. } => counts.2 += 1,
            }
        }
        counts
    }
}

impl QueryStreamConfig {
    /// Generates the stream. Query objects follow `object_config`'s data
    /// distribution (the paper's protocol for reference objects), except
    /// that a `hotspot_fraction` of them — when `hotspots > 0` — center
    /// near one of `hotspots` randomly placed hot-spot points, modelling
    /// many users querying the same region (and maximizing the shared
    /// work a batched executor can exploit).
    ///
    /// # Panics
    /// Panics if every mix weight is zero or any weight is negative.
    pub fn generate(&self, object_config: &SyntheticConfig) -> QueryStream {
        assert!(
            self.knn_weight >= 0.0 && self.rknn_weight >= 0.0 && self.top_m_weight >= 0.0,
            "mix weights must be non-negative"
        );
        let total = self.knn_weight + self.rknn_weight + self.top_m_weight;
        assert!(total > 0.0, "at least one mix weight must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dims = object_config.dims;
        let centers: Vec<Point> = (0..self.hotspots)
            .map(|_| {
                Point::new(
                    (0..dims)
                        .map(|_| rng.gen_range(0.0..1.0))
                        .collect::<Vec<f64>>(),
                )
            })
            .collect();
        let batches = (0..self.batches)
            .map(|_| {
                (0..self.batch_size)
                    .map(|_| {
                        let object = if !centers.is_empty()
                            && rng.gen_range(0.0..1.0) < self.hotspot_fraction
                        {
                            let center = &centers[rng.gen_range(0..centers.len())];
                            self.hotspot_object(center, object_config, &mut rng)
                        } else {
                            object_config.generate_object(&mut rng)
                        };
                        let pick = rng.gen_range(0.0..total);
                        let op = if pick < self.knn_weight {
                            StreamOp::KnnThreshold {
                                k: self.k,
                                tau: self.tau,
                            }
                        } else if pick < self.knn_weight + self.rknn_weight {
                            StreamOp::RknnThreshold {
                                k: self.k,
                                tau: self.tau,
                            }
                        } else {
                            StreamOp::TopProbableNn { m: self.m }
                        };
                        StreamQuery { object, op }
                    })
                    .collect()
            })
            .collect();
        QueryStream { batches }
    }

    /// A query object centered within `hotspot_spread` of a hot-spot
    /// center; extents and density family follow the data
    /// distribution's, exactly like uniform-drawn query objects.
    fn hotspot_object(
        &self,
        center: &Point,
        object_config: &SyntheticConfig,
        rng: &mut StdRng,
    ) -> UncertainObject {
        let c: Vec<f64> = (0..object_config.dims)
            .map(|d| center[d] + rng.gen_range(-self.hotspot_spread..self.hotspot_spread))
            .collect();
        object_config.generate_object_at(c, rng)
    }
}

/// How [`serve_stream`] executes each arrival batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// One call per query through the per-query entry points (the
    /// baseline a serving system without batching would run).
    Sequential,
    /// One [`IndexedEngine::run_batch`] per arrival batch (grouped
    /// descent, cross-query decomposition cache, scratch reuse,
    /// `batch_threads` fan-out).
    Batched,
}

/// Drives a query stream through the engine, batch by batch, and returns
/// the per-batch, per-query results (aligned with the stream). The two
/// modes return bit-identical results; they differ only in how the work
/// is shared — which is exactly what the `serve_stream` benchmark
/// measures as sustained queries/sec.
pub fn serve_stream<'a>(
    engine: &IndexedEngine<'a>,
    stream: &'a QueryStream,
    mode: ServeMode,
) -> Vec<Vec<Vec<ThresholdResult>>> {
    stream
        .batches
        .iter()
        .map(|batch| match mode {
            ServeMode::Sequential => batch
                .iter()
                .map(|q| match q.op {
                    StreamOp::KnnThreshold { k, tau } => engine.knn_threshold(&q.object, k, tau),
                    StreamOp::RknnThreshold { k, tau } => engine.rknn_threshold(&q.object, k, tau),
                    StreamOp::TopProbableNn { m } => engine.top_probable_nn(&q.object, m),
                })
                .collect(),
            ServeMode::Batched => {
                let mut qb = QueryBatch::new();
                for q in batch {
                    match q.op {
                        StreamOp::KnnThreshold { k, tau } => {
                            qb.knn_threshold(&q.object, k, tau);
                        }
                        StreamOp::RknnThreshold { k, tau } => {
                            qb.rknn_threshold(&q.object, k, tau);
                        }
                        StreamOp::TopProbableNn { m } => {
                            qb.top_probable_nn(&q.object, m);
                        }
                    }
                }
                engine.run_batch(&qb)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> QueryStreamConfig {
        QueryStreamConfig {
            batches: 3,
            batch_size: 5,
            ..Default::default()
        }
    }

    fn object_cfg() -> SyntheticConfig {
        SyntheticConfig {
            n: 100,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_seed_stable() {
        let cfg = small_cfg();
        let a = cfg.generate(&object_cfg());
        let b = cfg.generate(&object_cfg());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.total_queries(), 15);
        for (ba, bb) in a.batches.iter().zip(b.batches.iter()) {
            assert_eq!(ba.len(), bb.len());
            for (x, y) in ba.iter().zip(bb.iter()) {
                assert_eq!(x.op, y.op);
                assert_eq!(x.object.mbr(), y.object.mbr());
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_cfg().generate(&object_cfg());
        let b = QueryStreamConfig {
            seed: 999,
            ..small_cfg()
        }
        .generate(&object_cfg());
        let same = a
            .batches
            .iter()
            .flatten()
            .zip(b.batches.iter().flatten())
            .all(|(x, y)| x.object.mbr() == y.object.mbr());
        assert!(!same);
    }

    #[test]
    fn mix_ratios_are_respected() {
        // a large stream: empirical mix within a loose tolerance of the
        // configured weights
        let cfg = QueryStreamConfig {
            batches: 40,
            batch_size: 25,
            knn_weight: 0.5,
            rknn_weight: 0.3,
            top_m_weight: 0.2,
            ..Default::default()
        };
        let stream = cfg.generate(&object_cfg());
        let (knn, rknn, top_m) = stream.mix_counts();
        let total = stream.total_queries() as f64;
        assert_eq!(knn + rknn + top_m, stream.total_queries());
        assert!((knn as f64 / total - 0.5).abs() < 0.08, "knn {knn}");
        assert!((rknn as f64 / total - 0.3).abs() < 0.08, "rknn {rknn}");
        assert!((top_m as f64 / total - 0.2).abs() < 0.08, "top_m {top_m}");
    }

    #[test]
    fn zero_weight_ops_never_generated() {
        let cfg = QueryStreamConfig {
            batches: 10,
            batch_size: 10,
            knn_weight: 1.0,
            rknn_weight: 0.0,
            top_m_weight: 0.0,
            ..Default::default()
        };
        let (knn, rknn, top_m) = cfg.generate(&object_cfg()).mix_counts();
        assert_eq!(knn, 100);
        assert_eq!(rknn, 0);
        assert_eq!(top_m, 0);
    }

    #[test]
    #[should_panic(expected = "at least one mix weight")]
    fn all_zero_weights_rejected() {
        let cfg = QueryStreamConfig {
            knn_weight: 0.0,
            rknn_weight: 0.0,
            top_m_weight: 0.0,
            ..Default::default()
        };
        cfg.generate(&object_cfg());
    }

    #[test]
    fn hotspot_queries_cluster_around_centers() {
        // all-hot-spot stream with a tiny spread: query centers must
        // cluster on at most `hotspots` distinct locations
        let cfg = QueryStreamConfig {
            batches: 4,
            batch_size: 10,
            hotspots: 2,
            hotspot_fraction: 1.0,
            hotspot_spread: 1e-4,
            ..Default::default()
        };
        let stream = cfg.generate(&object_cfg());
        let centers: Vec<Vec<f64>> = stream
            .batches
            .iter()
            .flatten()
            .map(|q| {
                let c = q.object.mbr().center();
                vec![c[0], c[1]]
            })
            .collect();
        // greedily cluster with a radius well above the spread but far
        // below the unit-space scale
        let mut reps: Vec<&Vec<f64>> = Vec::new();
        for c in &centers {
            if !reps
                .iter()
                .any(|r| ((r[0] - c[0]).powi(2) + (r[1] - c[1]).powi(2)).sqrt() < 0.01)
            {
                reps.push(c);
            }
        }
        assert!(reps.len() <= 2, "found {} clusters", reps.len());
    }

    #[test]
    fn uniform_stream_has_no_clusters_constraint() {
        let cfg = QueryStreamConfig {
            hotspots: 0,
            ..small_cfg()
        };
        let stream = cfg.generate(&object_cfg());
        assert_eq!(stream.total_queries(), 15);
    }

    #[test]
    fn serve_modes_agree_end_to_end() {
        use udb_core::{IdcaConfig, IndexedEngine};
        let object_cfg = SyntheticConfig {
            n: 150,
            max_extent: 0.02,
            ..Default::default()
        };
        let db = object_cfg.generate();
        let engine = IndexedEngine::with_config(
            &db,
            IdcaConfig {
                max_iterations: 4,
                ..Default::default()
            },
        );
        let stream = QueryStreamConfig {
            batches: 2,
            batch_size: 4,
            k: 3,
            ..Default::default()
        }
        .generate(&object_cfg);
        let seq = serve_stream(&engine, &stream, ServeMode::Sequential);
        let bat = serve_stream(&engine, &stream, ServeMode::Batched);
        assert_eq!(seq, bat);
    }
}
