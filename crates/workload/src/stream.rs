//! Query-stream workloads: sustained multi-user traffic — queries *and*
//! mutations — instead of single queries.
//!
//! The paper's evaluation protocol measures one query at a time; a
//! serving system sees *streams* — operations arriving in batches, with
//! a mix of query types, data mutations (inserts and deletes trickling
//! in between queries) and (realistically) spatial skew: many users ask
//! about the same hot regions. [`QueryStreamConfig`] generates such a
//! stream deterministically (same seed ⇒ same stream), and
//! [`serve_stream`] drives it through any owned [`StreamEngine`] — a
//! plain [`Engine`] or a sharded [`ShardedEngine`] — either
//! query-by-query ([`ServeMode::Sequential`], the per-query entry
//! points) or batch-by-batch ([`ServeMode::Batched`], the shared-work
//! [`QueryBatch`] pass). Mutations are applied identically in both
//! modes, so the two return bit-identical results; and the sharded
//! engine's routing is id-order-preserving, so a sharded serve returns
//! bit-identical results to a single-engine serve of the same stream
//! (the `sharded_vs_single` pair in the `serve` bench group records the
//! throughput ratio).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use udb_core::{DurableError, Engine, QueryBatch, ShardedEngine, StandingSpec, ThresholdResult};
use udb_geometry::{Point, Rect};
use udb_object::UncertainObject;

use crate::synthetic::SyntheticConfig;

/// The operation one stream entry performs, with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StreamOp {
    /// Probabilistic threshold kNN.
    KnnThreshold {
        /// The `k` of the query.
        k: usize,
        /// The probability threshold `τ`.
        tau: f64,
    },
    /// Probabilistic threshold reverse kNN.
    RknnThreshold {
        /// The `k` of the query.
        k: usize,
        /// The probability threshold `τ`.
        tau: f64,
    },
    /// Top-`m` probable nearest neighbours.
    TopProbableNn {
        /// Result-set size.
        m: usize,
    },
    /// Insert the entry's object into the database (an arrival).
    Insert,
    /// Delete the live object nearest the entry's object (a departure).
    /// The probe object follows the same spatial distribution as query
    /// objects — including hot-spot skew — so deletions target the hot
    /// working set exactly like the queries hammering it.
    Delete,
    /// Register a standing kNN query ([`udb_core::standing`]): the
    /// entry's object becomes a subscription whose result set the
    /// engine maintains incrementally as later mutations land. The
    /// entry's own result is the subscription's initial answer.
    Subscribe {
        /// The `k` of the standing query.
        k: usize,
        /// The probability threshold `τ`.
        tau: f64,
    },
}

impl StreamOp {
    /// Whether this entry mutates the database instead of querying it.
    pub fn is_mutation(&self) -> bool {
        matches!(self, StreamOp::Insert | StreamOp::Delete)
    }
}

/// One entry of the stream: an uncertain object plus the operation to
/// run against it (for queries the object is the query region; for
/// [`StreamOp::Insert`] it is the new database object; for
/// [`StreamOp::Delete`] it is the probe whose nearest live object is
/// removed).
#[derive(Debug, Clone)]
pub struct StreamQuery {
    /// The operation's object (drawn from the data distribution, or
    /// around a hot-spot center).
    pub object: UncertainObject,
    /// The operation and its parameters.
    pub op: StreamOp,
}

/// Configuration of a synthetic query/mutation stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryStreamConfig {
    /// Number of arrival batches.
    pub batches: usize,
    /// Operations per arrival batch.
    pub batch_size: usize,
    /// Relative weight of kNN-threshold queries in the mix.
    pub knn_weight: f64,
    /// Relative weight of RkNN-threshold queries.
    pub rknn_weight: f64,
    /// Relative weight of top-`m` queries.
    pub top_m_weight: f64,
    /// Relative weight of object insertions (mutation arrivals); `0`
    /// (the default) keeps the stream read-only.
    pub insert_weight: f64,
    /// Relative weight of object deletions (hot-spot-skewed targets);
    /// `0` (the default) keeps the stream read-only.
    pub delete_weight: f64,
    /// Relative weight of standing-query registrations
    /// ([`StreamOp::Subscribe`], always kNN with the stream's `k`/`tau`);
    /// `0` (the default) keeps the stream subscription-free.
    pub subscribe_weight: f64,
    /// The `k` of generated kNN/RkNN queries.
    pub k: usize,
    /// The `τ` of generated threshold queries.
    pub tau: f64,
    /// The `m` of generated top-`m` queries.
    pub m: usize,
    /// Number of hot-spot centers; `0` disables hot spots (every
    /// generated object follows the data distribution).
    pub hotspots: usize,
    /// Fraction of operations drawn near a hot-spot center (the rest
    /// follow the data distribution).
    pub hotspot_fraction: f64,
    /// Half-extent of the uniform offset around a hot-spot center.
    pub hotspot_spread: f64,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for QueryStreamConfig {
    fn default() -> Self {
        QueryStreamConfig {
            batches: 4,
            batch_size: 8,
            knn_weight: 0.5,
            rknn_weight: 0.25,
            top_m_weight: 0.25,
            insert_weight: 0.0,
            delete_weight: 0.0,
            subscribe_weight: 0.0,
            k: 5,
            tau: 0.3,
            m: 3,
            hotspots: 2,
            hotspot_fraction: 0.75,
            hotspot_spread: 0.02,
            seed: 0x57EAu64,
        }
    }
}

/// Operation counts of a stream, by kind (see
/// [`QueryStream::mix_counts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MixCounts {
    /// kNN-threshold queries.
    pub knn: usize,
    /// RkNN-threshold queries.
    pub rknn: usize,
    /// Top-`m` queries.
    pub top_m: usize,
    /// Insert mutations.
    pub insert: usize,
    /// Delete mutations.
    pub delete: usize,
    /// Standing-query registrations.
    pub subscribe: usize,
}

impl MixCounts {
    /// Total operations counted.
    pub fn total(&self) -> usize {
        self.knn + self.rknn + self.top_m + self.insert + self.delete + self.subscribe
    }

    /// Query operations only (everything but mutations).
    pub fn queries(&self) -> usize {
        self.knn + self.rknn + self.top_m
    }

    /// Mutation operations only.
    pub fn mutations(&self) -> usize {
        self.insert + self.delete
    }
}

/// A generated stream: operations grouped into arrival batches.
#[derive(Debug)]
pub struct QueryStream {
    /// The arrival batches, each a mixed set of operations.
    pub batches: Vec<Vec<StreamQuery>>,
}

impl QueryStream {
    /// Number of arrival batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether the stream holds no batches.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Total operations across all batches (queries *and* mutations;
    /// [`QueryStream::mix_counts`] separates the two).
    pub fn total_ops(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }

    /// Operation counts across the stream, by kind.
    pub fn mix_counts(&self) -> MixCounts {
        let mut counts = MixCounts::default();
        for q in self.batches.iter().flatten() {
            match q.op {
                StreamOp::KnnThreshold { .. } => counts.knn += 1,
                StreamOp::RknnThreshold { .. } => counts.rknn += 1,
                StreamOp::TopProbableNn { .. } => counts.top_m += 1,
                StreamOp::Insert => counts.insert += 1,
                StreamOp::Delete => counts.delete += 1,
                StreamOp::Subscribe { .. } => counts.subscribe += 1,
            }
        }
        counts
    }
}

impl QueryStreamConfig {
    /// Generates the stream. Operation objects follow `object_config`'s
    /// data distribution (the paper's protocol for reference objects),
    /// except that a `hotspot_fraction` of them — when `hotspots > 0` —
    /// center near one of `hotspots` randomly placed hot-spot points,
    /// modelling many users querying (and churning) the same region,
    /// which maximizes both the shared work a batched executor can
    /// exploit and the cache invalidation pressure mutations put on an
    /// engine-owned decomposition cache.
    ///
    /// # Panics
    /// Panics if every mix weight is zero or any weight is negative.
    pub fn generate(&self, object_config: &SyntheticConfig) -> QueryStream {
        assert!(
            self.knn_weight >= 0.0
                && self.rknn_weight >= 0.0
                && self.top_m_weight >= 0.0
                && self.insert_weight >= 0.0
                && self.delete_weight >= 0.0
                && self.subscribe_weight >= 0.0,
            "mix weights must be non-negative"
        );
        let total = self.knn_weight
            + self.rknn_weight
            + self.top_m_weight
            + self.insert_weight
            + self.delete_weight
            + self.subscribe_weight;
        assert!(total > 0.0, "at least one mix weight must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dims = object_config.dims;
        let centers: Vec<Point> = (0..self.hotspots)
            .map(|_| {
                Point::new(
                    (0..dims)
                        .map(|_| rng.gen_range(0.0..1.0))
                        .collect::<Vec<f64>>(),
                )
            })
            .collect();
        let batches = (0..self.batches)
            .map(|_| {
                (0..self.batch_size)
                    .map(|_| {
                        let object = if !centers.is_empty()
                            && rng.gen_range(0.0..1.0) < self.hotspot_fraction
                        {
                            let center = &centers[rng.gen_range(0..centers.len())];
                            self.hotspot_object(center, object_config, &mut rng)
                        } else {
                            object_config.generate_object(&mut rng)
                        };
                        let pick = rng.gen_range(0.0..total);
                        let op = if pick < self.knn_weight {
                            StreamOp::KnnThreshold {
                                k: self.k,
                                tau: self.tau,
                            }
                        } else if pick < self.knn_weight + self.rknn_weight {
                            StreamOp::RknnThreshold {
                                k: self.k,
                                tau: self.tau,
                            }
                        } else if pick < self.knn_weight + self.rknn_weight + self.top_m_weight {
                            StreamOp::TopProbableNn { m: self.m }
                        } else if pick
                            < self.knn_weight
                                + self.rknn_weight
                                + self.top_m_weight
                                + self.insert_weight
                        {
                            StreamOp::Insert
                        } else if pick
                            < self.knn_weight
                                + self.rknn_weight
                                + self.top_m_weight
                                + self.insert_weight
                                + self.delete_weight
                        {
                            StreamOp::Delete
                        } else {
                            StreamOp::Subscribe {
                                k: self.k,
                                tau: self.tau,
                            }
                        };
                        StreamQuery { object, op }
                    })
                    .collect()
            })
            .collect();
        QueryStream { batches }
    }

    /// An object centered within `hotspot_spread` of a hot-spot center;
    /// extents and density family follow the data distribution's,
    /// exactly like uniform-drawn objects.
    fn hotspot_object(
        &self,
        center: &Point,
        object_config: &SyntheticConfig,
        rng: &mut StdRng,
    ) -> UncertainObject {
        let c: Vec<f64> = (0..object_config.dims)
            .map(|d| center[d] + rng.gen_range(-self.hotspot_spread..self.hotspot_spread))
            .collect();
        object_config.generate_object_at(c, rng)
    }
}

/// How [`serve_stream`] executes the queries of each arrival batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// One call per query through the per-query entry points (the
    /// baseline a serving system without batching would run).
    Sequential,
    /// One [`Engine::run_batch`] per arrival batch (grouped descent,
    /// cross-query decomposition cache, scratch reuse, `batch_threads`
    /// fan-out).
    Batched,
}

/// An owned engine [`serve_stream`] can drive: the mutation, query and
/// shutdown surface the stream driver needs, implemented by the plain
/// [`Engine`] and the sharded [`ShardedEngine`]. Both implementations
/// delegate straight to the engine's own entry points, so serving the
/// same stream through either returns bit-identical results.
pub trait StreamEngine {
    /// Applies an arrival ([`StreamOp::Insert`]).
    fn stream_insert(&mut self, object: UncertainObject);
    /// Applies a departure ([`StreamOp::Delete`]): removes the live
    /// object nearest `probe`, returning whether one existed.
    fn stream_remove_nearest(&mut self, probe: &Rect) -> bool;
    /// Probabilistic threshold kNN (the engine's own entry point).
    fn stream_knn(&self, q: &UncertainObject, k: usize, tau: f64) -> Vec<ThresholdResult>;
    /// Probabilistic threshold RkNN.
    fn stream_rknn(&self, q: &UncertainObject, k: usize, tau: f64) -> Vec<ThresholdResult>;
    /// Top-`m` probable nearest neighbours.
    fn stream_top_m(&self, q: &UncertainObject, m: usize) -> Vec<ThresholdResult>;
    /// Registers a standing kNN query ([`StreamOp::Subscribe`]),
    /// returning its initial result set. Maintenance deltas queue in
    /// the engine (drain with its `take_standing_deltas`).
    fn stream_subscribe(&mut self, q: &UncertainObject, k: usize, tau: f64)
        -> Vec<ThresholdResult>;
    /// One shared-work pass over a query batch.
    fn stream_run_batch(&self, batch: &QueryBatch) -> Vec<Vec<ThresholdResult>>;
    /// The graceful-shutdown handshake: WAL fsync + final checkpoint.
    ///
    /// # Errors
    /// Fails when a durable engine cannot flush or checkpoint.
    fn stream_flush(&mut self) -> Result<(), DurableError>;
}

impl StreamEngine for Engine {
    fn stream_insert(&mut self, object: UncertainObject) {
        self.insert(object);
    }
    fn stream_remove_nearest(&mut self, probe: &Rect) -> bool {
        match self.nearest(probe) {
            Some(id) => {
                self.remove(id);
                true
            }
            None => false,
        }
    }
    fn stream_knn(&self, q: &UncertainObject, k: usize, tau: f64) -> Vec<ThresholdResult> {
        self.knn_threshold(q, k, tau)
    }
    fn stream_rknn(&self, q: &UncertainObject, k: usize, tau: f64) -> Vec<ThresholdResult> {
        self.rknn_threshold(q, k, tau)
    }
    fn stream_top_m(&self, q: &UncertainObject, m: usize) -> Vec<ThresholdResult> {
        self.top_probable_nn(q, m)
    }
    fn stream_subscribe(
        &mut self,
        q: &UncertainObject,
        k: usize,
        tau: f64,
    ) -> Vec<ThresholdResult> {
        self.subscribe(q.clone(), StandingSpec::Knn { k, tau }).1
    }
    fn stream_run_batch(&self, batch: &QueryBatch) -> Vec<Vec<ThresholdResult>> {
        self.run_batch(batch)
    }
    fn stream_flush(&mut self) -> Result<(), DurableError> {
        self.wal_sync()?;
        self.checkpoint()
    }
}

impl StreamEngine for ShardedEngine {
    fn stream_insert(&mut self, object: UncertainObject) {
        self.insert(object);
    }
    fn stream_remove_nearest(&mut self, probe: &Rect) -> bool {
        match self.nearest(probe) {
            Some(id) => {
                self.remove(id);
                true
            }
            None => false,
        }
    }
    fn stream_knn(&self, q: &UncertainObject, k: usize, tau: f64) -> Vec<ThresholdResult> {
        self.knn_threshold(q, k, tau)
    }
    fn stream_rknn(&self, q: &UncertainObject, k: usize, tau: f64) -> Vec<ThresholdResult> {
        self.rknn_threshold(q, k, tau)
    }
    fn stream_top_m(&self, q: &UncertainObject, m: usize) -> Vec<ThresholdResult> {
        self.top_probable_nn(q, m)
    }
    fn stream_subscribe(
        &mut self,
        q: &UncertainObject,
        k: usize,
        tau: f64,
    ) -> Vec<ThresholdResult> {
        self.subscribe(q.clone(), StandingSpec::Knn { k, tau }).1
    }
    fn stream_run_batch(&self, batch: &QueryBatch) -> Vec<Vec<ThresholdResult>> {
        self.run_batch(batch)
    }
    fn stream_flush(&mut self) -> Result<(), DurableError> {
        self.wal_sync()?;
        self.checkpoint()
    }
}

/// Drives a stream through the owned engine, batch by batch, and
/// returns the per-batch, per-entry results (aligned with the stream;
/// mutation entries yield an empty result vector).
///
/// Each arrival batch applies its **mutations first, in stream order**
/// — [`StreamOp::Insert`] adds the entry's object,
/// [`StreamOp::Delete`] removes the live object nearest the entry's
/// probe ([`Engine::nearest`]; a no-op on an empty database) — then
/// executes the batch's queries against the settled state. Both modes
/// apply mutations identically, so they return bit-identical results;
/// they differ only in how query work is shared, which is exactly what
/// the `serve` benchmark measures as sustained operations/sec. With
/// [`udb_core::IdcaConfig::decomp_cache_entries`] > 0 the engine's
/// decomposition cache stays warm *across* batches — the serving
/// default this driver is built to measure.
pub fn serve_stream<E: StreamEngine>(
    engine: &mut E,
    stream: &QueryStream,
    mode: ServeMode,
) -> ServeResults {
    serve_batches(engine, stream, mode, &mut ServeReport::default())
}

/// Per-batch, per-entry query results from a served stream, aligned
/// with the stream's entries (mutation entries yield an empty vector).
pub type ServeResults = Vec<Vec<Vec<ThresholdResult>>>;

/// What [`serve_stream_with_report`] did to the engine, alongside the
/// query results: the applied-mutation counts a serving operator
/// reconciles against the upstream feed, and whether the end-of-stream
/// durability handshake ran.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Objects inserted from [`StreamOp::Insert`] entries.
    pub inserts: u64,
    /// Objects removed by [`StreamOp::Delete`] entries. Can trail the
    /// stream's delete count: a delete against an empty database is a
    /// no-op.
    pub removes: u64,
    /// Query entries executed (threshold kNN/RkNN + top-`m`).
    pub queries: u64,
    /// Whether the graceful-shutdown handshake ran at stream end: WAL
    /// fsync + final checkpoint on a durable engine, so a crash *after*
    /// the stream loses nothing. Always `true` after
    /// [`serve_stream_with_report`] returns `Ok`; in-memory engines
    /// still get the checkpoint's compaction + index rebuild.
    pub flushed: bool,
}

/// [`serve_stream`] with a graceful shutdown: after the last batch the
/// engine's WAL is fsynced and a final checkpoint is taken
/// ([`Engine::wal_sync`] + [`Engine::checkpoint`]), so every
/// acknowledged mutation is on stable storage and recovery replays
/// nothing. Returns the per-batch results plus a [`ServeReport`] of
/// applied mutation counts.
///
/// # Errors
/// Fails when the durable engine cannot flush or checkpoint; results
/// and counts up to that point are lost to the caller, but the WAL
/// still holds every mutation that was acknowledged mid-stream.
pub fn serve_stream_with_report<E: StreamEngine>(
    engine: &mut E,
    stream: &QueryStream,
    mode: ServeMode,
) -> Result<(ServeResults, ServeReport), udb_core::DurableError> {
    let mut report = ServeReport::default();
    let results = serve_batches(engine, stream, mode, &mut report);
    engine.stream_flush()?;
    report.flushed = true;
    Ok((results, report))
}

fn serve_batches<E: StreamEngine>(
    engine: &mut E,
    stream: &QueryStream,
    mode: ServeMode,
    report: &mut ServeReport,
) -> ServeResults {
    stream
        .batches
        .iter()
        .map(|batch| {
            // mutations settle first (identically in both modes);
            // subscriptions register here too — their initial answer is
            // computed against the settled state, in both modes, and
            // slots into the entry's result position below
            let mut sub_results: std::collections::HashMap<usize, Vec<ThresholdResult>> =
                std::collections::HashMap::new();
            for (i, entry) in batch.iter().enumerate() {
                match entry.op {
                    StreamOp::Insert => {
                        engine.stream_insert(entry.object.clone());
                        report.inserts += 1;
                    }
                    StreamOp::Delete if engine.stream_remove_nearest(entry.object.mbr()) => {
                        report.removes += 1;
                    }
                    StreamOp::Subscribe { k, tau } => {
                        sub_results.insert(i, engine.stream_subscribe(&entry.object, k, tau));
                    }
                    _ => {}
                }
            }
            report.queries += batch.iter().filter(|q| !q.op.is_mutation()).count() as u64;
            match mode {
                ServeMode::Sequential => batch
                    .iter()
                    .enumerate()
                    .map(|(i, q)| match q.op {
                        StreamOp::KnnThreshold { k, tau } => engine.stream_knn(&q.object, k, tau),
                        StreamOp::RknnThreshold { k, tau } => engine.stream_rknn(&q.object, k, tau),
                        StreamOp::TopProbableNn { m } => engine.stream_top_m(&q.object, m),
                        StreamOp::Subscribe { .. } => sub_results.remove(&i).unwrap_or_default(),
                        StreamOp::Insert | StreamOp::Delete => Vec::new(),
                    })
                    .collect(),
                ServeMode::Batched => {
                    let mut qb = QueryBatch::new();
                    for q in batch {
                        match q.op {
                            StreamOp::KnnThreshold { k, tau } => {
                                qb.knn_threshold(q.object.clone(), k, tau);
                            }
                            StreamOp::RknnThreshold { k, tau } => {
                                qb.rknn_threshold(q.object.clone(), k, tau);
                            }
                            StreamOp::TopProbableNn { m } => {
                                qb.top_probable_nn(q.object.clone(), m);
                            }
                            StreamOp::Insert | StreamOp::Delete | StreamOp::Subscribe { .. } => {}
                        }
                    }
                    let mut results = engine.stream_run_batch(&qb).into_iter();
                    batch
                        .iter()
                        .enumerate()
                        .map(|(i, q)| match q.op {
                            StreamOp::Insert | StreamOp::Delete => Vec::new(),
                            StreamOp::Subscribe { .. } => {
                                sub_results.remove(&i).unwrap_or_default()
                            }
                            _ => results.next().expect("one result set per query"),
                        })
                        .collect()
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_core::IdcaConfig;

    fn small_cfg() -> QueryStreamConfig {
        QueryStreamConfig {
            batches: 3,
            batch_size: 5,
            ..Default::default()
        }
    }

    fn object_cfg() -> SyntheticConfig {
        SyntheticConfig {
            n: 100,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_seed_stable() {
        let cfg = small_cfg();
        let a = cfg.generate(&object_cfg());
        let b = cfg.generate(&object_cfg());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.total_ops(), 15);
        for (ba, bb) in a.batches.iter().zip(b.batches.iter()) {
            assert_eq!(ba.len(), bb.len());
            for (x, y) in ba.iter().zip(bb.iter()) {
                assert_eq!(x.op, y.op);
                assert_eq!(x.object.mbr(), y.object.mbr());
            }
        }
    }

    #[test]
    fn mutating_stream_is_seed_stable() {
        let cfg = QueryStreamConfig {
            insert_weight: 0.2,
            delete_weight: 0.1,
            ..small_cfg()
        };
        let a = cfg.generate(&object_cfg());
        let b = cfg.generate(&object_cfg());
        for (ba, bb) in a.batches.iter().zip(b.batches.iter()) {
            for (x, y) in ba.iter().zip(bb.iter()) {
                assert_eq!(x.op, y.op);
                assert_eq!(x.object.mbr(), y.object.mbr());
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_cfg().generate(&object_cfg());
        let b = QueryStreamConfig {
            seed: 999,
            ..small_cfg()
        }
        .generate(&object_cfg());
        let same = a
            .batches
            .iter()
            .flatten()
            .zip(b.batches.iter().flatten())
            .all(|(x, y)| x.object.mbr() == y.object.mbr());
        assert!(!same);
    }

    #[test]
    fn mix_ratios_are_respected() {
        // a large stream: empirical mix within a loose tolerance of the
        // configured weights, mutations included
        let cfg = QueryStreamConfig {
            batches: 40,
            batch_size: 25,
            knn_weight: 0.4,
            rknn_weight: 0.2,
            top_m_weight: 0.2,
            insert_weight: 0.12,
            delete_weight: 0.08,
            ..Default::default()
        };
        let stream = cfg.generate(&object_cfg());
        let counts = stream.mix_counts();
        let total = stream.total_ops() as f64;
        assert_eq!(counts.total(), stream.total_ops());
        assert!((counts.knn as f64 / total - 0.4).abs() < 0.08, "{counts:?}");
        assert!(
            (counts.rknn as f64 / total - 0.2).abs() < 0.08,
            "{counts:?}"
        );
        assert!(
            (counts.top_m as f64 / total - 0.2).abs() < 0.08,
            "{counts:?}"
        );
        assert!(
            (counts.insert as f64 / total - 0.12).abs() < 0.06,
            "{counts:?}"
        );
        assert!(
            (counts.delete as f64 / total - 0.08).abs() < 0.06,
            "{counts:?}"
        );
        assert_eq!(counts.mutations(), counts.insert + counts.delete);
        assert_eq!(counts.queries() + counts.mutations(), counts.total());
    }

    #[test]
    fn zero_weight_ops_never_generated() {
        let cfg = QueryStreamConfig {
            batches: 10,
            batch_size: 10,
            knn_weight: 1.0,
            rknn_weight: 0.0,
            top_m_weight: 0.0,
            ..Default::default()
        };
        let counts = cfg.generate(&object_cfg()).mix_counts();
        assert_eq!(counts.knn, 100);
        assert_eq!(counts.rknn, 0);
        assert_eq!(counts.top_m, 0);
        assert_eq!(counts.mutations(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one mix weight")]
    fn all_zero_weights_rejected() {
        let cfg = QueryStreamConfig {
            knn_weight: 0.0,
            rknn_weight: 0.0,
            top_m_weight: 0.0,
            ..Default::default()
        };
        cfg.generate(&object_cfg());
    }

    #[test]
    fn hotspot_queries_cluster_around_centers() {
        // all-hot-spot stream with a tiny spread: operation centers must
        // cluster on at most `hotspots` distinct locations
        let cfg = QueryStreamConfig {
            batches: 4,
            batch_size: 10,
            hotspots: 2,
            hotspot_fraction: 1.0,
            hotspot_spread: 1e-4,
            ..Default::default()
        };
        let stream = cfg.generate(&object_cfg());
        let centers: Vec<Vec<f64>> = stream
            .batches
            .iter()
            .flatten()
            .map(|q| {
                let c = q.object.mbr().center();
                vec![c[0], c[1]]
            })
            .collect();
        // greedily cluster with a radius well above the spread but far
        // below the unit-space scale
        let mut reps: Vec<&Vec<f64>> = Vec::new();
        for c in &centers {
            if !reps
                .iter()
                .any(|r| ((r[0] - c[0]).powi(2) + (r[1] - c[1]).powi(2)).sqrt() < 0.01)
            {
                reps.push(c);
            }
        }
        assert!(reps.len() <= 2, "found {} clusters", reps.len());
    }

    #[test]
    fn uniform_stream_has_no_clusters_constraint() {
        let cfg = QueryStreamConfig {
            hotspots: 0,
            ..small_cfg()
        };
        let stream = cfg.generate(&object_cfg());
        assert_eq!(stream.total_ops(), 15);
    }

    #[test]
    fn serve_modes_agree_end_to_end() {
        let object_cfg = SyntheticConfig {
            n: 150,
            max_extent: 0.02,
            ..Default::default()
        };
        let db = object_cfg.generate();
        let idca = IdcaConfig {
            max_iterations: 4,
            ..Default::default()
        };
        let stream = QueryStreamConfig {
            batches: 2,
            batch_size: 4,
            k: 3,
            ..Default::default()
        }
        .generate(&object_cfg);
        let mut seq_engine = Engine::with_config(db.clone(), idca.clone());
        let mut bat_engine = Engine::with_config(db, idca);
        let seq = serve_stream(&mut seq_engine, &stream, ServeMode::Sequential);
        let bat = serve_stream(&mut bat_engine, &stream, ServeMode::Batched);
        assert_eq!(seq, bat);
    }

    #[test]
    fn serve_modes_agree_with_mutations() {
        let object_cfg = SyntheticConfig {
            n: 120,
            max_extent: 0.02,
            ..Default::default()
        };
        let db = object_cfg.generate();
        let idca = IdcaConfig {
            max_iterations: 3,
            ..Default::default()
        };
        let stream = QueryStreamConfig {
            batches: 3,
            batch_size: 6,
            k: 3,
            insert_weight: 0.25,
            delete_weight: 0.2,
            ..Default::default()
        }
        .generate(&object_cfg);
        assert!(
            stream.mix_counts().mutations() > 0,
            "stream must exercise the mutation path"
        );
        let mut seq_engine = Engine::with_config(db.clone(), idca.clone());
        let mut bat_engine = Engine::with_config(db.clone(), idca.clone());
        let seq = serve_stream(&mut seq_engine, &stream, ServeMode::Sequential);
        let bat = serve_stream(&mut bat_engine, &stream, ServeMode::Batched);
        assert_eq!(seq, bat);
        // both engines converged to the same mutated database; the db
        // never empties mid-stream, so every delete found a victim
        let counts = stream.mix_counts();
        let expected = db.len() + counts.insert - counts.delete;
        assert_eq!(seq_engine.db().len(), expected);
        assert_eq!(bat_engine.db().len(), expected);
        seq_engine.tree().check_invariants();
    }

    #[test]
    fn sharded_serve_matches_single_engine() {
        // the ShardedEngine driver: same stream, same mode, sharded 3
        // ways — results are bit-identical to the single engine because
        // routing preserves arrival order in the global id space
        let object_cfg = SyntheticConfig {
            n: 120,
            max_extent: 0.02,
            ..Default::default()
        };
        let db = object_cfg.generate();
        let idca = IdcaConfig {
            max_iterations: 3,
            ..Default::default()
        };
        let stream = QueryStreamConfig {
            batches: 3,
            batch_size: 6,
            k: 3,
            insert_weight: 0.25,
            delete_weight: 0.2,
            ..Default::default()
        }
        .generate(&object_cfg);
        let mut single = Engine::with_config(db.clone(), idca.clone());
        let mut sharded = ShardedEngine::with_config(db, idca, 3);
        for mode in [ServeMode::Sequential, ServeMode::Batched] {
            let a = serve_stream(&mut single, &stream, mode);
            let b = serve_stream(&mut sharded, &stream, mode);
            assert_eq!(a, b);
        }
        assert_eq!(single.db().len(), sharded.len());
    }
}
