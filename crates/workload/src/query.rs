//! Query-workload helpers: the paper's protocol for choosing query pairs.
//!
//! "Unless otherwise stated, for 100 queries, we chose B to be the object
//! with the 10th smallest MinDist to the reference object R." (§VII)

use rand::rngs::StdRng;
use rand::SeedableRng;
use udb_geometry::LpNorm;
use udb_object::{Database, ObjectId, UncertainObject};

use crate::synthetic::SyntheticConfig;

/// The database object with the `rank`-th smallest MinDist (1-based) from
/// the reference object `r`. Returns `None` if the database has fewer than
/// `rank` objects.
pub fn target_by_min_dist_rank(
    db: &Database,
    r: &UncertainObject,
    rank: usize,
    norm: LpNorm,
) -> Option<ObjectId> {
    assert!(rank >= 1, "ranks are 1-based");
    if db.len() < rank {
        return None;
    }
    let mut dists: Vec<(f64, ObjectId)> = db
        .iter()
        .map(|(id, o)| (o.mbr().min_dist_rect(r.mbr(), norm), id))
        .collect();
    // partial selection would do; a full sort keeps this simple and the
    // cost is dominated by refinement anyway
    dists.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
    Some(dists[rank - 1].1)
}

/// A reproducible set of query pairs `(R, B)` following the paper's
/// protocol: `R` drawn from the data distribution, `B` the object with the
/// given MinDist rank.
#[derive(Debug)]
pub struct QuerySet {
    /// Reference (query) objects.
    pub references: Vec<UncertainObject>,
    /// Chosen targets, aligned with `references`.
    pub targets: Vec<ObjectId>,
}

impl QuerySet {
    /// Builds `count` query pairs against `db`. Reference objects are
    /// generated from `object_config` (the same distribution the database
    /// came from); targets are the `rank`-th MinDist objects.
    pub fn generate(
        db: &Database,
        object_config: &SyntheticConfig,
        count: usize,
        rank: usize,
        norm: LpNorm,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut references = Vec::with_capacity(count);
        let mut targets = Vec::with_capacity(count);
        for _ in 0..count {
            let r = object_config.generate_object(&mut rng);
            let b = target_by_min_dist_rank(db, &r, rank, norm)
                .expect("database smaller than requested rank");
            references.push(r);
            targets.push(b);
        }
        QuerySet {
            references,
            targets,
        }
    }

    /// Number of query pairs.
    pub fn len(&self) -> usize {
        self.references.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.references.is_empty()
    }

    /// Iterates `(reference, target)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&UncertainObject, ObjectId)> {
        self.references.iter().zip(self.targets.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_geometry::Point;

    fn tiny_db() -> Database {
        // certain points at x = 0, 1, 2, 3 on a line
        Database::from_objects(
            (0..4)
                .map(|i| UncertainObject::certain(Point::from([i as f64, 0.0])))
                .collect(),
        )
    }

    #[test]
    fn rank_selection_orders_by_min_dist() {
        let db = tiny_db();
        let r = UncertainObject::certain(Point::from([0.1, 0.0]));
        assert_eq!(
            target_by_min_dist_rank(&db, &r, 1, LpNorm::L2),
            Some(ObjectId(0))
        );
        assert_eq!(
            target_by_min_dist_rank(&db, &r, 2, LpNorm::L2),
            Some(ObjectId(1))
        );
        assert_eq!(
            target_by_min_dist_rank(&db, &r, 4, LpNorm::L2),
            Some(ObjectId(3))
        );
        assert_eq!(target_by_min_dist_rank(&db, &r, 5, LpNorm::L2), None);
    }

    #[test]
    fn query_set_is_reproducible() {
        let cfg = SyntheticConfig {
            n: 200,
            ..Default::default()
        };
        let db = cfg.generate();
        let a = QuerySet::generate(&db, &cfg, 5, 10, LpNorm::L2, 42);
        let b = QuerySet::generate(&db, &cfg, 5, 10, LpNorm::L2, 42);
        assert_eq!(a.len(), 5);
        assert_eq!(a.targets, b.targets);
        for (x, y) in a.references.iter().zip(b.references.iter()) {
            assert_eq!(x.mbr(), y.mbr());
        }
    }

    #[test]
    fn query_set_iter_alignment() {
        let cfg = SyntheticConfig {
            n: 50,
            ..Default::default()
        };
        let db = cfg.generate();
        let qs = QuerySet::generate(&db, &cfg, 3, 1, LpNorm::L2, 7);
        for (r, b) in qs.iter() {
            // rank-1 target has the smallest MinDist: no other object may
            // be strictly closer
            let bd = db.get(b).mbr().min_dist_rect(r.mbr(), LpNorm::L2);
            for (_, o) in db.iter() {
                assert!(o.mbr().min_dist_rect(r.mbr(), LpNorm::L2) >= bd - 1e-12);
            }
        }
    }
}
