//! Synthetic rectangle workload (§VII defaults).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use udb_geometry::{Point, Rect};
use udb_object::{Database, UncertainObject};
use udb_pdf::{GaussianPdf, HistogramPdf, Pdf};

/// Which density is attached to each generated uncertainty rectangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PdfKind {
    /// Uniform density over the rectangle (the paper's synthetic default).
    #[default]
    Uniform,
    /// Truncated Gaussian centered in the rectangle (σ = extent / 4).
    Gaussian,
    /// Correlated histogram density (bivariate Gaussian with random
    /// correlation, 8×8 grid) — exercises the dependent-attribute model.
    CorrelatedHistogram,
}

/// Parameters of the synthetic workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of objects (paper default: 10,000).
    pub n: usize,
    /// Dimensionality (paper: 2).
    pub dims: usize,
    /// Maximum relative extent per dimension (paper default: 0.004).
    pub max_extent: f64,
    /// Density family.
    pub pdf: PdfKind,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            n: 10_000,
            dims: 2,
            max_extent: 0.004,
            pdf: PdfKind::Uniform,
            seed: 0x1CDE_2011,
        }
    }
}

impl SyntheticConfig {
    /// Generates the database.
    pub fn generate(&self) -> Database {
        assert!(self.dims >= 1, "dimensionality must be positive");
        assert!(self.max_extent > 0.0, "max extent must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let objects: Vec<UncertainObject> = (0..self.n)
            .map(|_| self.generate_object(&mut rng))
            .collect();
        Database::from_objects(objects)
    }

    /// Generates one object with the config's parameters (used for query
    /// objects too: the paper's reference objects follow the data
    /// distribution).
    pub fn generate_object(&self, rng: &mut StdRng) -> UncertainObject {
        let center: Vec<f64> = (0..self.dims).map(|_| rng.gen_range(0.0..1.0)).collect();
        self.generate_object_at(center, rng)
    }

    /// Generates one object at an explicit center (extents and density
    /// follow the config's parameters exactly like
    /// [`SyntheticConfig::generate_object`], which delegates here after
    /// drawing its center). Query-stream generators use this to place
    /// hot-spot queries that still follow the configured density family.
    pub fn generate_object_at(&self, center: Vec<f64>, rng: &mut StdRng) -> UncertainObject {
        assert_eq!(center.len(), self.dims, "center dimensionality mismatch");
        let half: Vec<f64> = (0..self.dims)
            .map(|_| 0.5 * rng.gen_range(f64::MIN_POSITIVE..=self.max_extent))
            .collect();
        let support = Rect::centered(&Point::new(center.clone()), &half);
        let pdf = match self.pdf {
            PdfKind::Uniform => Pdf::uniform(support),
            PdfKind::Gaussian => {
                let std: Vec<f64> = half.iter().map(|h| (h / 2.0).max(1e-12)).collect();
                GaussianPdf::new(Point::new(center), std, support).into()
            }
            PdfKind::CorrelatedHistogram => {
                assert_eq!(
                    self.dims, 2,
                    "correlated histogram workload is two-dimensional"
                );
                let rho: f64 = rng.gen_range(-0.9..0.9);
                let std = [(half[0] / 2.0).max(1e-12), (half[1] / 2.0).max(1e-12)];
                HistogramPdf::from_correlated_gaussian(Point::new(center), std, rho, support, 8)
                    .into()
            }
        };
        UncertainObject::new(pdf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = SyntheticConfig::default();
        assert_eq!(c.n, 10_000);
        assert_eq!(c.dims, 2);
        assert!((c.max_extent - 0.004).abs() < 1e-12);
    }

    #[test]
    fn generation_is_deterministic() {
        let c = SyntheticConfig {
            n: 50,
            ..Default::default()
        };
        let a = c.generate();
        let b = c.generate();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.1.mbr(), y.1.mbr());
        }
    }

    #[test]
    fn extents_respect_maximum() {
        let c = SyntheticConfig {
            n: 200,
            max_extent: 0.01,
            ..Default::default()
        };
        let db = c.generate();
        for (_, o) in db.iter() {
            for d in 0..2 {
                let e = o.mbr().extent(d);
                assert!(e > 0.0 && e <= 0.01 + 1e-12, "extent {e}");
            }
        }
    }

    #[test]
    fn centers_live_in_unit_space() {
        let c = SyntheticConfig {
            n: 100,
            ..Default::default()
        };
        let db = c.generate();
        for (_, o) in db.iter() {
            let center = o.mbr().center();
            assert!((0.0..=1.0).contains(&center[0]));
            assert!((0.0..=1.0).contains(&center[1]));
        }
    }

    #[test]
    fn gaussian_variant_generates() {
        let c = SyntheticConfig {
            n: 20,
            pdf: PdfKind::Gaussian,
            ..Default::default()
        };
        let db = c.generate();
        assert_eq!(db.len(), 20);
        for (_, o) in db.iter() {
            assert!(matches!(o.pdf(), Pdf::Gaussian(_)));
        }
    }

    #[test]
    fn correlated_variant_generates() {
        let c = SyntheticConfig {
            n: 5,
            pdf: PdfKind::CorrelatedHistogram,
            ..Default::default()
        };
        let db = c.generate();
        for (_, o) in db.iter() {
            assert!(matches!(o.pdf(), Pdf::Histogram(_)));
            // density normalized
            assert!((o.pdf().mass_in(o.mbr()) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticConfig {
            n: 10,
            seed: 1,
            ..Default::default()
        }
        .generate();
        let b = SyntheticConfig {
            n: 10,
            seed: 2,
            ..Default::default()
        }
        .generate();
        let same = a.iter().zip(b.iter()).all(|(x, y)| x.1.mbr() == y.1.mbr());
        assert!(!same);
    }
}
