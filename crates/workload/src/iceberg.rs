//! Simulated International Ice Patrol (IIP) iceberg-sightings workload.
//!
//! The paper uses the 2009 IIP Iceberg Sightings dataset (6,216 objects):
//! sighted positions are certain 2-D means, and Gaussian noise is added
//! "such that the passed time period since the latest date of sighting
//! corresponds to the degree of uncertainty (i.e. the extent)", with
//! extents normalized so the maximum per-dimension extent is 0.0004.
//!
//! The original data file is not redistributable in this workspace, so the
//! generator reproduces its statistical shape: sighting positions along
//! the "iceberg alley" corridor of the North-West Atlantic (a band from
//! the Labrador coast toward the Grand Banks), sighting dates across 2009,
//! and age-proportional Gaussian uncertainty. Positions are normalized to
//! the unit square, matching the paper's normalized extents.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use udb_geometry::{Point, Rect};
use udb_object::{Database, UncertainObject};
use udb_pdf::{math::sample_standard_normal, GaussianPdf};

/// Parameters of the simulated iceberg workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IcebergConfig {
    /// Number of sightings (paper: 6,216).
    pub n: usize,
    /// Maximum extent of an object in either dimension after
    /// normalization (paper: 0.0004).
    pub max_extent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IcebergConfig {
    fn default() -> Self {
        IcebergConfig {
            n: 6_216,
            max_extent: 0.0004,
            seed: 0x11CE_2009,
        }
    }
}

impl IcebergConfig {
    /// Generates the simulated sightings database.
    pub fn generate(&self) -> Database {
        assert!(self.max_extent > 0.0);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut objects = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            // Iceberg alley: a north-east to south-west corridor. Sample a
            // position along the corridor axis plus lateral spread; in
            // normalized coordinates the corridor runs from (0.15, 0.9) to
            // (0.75, 0.1) with lateral sigma 0.07, plus a small uniform
            // background of stray sightings.
            let center = if rng.gen_bool(0.92) {
                let t: f64 = rng.gen_range(0.0..1.0);
                let along_x = 0.15 + 0.60 * t;
                let along_y = 0.90 - 0.80 * t;
                let lateral = 0.07 * sample_standard_normal(&mut rng);
                // corridor direction ~ (0.6, −0.8); normal ~ (0.8, 0.6)
                let x = (along_x + 0.8 * lateral).clamp(0.0, 1.0);
                let y = (along_y + 0.6 * lateral).clamp(0.0, 1.0);
                [x, y]
            } else {
                [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]
            };
            // sighting age in days (0 = sighted on the reference date, 365
            // = a year old); uncertainty extent grows linearly with age,
            // never zero (same-day sightings still drift)
            let age_days: f64 = rng.gen_range(0.0..365.0);
            let extent = self.max_extent * (0.05 + 0.95 * age_days / 365.0);
            let half = extent / 2.0;
            let mean = Point::from(center);
            let support = Rect::centered(&mean, &[half, half]);
            // Gaussian noise truncated at the extent box; σ = extent / 4
            // puts the box at ±2σ
            let sigma = (extent / 4.0).max(1e-12);
            let pdf = GaussianPdf::new(mean, vec![sigma, sigma], support);
            objects.push(UncertainObject::new(pdf.into()));
        }
        Database::from_objects(objects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_shape() {
        let c = IcebergConfig::default();
        assert_eq!(c.n, 6_216);
        assert!((c.max_extent - 0.0004).abs() < 1e-12);
    }

    #[test]
    fn extents_bounded_and_varied() {
        let db = IcebergConfig {
            n: 500,
            ..Default::default()
        }
        .generate();
        let mut max_seen = 0.0f64;
        let mut min_seen = f64::INFINITY;
        for (_, o) in db.iter() {
            for d in 0..2 {
                let e = o.mbr().extent(d);
                assert!(e <= 0.0004 + 1e-12, "extent {e}");
                assert!(e > 0.0);
                max_seen = max_seen.max(e);
                min_seen = min_seen.min(e);
            }
        }
        // ages vary, so extents must span a real range
        assert!(max_seen > 4.0 * min_seen, "extents should vary with age");
    }

    #[test]
    fn positions_cluster_along_corridor() {
        let db = IcebergConfig {
            n: 2_000,
            ..Default::default()
        }
        .generate();
        // the corridor has negative x/y correlation; verify on centers
        let centers: Vec<(f64, f64)> = db
            .iter()
            .map(|(_, o)| {
                let c = o.mbr().center();
                (c[0], c[1])
            })
            .collect();
        let n = centers.len() as f64;
        let mx = centers.iter().map(|c| c.0).sum::<f64>() / n;
        let my = centers.iter().map(|c| c.1).sum::<f64>() / n;
        let cov = centers.iter().map(|c| (c.0 - mx) * (c.1 - my)).sum::<f64>() / n;
        assert!(cov < -0.01, "corridor correlation missing: cov {cov}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = IcebergConfig {
            n: 100,
            ..Default::default()
        }
        .generate();
        let b = IcebergConfig {
            n: 100,
            ..Default::default()
        }
        .generate();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.1.mbr(), y.1.mbr());
        }
    }

    #[test]
    fn objects_are_gaussian() {
        let db = IcebergConfig {
            n: 10,
            ..Default::default()
        }
        .generate();
        for (_, o) in db.iter() {
            assert!(matches!(o.pdf(), udb_pdf::Pdf::Gaussian(_)));
        }
    }
}
