//! Standing queries: a subscription registry plus an incremental
//! maintainer that turns the request/response engine into a monitoring
//! system (the paper's continuous sensor/facility scenarios).
//!
//! A [`StandingQuery`] holds a registered kNN / RkNN / top-`m` query,
//! its current result set, and the *decided geometric bounds* the
//! refinement left behind — the kNN pruning radius `d_k`, the
//! per-candidate MaxDist margins, the per-object RkNN reach. On every
//! mutation the registry intersects the mutation's MBR(s) against those
//! bounds and proves, per subscription, one of three tiers:
//!
//! 1. **Skip** — the mutation lies beyond every registered bound; the
//!    stored results are provably unchanged and nothing runs.
//! 2. **Partial** — the candidate set is provably stable but some
//!    candidates' domination counts may have shifted; exactly those
//!    candidates re-refine through the *same* pipeline functions the
//!    full query runs, and the fresh bounds merge into the stored set.
//! 3. **Re-answer** — no bound proves stability (the conservative
//!    fallback): the query re-runs from scratch and the guards rebuild.
//!
//! Every tier decision is *purely geometric* (MinDist/MaxDist against
//! stored bounds), so the decisions — and therefore the maintained
//! result bits — are identical at every shard count, thread count and
//! cache capacity. Maintained results are bit-identical to re-answering
//! after every mutation (`tests/standing_equivalence.rs` proves it
//! property-style at 1/2/4 shards).
//!
//! # Why the guards are sound
//!
//! Refinement of a candidate pair `(B, R)` classifies every third
//! object `M` with the pair criterion: `M` is dropped outright when
//! `MinDist(M, R) > MaxDist(B, R)` (it can never dominate `B` w.r.t.
//! `R`, in any world). A mutation strictly beyond that reach therefore
//! leaves the pair's complete-domination count *and* influence set —
//! the refiner's entire input — unchanged, so its result bits cannot
//! move. For kNN/top-`m` the candidate *set* is
//! `{X : MinDist(X, q) ≤ d_k}` with `d_k` the k-th smallest MaxDist
//! over certainly existing objects: a mutation with `MinDist > d_k`
//! is outside the set before and after, and — since its MaxDist is at
//! least its MinDist — can neither pin nor unpin `d_k`. RkNN evaluates
//! one pair `(q, b)` per live object `b`, and its index veto probe only
//! inspects objects within `MinDist(q, b) ≤ MaxDist(q, b)` of `b`, so
//! the single per-object test `MinDist(M, b) ≤ MaxDist(q, b)` covers
//! both the probe and the refinement. Updates test old *and* new MBRs.

use udb_geometry::Rect;
use udb_object::{ObjectId, UncertainObject};

use crate::batch::{QueryView, SharedRefineCtx};
use crate::config::{ObjRef, RefineGoal};
use crate::engine::{attach, tighten_dk};
use crate::queries::ThresholdResult;
use crate::refiner::refine_lockstep;
use crate::router::QueryPlane;

/// What a standing query watches: the same parameter shapes as the
/// one-shot entry points ([`crate::Engine::knn_threshold`] /
/// `rknn_threshold` / `top_probable_nn`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StandingSpec {
    /// Probabilistic threshold kNN: `P(DomCount < k) > τ`.
    Knn { k: usize, tau: f64 },
    /// Probabilistic threshold reverse kNN.
    Rknn { k: usize, tau: f64 },
    /// Top-`m` probable nearest neighbours.
    TopM { m: usize },
}

/// Parameter validation shared by every subscribe entry point —
/// identical rules to the one-shot query entry points.
///
/// # Panics
/// Panics when `k`/`m` is zero or `tau` is outside `[0, 1)`.
pub(crate) fn validate_spec(spec: &StandingSpec) {
    match *spec {
        StandingSpec::Knn { k, tau } | StandingSpec::Rknn { k, tau } => {
            assert!(k >= 1, "k must be positive");
            assert!((0.0..1.0).contains(&tau), "tau must be in [0, 1)");
        }
        StandingSpec::TopM { m } => assert!(m >= 1, "m must be positive"),
    }
}

/// One result-set change pushed by the maintainer after a mutation
/// flipped a subscription: entries that appeared, ids that vanished,
/// and entries whose bounds moved. Empty diffs are never emitted.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultDelta {
    /// The subscription this delta belongs to.
    pub sub: u64,
    /// Results present now that were absent before (sorted by id).
    pub added: Vec<ThresholdResult>,
    /// Ids present before that are absent now (sorted).
    pub removed: Vec<ObjectId>,
    /// Results present in both whose bounds/iterations changed.
    pub changed: Vec<ThresholdResult>,
}

impl ResultDelta {
    fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }
}

/// Maintenance-effectiveness counters (the `STATS` reply's standing
/// section): how often a mutation was absorbed cheaply (skip or partial
/// re-refinement) vs. falling back to a full re-answer, and how many
/// deltas were pushed. Counted per `(mutation, subscription)` pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandingStats {
    /// Currently registered subscriptions.
    pub registered: usize,
    /// Mutations absorbed by a skip or partial re-refinement.
    pub maintained: u64,
    /// Mutations that fell back to a full re-answer.
    pub reanswered: u64,
    /// Non-empty result deltas queued for push.
    pub deltas: u64,
}

/// One applied mutation, described for the guard tests: the mutated
/// global id plus the MBR(s) involved — old for removals, new for
/// inserts, both for updates.
#[derive(Debug, Clone)]
pub(crate) struct Mutation {
    pub(crate) id: ObjectId,
    pub(crate) old: Option<Rect>,
    pub(crate) new: Option<Rect>,
}

impl Mutation {
    /// Smallest MinDist from any involved MBR to `r` — the distance the
    /// guard tiers compare against the stored bounds.
    fn min_dist_to(&self, r: &Rect, norm: udb_geometry::LpNorm) -> f64 {
        let mut d = f64::INFINITY;
        if let Some(old) = &self.old {
            d = d.min(old.min_dist_rect(r, norm));
        }
        if let Some(new) = &self.new {
            d = d.min(new.min_dist_rect(r, norm));
        }
        d
    }
}

/// Per-candidate guard of a kNN subscription: the candidate id and its
/// MaxDist to the query MBR (the pair's classification reach).
#[derive(Debug, Clone)]
struct CandGuard {
    id: ObjectId,
    max_d: f64,
}

/// The stored guard state of a kNN subscription.
#[derive(Debug, Clone, Default)]
struct KnnGuard {
    /// The exact candidate set of the last (re-)answer, sorted by id.
    cands: Vec<CandGuard>,
    /// The pruning radius: k-th smallest MaxDist over certainly
    /// existing candidates (`∞` with fewer than `k` certain objects —
    /// every mutation then re-answers).
    d_k: f64,
    /// The largest per-candidate MaxDist: mutations strictly beyond it
    /// touch no candidate pair and skip outright.
    rho: f64,
}

/// The stored guard state of a top-`m` subscription: the `k = 1`
/// candidate walk's bounds. Top-`m` refinement retires candidates
/// *cross-candidate* (a rival's lower bound can freeze an also-ran
/// early), so there is no sound per-candidate tier — maintenance is
/// skip or full re-answer.
#[derive(Debug, Clone, Default)]
struct TopMGuard {
    d_1: f64,
    rho: f64,
}

/// Per-live-object guard of an RkNN subscription: the object's MaxDist
/// reach from the query and its current (possibly vetoed/zero) result.
#[derive(Debug, Clone)]
struct RknnEntry {
    id: ObjectId,
    /// `MaxDist(q, b)` — both the veto probe radius bound and the pair
    /// `(q, b)`'s classification reach.
    max_qb: f64,
    /// The object's refined result; `None` when the index probe vetoed
    /// it or refinement proved `P = 0`.
    result: Option<ThresholdResult>,
}

#[derive(Debug, Clone)]
enum Guard {
    Knn(KnnGuard),
    TopM(TopMGuard),
    Rknn(Vec<RknnEntry>),
}

/// A registered standing query: id, spec, owned query object, current
/// result set (always sorted by id, always bit-identical to what the
/// one-shot entry point would return right now) and the decided bounds
/// the maintainer tests mutations against.
#[derive(Debug)]
pub struct StandingQuery {
    id: u64,
    q: UncertainObject,
    spec: StandingSpec,
    results: Vec<ThresholdResult>,
    guard: Guard,
}

impl StandingQuery {
    /// The subscription id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// What this subscription watches.
    pub fn spec(&self) -> StandingSpec {
        self.spec
    }

    /// The query object.
    pub fn query(&self) -> &UncertainObject {
        &self.q
    }

    /// The maintained result set (sorted by id).
    pub fn results(&self) -> &[ThresholdResult] {
        &self.results
    }
}

/// The subscription registry an engine carries: registered standing
/// queries, queued result deltas, and the maintenance counters.
/// Registrations are in-memory only — they do not survive a durable
/// engine's restart (re-subscribe after reopening).
#[derive(Debug, Default)]
pub struct StandingRegistry {
    subs: Vec<StandingQuery>,
    next_id: u64,
    deltas: Vec<ResultDelta>,
    maintained: u64,
    reanswered: u64,
    pushed: u64,
}

impl StandingRegistry {
    /// Whether no subscription is registered (the mutation fast path).
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Registered subscription count.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// The registered subscriptions, in registration order.
    pub fn subscriptions(&self) -> &[StandingQuery] {
        &self.subs
    }

    /// Drops a subscription; `false` when the id is unknown.
    pub fn unsubscribe(&mut self, id: u64) -> bool {
        let before = self.subs.len();
        self.subs.retain(|s| s.id != id);
        self.subs.len() != before
    }

    /// Drains the queued result deltas (in mutation, then registration
    /// order).
    pub fn take_deltas(&mut self) -> Vec<ResultDelta> {
        std::mem::take(&mut self.deltas)
    }

    /// The maintenance counters.
    pub fn stats(&self) -> StandingStats {
        StandingStats {
            registered: self.subs.len(),
            maintained: self.maintained,
            reanswered: self.reanswered,
            deltas: self.pushed,
        }
    }
}

/// Registers a standing query against `plane`, answering it once to
/// seed the result set and capture the guards. Returns the fresh
/// subscription id and (a copy of) the initial results.
pub(crate) fn subscribe_registry<'a, P: QueryPlane<'a>>(
    reg: &'a mut StandingRegistry,
    plane: P,
    ctx: &SharedRefineCtx,
    q: UncertainObject,
    spec: StandingSpec,
) -> (u64, Vec<ThresholdResult>) {
    reg.next_id += 1;
    let id = reg.next_id;
    reg.subs.push(StandingQuery {
        id,
        q,
        spec,
        results: Vec::new(),
        guard: Guard::TopM(TopMGuard::default()),
    });
    let sub = reg.subs.last_mut().expect("just pushed");
    let StandingQuery {
        q, results, guard, ..
    } = sub;
    rebuild(plane, ctx, q, spec, results, guard);
    (id, results.clone())
}

/// The maintenance pass: tests the applied mutation against every
/// subscription's guards, re-refines or re-answers what cannot be
/// proven stable, and queues one [`ResultDelta`] per subscription whose
/// result set actually changed.
pub(crate) fn maintain_registry<'a, P: QueryPlane<'a>>(
    reg: &'a mut StandingRegistry,
    plane: P,
    ctx: &SharedRefineCtx,
    mutation: &Mutation,
) {
    let StandingRegistry {
        subs,
        deltas,
        maintained,
        reanswered,
        pushed,
        ..
    } = reg;
    for sub in subs {
        let StandingQuery {
            id,
            q,
            spec,
            results,
            guard,
        } = sub;
        let spec = *spec;
        let before = results.clone();
        let cheap = match guard {
            Guard::Knn(g) => maintain_knn(plane, ctx, q, spec, mutation, results, g),
            Guard::TopM(g) => {
                let stable =
                    g.d_1.is_finite() && mutation.min_dist_to(q.mbr(), plane.cfg().norm) > g.rho;
                if !stable {
                    rebuild(plane, ctx, q, spec, results, guard);
                }
                stable
            }
            Guard::Rknn(entries) => match maintain_rknn(plane, ctx, q, spec, mutation, entries) {
                Some(fresh) => {
                    *results = fresh;
                    true
                }
                None => {
                    rebuild(plane, ctx, q, spec, results, guard);
                    false
                }
            },
        };
        if cheap {
            *maintained += 1;
        } else {
            *reanswered += 1;
        }
        if let Some(delta) = diff_results(*id, &before, results) {
            *pushed += 1;
            deltas.push(delta);
        }
    }
}

/// Answers `spec` from scratch through the exact one-shot pipeline
/// (candidate walk + `run_one`) and rebuilds the guards — the
/// subscription seed and the conservative fallback.
fn rebuild<'a, P: QueryPlane<'a>>(
    plane: P,
    ctx: &SharedRefineCtx,
    q: &'a UncertainObject,
    spec: StandingSpec,
    results: &mut Vec<ThresholdResult>,
    guard: &mut Guard,
) {
    let norm = plane.cfg().norm;
    match spec {
        StandingSpec::Knn { k, tau } => {
            let mut cand_ids = plane.knn_candidates(q.mbr(), k);
            cand_ids.sort_unstable();
            *results = plane.run_one(QueryView::Knn { q, k, tau }, cand_ids.clone(), ctx);
            *guard = Guard::Knn(knn_guard(plane, q, k, &cand_ids, norm));
        }
        StandingSpec::TopM { m } => {
            let mut cand_ids = plane.knn_candidates(q.mbr(), 1);
            cand_ids.sort_unstable();
            *results = plane.run_one(QueryView::TopM { q, m }, cand_ids.clone(), ctx);
            let g = knn_guard(plane, q, 1, &cand_ids, norm);
            *guard = Guard::TopM(TopMGuard {
                d_1: g.d_k,
                rho: g.rho,
            });
        }
        StandingSpec::Rknn { k, tau } => {
            *results = plane.run_one(QueryView::Rknn { q, k, tau }, Vec::new(), ctx);
            let mut entries: Vec<RknnEntry> = Vec::new();
            let mut hits = results.iter().peekable();
            plane.for_each_object(|b_id, b_obj| {
                let result = match hits.peek() {
                    Some(r) if r.id == b_id => hits.next().cloned(),
                    _ => None,
                };
                entries.push(RknnEntry {
                    id: b_id,
                    max_qb: q.mbr().max_dist_rect(b_obj.mbr(), norm),
                    result,
                });
            });
            *guard = Guard::Rknn(entries);
        }
    }
}

/// Computes the kNN guard bounds from a sorted candidate set: per-pair
/// MaxDist margins, the pruning radius `d_k` (k-th smallest MaxDist
/// over certainly existing candidates — equal to the walk's global
/// bound, because the `k` objects pinning it are themselves
/// candidates), and the outer reach `rho`.
fn knn_guard<'a, P: QueryPlane<'a>>(
    plane: P,
    q: &UncertainObject,
    k: usize,
    cand_ids: &[ObjectId],
    norm: udb_geometry::LpNorm,
) -> KnnGuard {
    let mut cands = Vec::with_capacity(cand_ids.len());
    let mut k_smallest: Vec<f64> = Vec::with_capacity(k + 1);
    let mut d_k = f64::INFINITY;
    let mut rho = f64::NEG_INFINITY;
    for &id in cand_ids {
        let obj = plane.object(id);
        let max_d = obj.mbr().max_dist_rect(q.mbr(), norm);
        rho = rho.max(max_d);
        if obj.existence() >= 1.0 {
            if let Some(kth) = tighten_dk(&mut k_smallest, k, max_d) {
                d_k = kth;
            }
        }
        cands.push(CandGuard { id, max_d });
    }
    KnnGuard { cands, d_k, rho }
}

/// The kNN three-tier maintenance. Returns `true` when the mutation was
/// absorbed without a full re-answer (skip or partial); on `false` the
/// caller must fall back to [`rebuild`]. `results` and the guard stay
/// exact either way.
fn maintain_knn<'a, P: QueryPlane<'a>>(
    plane: P,
    ctx: &SharedRefineCtx,
    q: &'a UncertainObject,
    spec: StandingSpec,
    mutation: &Mutation,
    results: &mut Vec<ThresholdResult>,
    g: &mut KnnGuard,
) -> bool {
    let StandingSpec::Knn { k, tau } = spec else {
        unreachable!("kNN guard carries a kNN spec");
    };
    let norm = plane.cfg().norm;
    let min_d = mutation.min_dist_to(q.mbr(), norm);
    if !g.d_k.is_finite() || min_d <= g.d_k {
        // the candidate set itself may change (or was never pinned):
        // no bound proves stability — conservative fallback
        let mut cand_ids = plane.knn_candidates(q.mbr(), k);
        cand_ids.sort_unstable();
        *results = plane.run_one(QueryView::Knn { q, k, tau }, cand_ids.clone(), ctx);
        *g = knn_guard(plane, q, k, &cand_ids, norm);
        return false;
    }
    if min_d > g.rho {
        return true; // beyond every pair's reach: provably unchanged
    }
    // candidate set stable; exactly the pairs whose reach the mutation
    // entered re-refine. Past half the candidates a full pipeline run
    // is cheaper (grouped classify, one lock-step) — the cutoff is
    // geometric, so the tier choice is deterministic everywhere, and
    // both tiers produce bit-identical results.
    let affected: Vec<ObjectId> = g
        .cands
        .iter()
        .filter(|c| min_d <= c.max_d)
        .map(|c| c.id)
        .collect();
    if affected.len() * 2 > g.cands.len() {
        let cand_ids: Vec<ObjectId> = g.cands.iter().map(|c| c.id).collect();
        *results = plane.run_one(QueryView::Knn { q, k, tau }, cand_ids, ctx);
        return false;
    }
    let goal = RefineGoal::threshold(k, tau);
    let q_dec = ctx.external_decomp(q.pdf());
    let refiners = affected
        .iter()
        .map(|&id| {
            (
                id,
                attach(
                    plane.refiner(ObjRef::Db(id), ObjRef::External(q), goal.predicate()),
                    Some((ctx, &q_dec)),
                ),
            )
        })
        .collect();
    let fresh = refine_lockstep(refiners, goal);
    merge_results(results, &affected, fresh);
    true
}

/// The RkNN per-entry maintenance. Returns the reassembled result set
/// on success, `None` when the fallback should rebuild instead.
fn maintain_rknn<'a, P: QueryPlane<'a>>(
    plane: P,
    ctx: &SharedRefineCtx,
    q: &'a UncertainObject,
    spec: StandingSpec,
    mutation: &Mutation,
    entries: &mut Vec<RknnEntry>,
) -> Option<Vec<ThresholdResult>> {
    let StandingSpec::Rknn { k, tau } = spec else {
        unreachable!("RkNN guard carries an RkNN spec");
    };
    let norm = plane.cfg().norm;
    // the mutated object's own entry: removals drop it, inserts add a
    // fresh one, updates re-evaluate it unconditionally (its own reach
    // `MaxDist(q, b)` changed, which no stored bound can vouch for)
    if mutation.new.is_none() {
        entries.retain(|e| e.id != mutation.id);
    }
    let mut affected: Vec<ObjectId> = Vec::new();
    if mutation.new.is_some() {
        affected.push(mutation.id); // insert or update: (re-)evaluate
    }
    for e in entries.iter() {
        if e.id == mutation.id {
            continue;
        }
        let b_mbr = plane.object(e.id).mbr();
        if mutation.min_dist_to(b_mbr, norm) <= e.max_qb {
            affected.push(e.id);
        }
    }
    if affected.len() * 2 > entries.len().max(1) {
        return None; // rebuild runs one grouped pipeline instead
    }
    let goal = RefineGoal::threshold(k, tau);
    let q_dec = ctx.external_decomp(q.pdf());
    for &b_id in &affected {
        let b_obj = plane.object(b_id);
        let max_qb = q.mbr().max_dist_rect(b_obj.mbr(), norm);
        let result = if plane.certain_dominators_reach(q, b_obj, b_id, k) {
            None // vetoed: P(DomCount < k) is certainly 0
        } else {
            let refiners = vec![(
                b_id,
                attach(
                    plane.refiner(ObjRef::External(q), ObjRef::Db(b_id), goal.predicate()),
                    Some((ctx, &q_dec)),
                ),
            )];
            refine_lockstep(refiners, goal).pop()
        };
        let entry = RknnEntry {
            id: b_id,
            max_qb,
            result,
        };
        match entries.binary_search_by_key(&b_id, |e| e.id) {
            Ok(i) => entries[i] = entry,
            Err(i) => entries.insert(i, entry),
        }
    }
    Some(entries.iter().filter_map(|e| e.result.clone()).collect())
}

/// Replaces the `refreshed` ids' results with `fresh` (candidates whose
/// probability collapsed to certainly-zero simply vanish), keeping the
/// set sorted by id.
fn merge_results(
    results: &mut Vec<ThresholdResult>,
    refreshed: &[ObjectId],
    fresh: Vec<ThresholdResult>,
) {
    results.retain(|r| !refreshed.contains(&r.id));
    results.extend(fresh);
    results.sort_by_key(|r| r.id);
}

/// Bit-exact diff of two result sets, matched by id; `None` when
/// nothing moved. The delta is **set-based**: it carries membership and
/// bounds, not positions — top-`m` result sets are rank-ordered, and a
/// changed bound can reorder survivors without changing the set. The
/// sections themselves list ids ascending (the inputs are id-sorted
/// here before the merge walk), so a delta formats deterministically.
fn diff_results(sub: u64, old: &[ThresholdResult], new: &[ThresholdResult]) -> Option<ResultDelta> {
    let same = |a: &ThresholdResult, b: &ThresholdResult| {
        a.prob_lower.to_bits() == b.prob_lower.to_bits()
            && a.prob_upper.to_bits() == b.prob_upper.to_bits()
            && a.iterations == b.iterations
    };
    let by_id = |set: &[ThresholdResult]| {
        let mut sorted = set.to_vec();
        sorted.sort_by_key(|r| r.id);
        sorted
    };
    let (old, new) = (by_id(old), by_id(new));
    let mut delta = ResultDelta {
        sub,
        added: Vec::new(),
        removed: Vec::new(),
        changed: Vec::new(),
    };
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some(o), Some(n)) if o.id == n.id => {
                if !same(o, n) {
                    delta.changed.push(n.clone());
                }
                i += 1;
                j += 1;
            }
            (Some(o), Some(n)) if o.id < n.id => {
                delta.removed.push(o.id);
                i += 1;
            }
            (Some(_), Some(n)) => {
                delta.added.push(n.clone());
                j += 1;
            }
            (Some(o), None) => {
                delta.removed.push(o.id);
                i += 1;
            }
            (None, Some(n)) => {
                delta.added.push(n.clone());
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    (!delta.is_empty()).then_some(delta)
}
