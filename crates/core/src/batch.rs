//! Batched query execution: owned query specs, the cross-query
//! decomposition cache and the shared refinement context.
//!
//! The per-query entry points rebuild everything from scratch for every
//! query — candidate generation descends the R-tree once per query, and
//! every refiner recomputes the kd-tree decomposition of every object it
//! touches, even when the previous query just refined the same objects.
//! A [`QueryBatch`] amortizes that repeated work across the queries of
//! one arrival batch:
//!
//! * **Grouped candidate generation** — all kNN-style queries of the
//!   batch share *one* best-first R-tree descent
//!   ([`crate::Engine::knn_candidates_batch`]): each tree node is tested
//!   once against every query that still wants it, instead of the tree
//!   being re-descended per query.
//! * **Cross-query decomposition cache** — a [`DecompCache`] keyed by
//!   object id memoizes every expansion level of every object's
//!   decomposition. Splitting a partition evaluates PDF medians and
//!   masses ([`udb_object::Decomposition::expand_with_map`]); once any
//!   refiner of the batch has expanded object `X` to level `l`, every
//!   other refiner touching `X` — same query or not — replays the cached
//!   level instead of recomputing it. Expansion is deterministic, so the
//!   replay is bit-identical.
//! * **Scratch recycling** — retired refiners return their UGF arena,
//!   open-list arenas and factor-cache vector to a shared
//!   [`ScratchPool`]; later refiners of the batch adopt the allocations.
//! * **Batch-level parallelism** — with
//!   [`crate::IdcaConfig::batch_threads`] > 1 (or the
//!   `UDB_BATCH_THREADS` shim) the queries fan out over the
//!   engine's persistent [`crate::parallel::WorkerPool`], composing with
//!   the candidate-level and pair-level fan-outs on the same pool.
//!
//! The owned [`crate::Engine`] goes one step further: its cache and
//! scratch pool are **engine-owned and persistent** — bounded by
//! [`crate::IdcaConfig::decomp_cache_entries`], invalidated per object
//! by the mutation API — so the sharing amortizes *across* arrival
//! batches, not just within one.
//!
//! Results are **bit-identical** to running the same queries through the
//! sequential per-query entry points, at every `batch_threads` count and
//! every cache capacity — the shared state is work, never numbers
//! (property-tested in `tests/batch_equivalence.rs` and
//! `tests/owned_engine.rs`).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use udb_object::{Decomposition, ObjectId, Partition, Pdf, SplitStrategy, UncertainObject};

use crate::refiner::ScratchPool;

/// One cached expansion level of an object's decomposition: the full
/// partition list after the expansion plus the lineage map
/// (`map[new_idx] = old_idx`) — exactly what
/// [`Decomposition::expand_with_map`] hands an owned refiner.
struct LevelDelta {
    parts: Vec<Partition>,
    map: Vec<u32>,
}

/// The shared decomposition state of one object (one [`DecompCache`]
/// entry): a master decomposition expanded as deep as any refiner has
/// asked so far, plus the replayable per-level deltas.
pub struct ObjDecomp {
    master: Decomposition,
    levels: Vec<LevelDelta>,
    /// Set once `master` reports no further progress; expansion requests
    /// beyond `levels.len()` then answer `None` forever (matching an
    /// owned decomposition, whose leaves stay unsplittable).
    exhausted: bool,
}

impl ObjDecomp {
    fn new(pdf: &Pdf, strategy: SplitStrategy) -> Self {
        ObjDecomp {
            master: Decomposition::with_strategy(pdf, strategy),
            levels: Vec::new(),
            exhausted: false,
        }
    }

    /// The expansion taking a consumer from level `applied` to
    /// `applied + 1`: replayed from the cache when already computed,
    /// computed (and recorded) on the master decomposition otherwise.
    pub(crate) fn expand_from(
        &mut self,
        applied: usize,
        pdf: &Pdf,
    ) -> Option<(Vec<Partition>, Vec<u32>)> {
        if let Some(level) = self.levels.get(applied) {
            return Some((level.parts.clone(), level.map.clone()));
        }
        debug_assert_eq!(applied, self.levels.len(), "levels consumed in order");
        if self.exhausted {
            return None;
        }
        match self.master.expand_with_map(pdf) {
            Some(map) => {
                let parts = self.master.partitions();
                self.levels.push(LevelDelta {
                    parts: parts.clone(),
                    map: map.clone(),
                });
                Some((parts, map))
            }
            None => {
                self.exhausted = true;
                None
            }
        }
    }
}

/// One [`DecompCache`] slot: the shared decomposition plus its
/// recency stamp (for LRU trimming of a persistent cache).
struct CacheSlot {
    last_used: u64,
    decomp: Arc<Mutex<ObjDecomp>>,
}

/// The keyed state of a [`DecompCache`], behind one mutex: the id map
/// and the monotone recency tick.
struct CacheState {
    map: HashMap<ObjectId, CacheSlot>,
    tick: u64,
}

/// The cross-query decomposition cache: one [`ObjDecomp`] per object id
/// touched by any refiner running against it. Two-level locking — the
/// map lock is held only for the id lookup; expansion work runs under
/// the per-object lock, so refiners expanding *different* objects never
/// contend.
///
/// A batch-local cache (an engine with
/// [`crate::IdcaConfig::decomp_cache_entries`] `== 0`) is
/// simply dropped after its batch. The owned [`crate::Engine`] keeps
/// one cache alive **across** calls and maintains it:
///
/// * [`DecompCache::invalidate`] drops one object's entry (mutations:
///   the cached expansions describe the *old* PDF and must never
///   replay).
/// * [`DecompCache::trim`] evicts least-recently-used entries beyond a
///   capacity after each call. Refiners still holding the evicted
///   `Arc` keep it alive until they drop; eviction only stops *future*
///   sharing, so it can never change results.
pub struct DecompCache {
    strategy: SplitStrategy,
    state: Mutex<CacheState>,
}

impl DecompCache {
    /// An empty cache for decompositions split with `strategy` (all
    /// refiners sharing a cache share the engine's strategy).
    pub fn new(strategy: SplitStrategy) -> Self {
        DecompCache {
            strategy,
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                tick: 0,
            }),
        }
    }

    /// The shared entry for `id`, created at depth 0 on first use, and
    /// stamped most-recently-used.
    pub(crate) fn entry(&self, id: ObjectId, pdf: &Pdf) -> Arc<Mutex<ObjDecomp>> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.tick += 1;
        let tick = state.tick;
        let slot = state.map.entry(id).or_insert_with(|| CacheSlot {
            last_used: tick,
            decomp: Arc::new(Mutex::new(ObjDecomp::new(pdf, self.strategy))),
        });
        slot.last_used = tick;
        Arc::clone(&slot.decomp)
    }

    /// Drops the cached decomposition of one object. Mutation hook: a
    /// removed or updated object's cached expansions describe a PDF that
    /// no longer backs the id, so they must never be replayed again.
    pub fn invalidate(&self, id: ObjectId) {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .map
            .remove(&id);
    }

    /// Evicts least-recently-used entries until at most `cap` remain
    /// (the owned engine calls this after every batch). Work-only: an
    /// evicted entry still alive in a refiner stays correct, it just
    /// stops being shared with future refiners.
    pub fn trim(&self, cap: usize) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let excess = state.map.len().saturating_sub(cap);
        if excess == 0 {
            return;
        }
        let mut stamps: Vec<(u64, ObjectId)> = state
            .map
            .iter()
            .map(|(&id, slot)| (slot.last_used, id))
            .collect();
        // only the eviction set needs isolating, not a full recency
        // order: O(n) selection instead of an O(n log n) sort (trim runs
        // after every call on a warm engine)
        stamps.select_nth_unstable(excess - 1);
        for &(_, id) in stamps.iter().take(excess) {
            state.map.remove(&id);
        }
    }

    /// Drops every cached entry.
    pub fn clear(&self) {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .map
            .clear();
    }

    /// The split strategy every cached decomposition uses (refiners must
    /// match it — [`crate::Refiner::with_shared_ctx`] asserts this).
    pub fn strategy(&self) -> SplitStrategy {
        self.strategy
    }

    /// Number of objects with cached decomposition state.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .map
            .len()
    }

    /// Whether any object has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The shared state one batch execution runs under: the decomposition
/// cache and the scratch pool every refiner of the batch draws from.
/// Attach with [`crate::Refiner::with_shared_ctx`].
///
/// Both halves are reference-counted so an owned [`crate::Engine`] can
/// hand its *persistent* cache and pool to successive batches
/// ([`SharedRefineCtx::from_parts`]); [`SharedRefineCtx::new`] builds
/// the batch-local flavour whose state dies with the batch.
pub struct SharedRefineCtx {
    decomps: Arc<DecompCache>,
    scratch: Arc<ScratchPool>,
}

impl SharedRefineCtx {
    /// A fresh, batch-local context for refiners splitting with
    /// `strategy`.
    pub fn new(strategy: SplitStrategy) -> Self {
        SharedRefineCtx {
            decomps: Arc::new(DecompCache::new(strategy)),
            scratch: Arc::new(ScratchPool::new()),
        }
    }

    /// A context over an engine's persistent cache and scratch pool.
    pub fn from_parts(decomps: Arc<DecompCache>, scratch: Arc<ScratchPool>) -> Self {
        SharedRefineCtx { decomps, scratch }
    }

    /// The decomposition cache.
    pub fn decomps(&self) -> &DecompCache {
        &self.decomps
    }

    /// The decomposition cache, shared (deferred refiner handles hold a
    /// reference so lookups can wait until a region actually expands).
    pub(crate) fn decomps_arc(&self) -> Arc<DecompCache> {
        Arc::clone(&self.decomps)
    }

    /// The scratch pool (cloned into refiners, which return buffers on
    /// drop).
    pub(crate) fn scratch(&self) -> Arc<ScratchPool> {
        Arc::clone(&self.scratch)
    }

    /// A shared decomposition for an object *without* a database id —
    /// the batch's external query objects, which the id-keyed
    /// [`DecompCache`] cannot hold. One handle per query, attached to
    /// every refiner of that query via
    /// [`crate::Refiner::with_external_decomp`], expands the query
    /// object once per query instead of once per candidate.
    pub fn external_decomp(&self, pdf: &Pdf) -> SharedDecomp {
        SharedDecomp {
            entry: Arc::new(Mutex::new(ObjDecomp::new(pdf, self.decomps.strategy))),
            strategy: self.decomps.strategy,
        }
    }
}

/// A shared decomposition handle for one external object (see
/// [`SharedRefineCtx::external_decomp`]). The handle must only be
/// attached to refiners whose external side *is* the object the handle
/// was built from — the entry replays that object's expansion levels.
pub struct SharedDecomp {
    pub(crate) entry: Arc<Mutex<ObjDecomp>>,
    pub(crate) strategy: SplitStrategy,
}

/// One query of a [`QueryBatch`], **owning** its query object — a batch
/// is a plain value with no borrow of caller state, so it can be built
/// once, queued, shipped across threads and replayed. Parameters mirror
/// the per-query entry points exactly.
#[derive(Debug, Clone)]
pub enum QuerySpec {
    /// [`crate::Engine::knn_threshold`] semantics.
    KnnThreshold {
        /// The query object.
        q: UncertainObject,
        /// The `k` of the query.
        k: usize,
        /// The probability threshold `τ`.
        tau: f64,
    },
    /// [`crate::Engine::rknn_threshold`] semantics.
    RknnThreshold {
        /// The query object.
        q: UncertainObject,
        /// The `k` of the query.
        k: usize,
        /// The probability threshold `τ`.
        tau: f64,
    },
    /// [`crate::Engine::top_probable_nn`] semantics.
    TopProbableNn {
        /// The query object.
        q: UncertainObject,
        /// Result-set size.
        m: usize,
    },
}

/// A borrowed view of one query (the execution-side shape: the engine
/// pipelines borrow the query object for the duration of the call, so
/// per-query entry points can run the same code without cloning).
#[derive(Clone, Copy)]
pub(crate) enum QueryView<'b> {
    Knn {
        q: &'b UncertainObject,
        k: usize,
        tau: f64,
    },
    Rknn {
        q: &'b UncertainObject,
        k: usize,
        tau: f64,
    },
    TopM {
        q: &'b UncertainObject,
        m: usize,
    },
}

impl QuerySpec {
    pub(crate) fn view(&self) -> QueryView<'_> {
        match self {
            QuerySpec::KnnThreshold { q, k, tau } => QueryView::Knn {
                q,
                k: *k,
                tau: *tau,
            },
            QuerySpec::RknnThreshold { q, k, tau } => QueryView::Rknn {
                q,
                k: *k,
                tau: *tau,
            },
            QuerySpec::TopProbableNn { q, m } => QueryView::TopM { q, m: *m },
        }
    }

    /// Validates the spec's parameters (the push methods' contract).
    fn validate(&self) {
        match self {
            QuerySpec::KnnThreshold { k, tau, .. } | QuerySpec::RknnThreshold { k, tau, .. } => {
                assert!(*k >= 1, "k must be positive");
                assert!((0.0..1.0).contains(tau), "tau must be in [0, 1)");
            }
            QuerySpec::TopProbableNn { m, .. } => assert!(*m >= 1, "m must be positive"),
        }
    }
}

/// A mixed set of queries executed through one shared pass
/// ([`crate::Engine::run_batch`]). Owned and lifetime-free: build with
/// the push methods; results come back aligned with insertion order.
#[derive(Debug, Default, Clone)]
pub struct QueryBatch {
    queries: Vec<QuerySpec>,
}

impl QueryBatch {
    /// An empty batch.
    pub fn new() -> Self {
        QueryBatch::default()
    }

    /// Queues a probabilistic threshold kNN query.
    ///
    /// # Panics
    /// Panics if `k == 0` or `tau ∉ [0, 1)` (same contract as
    /// [`crate::Engine::knn_threshold`]).
    pub fn knn_threshold(&mut self, q: UncertainObject, k: usize, tau: f64) -> &mut Self {
        self.push(QuerySpec::KnnThreshold { q, k, tau })
    }

    /// Queues a probabilistic threshold reverse kNN query.
    ///
    /// # Panics
    /// Panics if `k == 0` or `tau ∉ [0, 1)`.
    pub fn rknn_threshold(&mut self, q: UncertainObject, k: usize, tau: f64) -> &mut Self {
        self.push(QuerySpec::RknnThreshold { q, k, tau })
    }

    /// Queues a top-`m` probable nearest-neighbour query.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn top_probable_nn(&mut self, q: UncertainObject, m: usize) -> &mut Self {
        self.push(QuerySpec::TopProbableNn { q, m })
    }

    /// Queues an already-built spec.
    ///
    /// # Panics
    /// Panics on invalid parameters (`k == 0`, `m == 0`,
    /// `tau ∉ [0, 1)`).
    pub fn push(&mut self, spec: QuerySpec) -> &mut Self {
        spec.validate();
        self.queries.push(spec);
        self
    }

    /// The queued queries, in insertion (= result) order.
    pub fn queries(&self) -> &[QuerySpec] {
        &self.queries
    }

    /// Number of queued queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_object::Database;
    use udb_workload::SyntheticConfig;

    fn synthetic(n: usize) -> Database {
        SyntheticConfig {
            n,
            max_extent: 0.01,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn decomp_cache_replays_identical_levels() {
        let db = synthetic(8);
        let cache = DecompCache::new(SplitStrategy::default());
        let id = ObjectId(3);
        let pdf = db.get(id).pdf();
        // an owned decomposition, stepped level by level, is the oracle
        let mut own = Decomposition::with_strategy(pdf, SplitStrategy::default());
        let entry = cache.entry(id, pdf);
        let late = cache.entry(id, pdf); // a second consumer, lagging behind
        for level in 0..6 {
            let expect = own.expand_with_map(pdf).map(|m| (own.partitions(), m));
            let got = entry.lock().unwrap().expand_from(level, pdf);
            match (&expect, &got) {
                (None, None) => break,
                (Some((ep, em)), Some((gp, gm))) => {
                    assert_eq!(em, gm, "level {level} lineage");
                    assert_eq!(ep.len(), gp.len());
                    for (a, b) in ep.iter().zip(gp.iter()) {
                        assert_eq!(a.mbr, b.mbr, "level {level}");
                        assert_eq!(a.mass, b.mass, "level {level}");
                    }
                }
                _ => panic!("progress disagreement at level {level}"),
            }
            // the lagging consumer replays the same delta from the cache
            let replay = late.lock().unwrap().expand_from(level, pdf);
            let (rp, rm) = replay.expect("cached level replays");
            let (gp, gm) = got.unwrap();
            assert_eq!(rm, gm);
            assert_eq!(rp.len(), gp.len());
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn trim_evicts_least_recently_used_first() {
        let db = synthetic(6);
        let cache = DecompCache::new(SplitStrategy::default());
        for id in 0..4u32 {
            cache.entry(ObjectId(id), db.get(ObjectId(id)).pdf());
        }
        // re-touch 0 and 1 so 2 and 3 are the LRU pair
        cache.entry(ObjectId(0), db.get(ObjectId(0)).pdf());
        cache.entry(ObjectId(1), db.get(ObjectId(1)).pdf());
        cache.trim(2);
        assert_eq!(cache.len(), 2);
        // the survivors must be the recently touched ids: re-requesting
        // them must not recreate state (observable through len holding
        // at 2 after touching only survivors)
        cache.entry(ObjectId(0), db.get(ObjectId(0)).pdf());
        cache.entry(ObjectId(1), db.get(ObjectId(1)).pdf());
        assert_eq!(cache.len(), 2);
        // a trimmed id was really dropped: touching it grows the map
        cache.entry(ObjectId(2), db.get(ObjectId(2)).pdf());
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn invalidate_drops_one_entry() {
        let db = synthetic(3);
        let cache = DecompCache::new(SplitStrategy::default());
        cache.entry(ObjectId(0), db.get(ObjectId(0)).pdf());
        cache.entry(ObjectId(1), db.get(ObjectId(1)).pdf());
        cache.invalidate(ObjectId(0));
        assert_eq!(cache.len(), 1);
        cache.invalidate(ObjectId(7)); // unknown ids are a no-op
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    #[should_panic(expected = "tau must be")]
    fn batch_rejects_bad_tau_at_push_time() {
        let q = UncertainObject::certain(udb_geometry::Point::from([0.0, 0.0]));
        QueryBatch::new().knn_threshold(q, 1, 1.5);
    }
}
