//! Batched query execution: one shared pass over a mixed set of queries.
//!
//! The per-query entry points ([`IndexedEngine::knn_threshold`] and
//! friends) rebuild everything from scratch for every query — candidate
//! generation descends the R-tree once per query, and every refiner
//! recomputes the kd-tree decomposition of every object it touches, even
//! when the previous query just refined the same objects. A
//! [`QueryBatch`] amortizes that repeated work across the queries of one
//! arrival batch:
//!
//! * **Grouped candidate generation** — all kNN-style queries of the
//!   batch share *one* best-first R-tree descent
//!   ([`IndexedEngine::knn_candidates_batch`]): each tree node is tested
//!   once against every query that still wants it, instead of the tree
//!   being re-descended per query.
//! * **Cross-query decomposition cache** — a [`DecompCache`] keyed by
//!   object id memoizes every expansion level of every object's
//!   decomposition. Splitting a partition evaluates PDF medians and
//!   masses ([`udb_object::Decomposition::expand_with_map`]); once any
//!   refiner of the batch has expanded object `X` to level `l`, every
//!   other refiner touching `X` — same query or not — replays the cached
//!   level instead of recomputing it. Expansion is deterministic, so the
//!   replay is bit-identical.
//! * **Scratch recycling** — retired refiners return their UGF arena,
//!   open-list arenas and factor-cache vector to a shared
//!   [`ScratchPool`]; later refiners of the batch adopt the allocations.
//! * **Batch-level parallelism** — with
//!   [`crate::IdcaConfig::batch_threads`] > 1 (or the
//!   `UDB_BATCH_THREADS` shim) the queries fan out over the
//!   engine's persistent [`crate::parallel::WorkerPool`], composing with
//!   the candidate-level and pair-level fan-outs on the same pool.
//!
//! Results are **bit-identical** to running the same queries through the
//! sequential per-query entry points, at every `batch_threads` count —
//! the shared state is work, never numbers (property-tested in
//! `tests/batch_equivalence.rs`).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use udb_geometry::Rect;
use udb_object::{Decomposition, ObjectId, Partition, Pdf, SplitStrategy, UncertainObject};

use crate::indexed::IndexedEngine;
use crate::queries::ThresholdResult;
use crate::refiner::ScratchPool;

/// One cached expansion level of an object's decomposition: the full
/// partition list after the expansion plus the lineage map
/// (`map[new_idx] = old_idx`) — exactly what
/// [`Decomposition::expand_with_map`] hands an owned refiner.
struct LevelDelta {
    parts: Vec<Partition>,
    map: Vec<u32>,
}

/// The shared decomposition state of one object (one [`DecompCache`]
/// entry): a master decomposition expanded as deep as any refiner has
/// asked so far, plus the replayable per-level deltas.
pub struct ObjDecomp {
    master: Decomposition,
    levels: Vec<LevelDelta>,
    /// Set once `master` reports no further progress; expansion requests
    /// beyond `levels.len()` then answer `None` forever (matching an
    /// owned decomposition, whose leaves stay unsplittable).
    exhausted: bool,
}

impl ObjDecomp {
    fn new(pdf: &Pdf, strategy: SplitStrategy) -> Self {
        ObjDecomp {
            master: Decomposition::with_strategy(pdf, strategy),
            levels: Vec::new(),
            exhausted: false,
        }
    }

    /// The expansion taking a consumer from level `applied` to
    /// `applied + 1`: replayed from the cache when already computed,
    /// computed (and recorded) on the master decomposition otherwise.
    pub(crate) fn expand_from(
        &mut self,
        applied: usize,
        pdf: &Pdf,
    ) -> Option<(Vec<Partition>, Vec<u32>)> {
        if let Some(level) = self.levels.get(applied) {
            return Some((level.parts.clone(), level.map.clone()));
        }
        debug_assert_eq!(applied, self.levels.len(), "levels consumed in order");
        if self.exhausted {
            return None;
        }
        match self.master.expand_with_map(pdf) {
            Some(map) => {
                let parts = self.master.partitions();
                self.levels.push(LevelDelta {
                    parts: parts.clone(),
                    map: map.clone(),
                });
                Some((parts, map))
            }
            None => {
                self.exhausted = true;
                None
            }
        }
    }
}

/// The cross-query decomposition cache: one [`ObjDecomp`] per object id
/// touched by any refiner of the batch. Two-level locking — the map
/// lock is held only for the id lookup; expansion work runs under the
/// per-object lock, so refiners expanding *different* objects never
/// contend.
pub struct DecompCache {
    strategy: SplitStrategy,
    map: Mutex<HashMap<ObjectId, Arc<Mutex<ObjDecomp>>>>,
}

impl DecompCache {
    /// An empty cache for decompositions split with `strategy` (all
    /// refiners of a batch share the engine's strategy).
    pub fn new(strategy: SplitStrategy) -> Self {
        DecompCache {
            strategy,
            map: Mutex::new(HashMap::new()),
        }
    }

    /// The shared entry for `id`, created at depth 0 on first use.
    pub(crate) fn entry(&self, id: ObjectId, pdf: &Pdf) -> Arc<Mutex<ObjDecomp>> {
        let mut map = self.map.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(
            map.entry(id)
                .or_insert_with(|| Arc::new(Mutex::new(ObjDecomp::new(pdf, self.strategy)))),
        )
    }

    /// The split strategy every cached decomposition uses (refiners must
    /// match it — [`crate::Refiner::with_shared_ctx`] asserts this).
    pub fn strategy(&self) -> SplitStrategy {
        self.strategy
    }

    /// Number of objects with cached decomposition state.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether any object has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The shared state of one batch execution: the decomposition cache and
/// the scratch pool every refiner of the batch draws from. Attach with
/// [`crate::Refiner::with_shared_ctx`].
pub struct SharedRefineCtx {
    decomps: DecompCache,
    scratch: Arc<ScratchPool>,
}

impl SharedRefineCtx {
    /// A fresh context for refiners splitting with `strategy`.
    pub fn new(strategy: SplitStrategy) -> Self {
        SharedRefineCtx {
            decomps: DecompCache::new(strategy),
            scratch: Arc::new(ScratchPool::new()),
        }
    }

    /// The decomposition cache.
    pub fn decomps(&self) -> &DecompCache {
        &self.decomps
    }

    /// The scratch pool (cloned into refiners, which return buffers on
    /// drop).
    pub(crate) fn scratch(&self) -> Arc<ScratchPool> {
        Arc::clone(&self.scratch)
    }

    /// A shared decomposition for an object *without* a database id —
    /// the batch's external query objects, which the id-keyed
    /// [`DecompCache`] cannot hold. One handle per query, attached to
    /// every refiner of that query via
    /// [`crate::Refiner::with_external_decomp`], expands the query
    /// object once per query instead of once per candidate.
    pub fn external_decomp(&self, pdf: &Pdf) -> SharedDecomp {
        SharedDecomp {
            entry: Arc::new(Mutex::new(ObjDecomp::new(pdf, self.decomps.strategy))),
            strategy: self.decomps.strategy,
        }
    }
}

/// A shared decomposition handle for one external object (see
/// [`SharedRefineCtx::external_decomp`]). The handle must only be
/// attached to refiners whose external side *is* the object the handle
/// was built from — the entry replays that object's expansion levels.
pub struct SharedDecomp {
    pub(crate) entry: Arc<Mutex<ObjDecomp>>,
    pub(crate) strategy: SplitStrategy,
}

/// One query of a [`QueryBatch`]. Parameters mirror the per-query entry
/// points exactly; `q` borrows the caller's query object like the
/// per-query APIs do.
#[derive(Debug, Clone, Copy)]
pub enum BatchQuery<'a> {
    /// [`IndexedEngine::knn_threshold`] semantics.
    KnnThreshold {
        /// The query object.
        q: &'a UncertainObject,
        /// The `k` of the query.
        k: usize,
        /// The probability threshold `τ`.
        tau: f64,
    },
    /// [`IndexedEngine::rknn_threshold`] semantics.
    RknnThreshold {
        /// The query object.
        q: &'a UncertainObject,
        /// The `k` of the query.
        k: usize,
        /// The probability threshold `τ`.
        tau: f64,
    },
    /// [`IndexedEngine::top_probable_nn`] semantics.
    TopProbableNn {
        /// The query object.
        q: &'a UncertainObject,
        /// Result-set size.
        m: usize,
    },
}

/// A mixed set of queries executed through one shared pass
/// ([`IndexedEngine::run_batch`]). Build with the push methods; results
/// come back aligned with insertion order.
#[derive(Debug, Default)]
pub struct QueryBatch<'a> {
    queries: Vec<BatchQuery<'a>>,
}

impl<'a> QueryBatch<'a> {
    /// An empty batch.
    pub fn new() -> Self {
        QueryBatch::default()
    }

    /// Queues a probabilistic threshold kNN query.
    ///
    /// # Panics
    /// Panics if `k == 0` or `tau ∉ [0, 1)` (same contract as
    /// [`IndexedEngine::knn_threshold`]).
    pub fn knn_threshold(&mut self, q: &'a UncertainObject, k: usize, tau: f64) -> &mut Self {
        assert!(k >= 1, "k must be positive");
        assert!((0.0..1.0).contains(&tau), "tau must be in [0, 1)");
        self.queries.push(BatchQuery::KnnThreshold { q, k, tau });
        self
    }

    /// Queues a probabilistic threshold reverse kNN query.
    ///
    /// # Panics
    /// Panics if `k == 0` or `tau ∉ [0, 1)`.
    pub fn rknn_threshold(&mut self, q: &'a UncertainObject, k: usize, tau: f64) -> &mut Self {
        assert!(k >= 1, "k must be positive");
        assert!((0.0..1.0).contains(&tau), "tau must be in [0, 1)");
        self.queries.push(BatchQuery::RknnThreshold { q, k, tau });
        self
    }

    /// Queues a top-`m` probable nearest-neighbour query.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn top_probable_nn(&mut self, q: &'a UncertainObject, m: usize) -> &mut Self {
        assert!(m >= 1, "m must be positive");
        self.queries.push(BatchQuery::TopProbableNn { q, m });
        self
    }

    /// The queued queries, in insertion (= result) order.
    pub fn queries(&self) -> &[BatchQuery<'a>] {
        &self.queries
    }

    /// Number of queued queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Per-query execution slot of one batch run (the `fan_each` item).
struct QueryTask<'q, 'a> {
    query: &'q BatchQuery<'a>,
    /// Index-driven candidates from the grouped descent (kNN-style
    /// queries only; RkNN prefilters per database object instead).
    candidates: Vec<ObjectId>,
    out: Vec<ThresholdResult>,
}

impl<'a> IndexedEngine<'a> {
    /// Executes a mixed [`QueryBatch`] through one shared pass: grouped
    /// candidate generation, a cross-query decomposition cache, recycled
    /// refiner scratch, and query-level fan-out over
    /// [`crate::IdcaConfig::batch_threads`] worker-pool lanes. Returns one
    /// result vector per query, aligned with the batch's insertion
    /// order; each vector is exactly what the corresponding per-query
    /// entry point returns — bit-identical bounds, iteration counts and
    /// ordering, at every lane count.
    pub fn run_batch(&self, batch: &QueryBatch<'a>) -> Vec<Vec<ThresholdResult>> {
        let cfg = self.engine().config();
        let ctx = SharedRefineCtx::new(cfg.split_strategy);
        // one grouped descent for every kNN-style candidate set
        let requests: Vec<(Rect, usize)> = batch
            .queries()
            .iter()
            .filter_map(|q| match *q {
                BatchQuery::KnnThreshold { q, k, .. } => Some((q.mbr().clone(), k)),
                BatchQuery::TopProbableNn { q, .. } => Some((q.mbr().clone(), 1)),
                BatchQuery::RknnThreshold { .. } => None,
            })
            .collect();
        let mut candidate_sets = self.knn_candidates_batch(&requests).into_iter();
        let mut tasks: Vec<QueryTask<'_, 'a>> = batch
            .queries()
            .iter()
            .map(|query| QueryTask {
                query,
                candidates: match query {
                    BatchQuery::RknnThreshold { .. } => Vec::new(),
                    _ => candidate_sets
                        .next()
                        .expect("one candidate set per request"),
                },
                out: Vec::new(),
            })
            .collect();
        let lanes = cfg.batch_threads;
        self.engine()
            .pool_handle()
            .clone()
            .fan_each(lanes, &mut tasks, |task| {
                task.out = self.run_one(task.query, std::mem::take(&mut task.candidates), &ctx);
            });
        tasks.into_iter().map(|t| t.out).collect()
    }

    /// Executes one query of a batch against the shared context: the
    /// *same* pipeline function the per-query entry point runs
    /// (`*_pipeline` in `indexed.rs`), joined to the batch's
    /// decomposition cache, scratch pool and the query object's shared
    /// decomposition — bit-identity with the entry points is structural.
    fn run_one(
        &self,
        query: &BatchQuery<'a>,
        candidates: Vec<ObjectId>,
        ctx: &SharedRefineCtx,
    ) -> Vec<ThresholdResult> {
        match *query {
            BatchQuery::KnnThreshold { q, k, tau } => {
                let q_dec = ctx.external_decomp(q.pdf());
                self.knn_threshold_pipeline(q, k, tau, candidates, Some((ctx, &q_dec)))
            }
            BatchQuery::RknnThreshold { q, k, tau } => {
                let q_dec = ctx.external_decomp(q.pdf());
                self.rknn_threshold_pipeline(q, k, tau, Some((ctx, &q_dec)))
            }
            BatchQuery::TopProbableNn { q, m } => {
                let q_dec = ctx.external_decomp(q.pdf());
                self.top_probable_nn_pipeline(q, m, candidates, Some((ctx, &q_dec)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_geometry::LpNorm;
    use udb_object::Database;
    use udb_workload::{QuerySet, SyntheticConfig};

    fn synthetic(n: usize) -> (Database, SyntheticConfig) {
        let cfg = SyntheticConfig {
            n,
            max_extent: 0.01,
            ..Default::default()
        };
        (cfg.generate(), cfg)
    }

    #[test]
    fn decomp_cache_replays_identical_levels() {
        let (db, _) = synthetic(8);
        let cache = DecompCache::new(SplitStrategy::default());
        let id = ObjectId(3);
        let pdf = db.get(id).pdf();
        // an owned decomposition, stepped level by level, is the oracle
        let mut own = Decomposition::with_strategy(pdf, SplitStrategy::default());
        let entry = cache.entry(id, pdf);
        let late = cache.entry(id, pdf); // a second consumer, lagging behind
        for level in 0..6 {
            let expect = own.expand_with_map(pdf).map(|m| (own.partitions(), m));
            let got = entry.lock().unwrap().expand_from(level, pdf);
            match (&expect, &got) {
                (None, None) => break,
                (Some((ep, em)), Some((gp, gm))) => {
                    assert_eq!(em, gm, "level {level} lineage");
                    assert_eq!(ep.len(), gp.len());
                    for (a, b) in ep.iter().zip(gp.iter()) {
                        assert_eq!(a.mbr, b.mbr, "level {level}");
                        assert_eq!(a.mass, b.mass, "level {level}");
                    }
                }
                _ => panic!("progress disagreement at level {level}"),
            }
            // the lagging consumer replays the same delta from the cache
            let replay = late.lock().unwrap().expand_from(level, pdf);
            let (rp, rm) = replay.expect("cached level replays");
            let (gp, gm) = got.unwrap();
            assert_eq!(rm, gm);
            assert_eq!(rp.len(), gp.len());
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn batch_results_align_with_insertion_order() {
        let (db, cfg) = synthetic(250);
        let qs = QuerySet::generate(&db, &cfg, 3, 10, LpNorm::L2, 91);
        let engine = IndexedEngine::new(&db);
        let mut batch = QueryBatch::new();
        batch
            .knn_threshold(&qs.references[0], 3, 0.5)
            .top_probable_nn(&qs.references[1], 2)
            .rknn_threshold(&qs.references[2], 2, 0.5);
        assert_eq!(batch.len(), 3);
        let results = engine.run_batch(&batch);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0], engine.knn_threshold(&qs.references[0], 3, 0.5));
        assert_eq!(results[1], engine.top_probable_nn(&qs.references[1], 2));
        assert_eq!(results[2], engine.rknn_threshold(&qs.references[2], 2, 0.5));
    }

    #[test]
    fn empty_batch_is_fine() {
        let (db, _) = synthetic(50);
        let engine = IndexedEngine::new(&db);
        assert!(engine.run_batch(&QueryBatch::new()).is_empty());
    }

    #[test]
    #[should_panic(expected = "tau must be")]
    fn batch_rejects_bad_tau_at_push_time() {
        let q = UncertainObject::certain(udb_geometry::Point::from([0.0, 0.0]));
        QueryBatch::new().knn_threshold(&q, 1, 1.5);
    }
}
