//! Configuration types for the IDCA engine.

use udb_domination::DominationCriterion;
use udb_geometry::LpNorm;
use udb_object::{Database, ObjectId, SplitStrategy, UncertainObject};

/// Tuning knobs of the iterative refinement (Algorithm 1).
#[derive(Debug, Clone)]
pub struct IdcaConfig {
    /// Distance norm (paper: Euclidean).
    pub norm: LpNorm,
    /// Spatial decision criterion (paper default: the optimal criterion;
    /// MinMax is the Figure 6 baseline).
    pub criterion: DominationCriterion,
    /// kd-tree split-axis strategy for object decomposition.
    pub split_strategy: SplitStrategy,
    /// Hard cap on refinement iterations (the kd-tree height `h` of §V;
    /// state grows exponentially with it).
    pub max_iterations: usize,
    /// Stop once the accumulated uncertainty
    /// `Σ_k (DomCountUB_k − DomCountLB_k)` falls below this value.
    pub uncertainty_target: f64,
    /// Parallel lanes for the partition-pair loop of
    /// [`crate::Refiner::snapshot`], served by the engine's persistent
    /// [`crate::parallel::WorkerPool`] (the calling thread is one lane).
    /// `1` (the default) keeps evaluation fully sequential and
    /// bit-identical to previous releases; larger values trade exact
    /// float reproducibility across *different* thread counts
    /// (reassociation ≲ 1e-13) for wall-clock speed on deep refinements.
    ///
    /// The default honours the `UDB_SNAPSHOT_THREADS` environment
    /// variable (a CI shim: the single-CPU CI container cannot observe
    /// wall-clock scaling, but setting the variable to `2` routes every
    /// default-config test through the worker-pool path).
    pub snapshot_threads: usize,
    /// Parallel lanes for *candidate-level* fan-out in the lock-step
    /// early-exit drivers ([`crate::refine_lockstep`] /
    /// [`crate::refine_top_m`]): each round's per-candidate
    /// `step()`/`snapshot()` calls run as lane-bounded candidate-chunk
    /// pool jobs,
    /// with retirement decisions merged deterministically after the
    /// round — results are bit-identical to the sequential drivers at
    /// any lane count (each candidate's own refinement sequence is
    /// untouched; only wall-clock interleaving changes). Composes with
    /// [`IdcaConfig::snapshot_threads`]: a candidate job may fan its own
    /// pair loop out on the same pool (nested scopes are deadlock-safe
    /// because the scoping thread participates).
    ///
    /// `1` (the default) keeps the drivers sequential. The default
    /// honours the `UDB_CANDIDATE_THREADS` environment variable (CI
    /// shim, mirroring `UDB_SNAPSHOT_THREADS`).
    pub candidate_threads: usize,
    /// Parallel lanes for *query-level* fan-out in the batched execution
    /// path ([`crate::Engine::run_batch`]): the queries of a
    /// [`crate::QueryBatch`] run as lane-bounded chunks on the engine's
    /// persistent worker pool. Composes with the two knobs above — a
    /// query job may fan its candidate rounds
    /// ([`IdcaConfig::candidate_threads`]) and each candidate its pair
    /// loop ([`IdcaConfig::snapshot_threads`]) on the same pool (nested
    /// scopes are deadlock-safe). Results are bit-identical at every
    /// lane count: queries share only the decomposition cache and
    /// scratch allocations, never numeric state.
    ///
    /// `1` (the default) runs the batch's queries sequentially. The
    /// default honours the `UDB_BATCH_THREADS` environment variable (CI
    /// shim, mirroring the other two).
    pub batch_threads: usize,
    /// Parallel lanes for *per-shard* fan-out in the sharded router's
    /// query plane ([`crate::ShardedEngine`]): candidate collection
    /// (each shard's best-first stream materialized under its own
    /// shard-local pruning bound, then k-way merged on the calling
    /// thread under the single global `tighten_dk` bound), the
    /// complete-domination classify of refiner construction, and the
    /// RkNN veto exchange all run as lane-bounded per-shard pool jobs.
    /// Every merge/decision stays on the calling thread, so results are
    /// bit-identical at any lane count (`tests/sharded_equivalence.rs`
    /// proves it at 1/2/4 threads). Composes with the other thread
    /// knobs on the same pool (nested scopes are deadlock-safe).
    ///
    /// `1` (the default) keeps the router's sequential per-shard loops
    /// — byte-for-byte the pre-knob code path. The default honours the
    /// `UDB_SHARD_THREADS` environment variable (CI shim, mirroring the
    /// other thread knobs). Irrelevant at one shard (the plain engine
    /// path has no per-shard work to fan).
    pub shard_threads: usize,
    /// Materialization threshold of the sharded router's parallel
    /// candidate collection: when [`IdcaConfig::shard_threads`] `> 1`,
    /// per-shard candidate streams are only materialized (each shard's
    /// best-first walk drained under its own shard-local bound, then
    /// k-way merged) when at least one shard holds this many objects;
    /// below the threshold every shard is small enough that the lazy
    /// merged stream under the single global bound wins — the fan-out's
    /// per-shard setup costs more than it saves. The choice is
    /// work-only: both paths feed the identical merge under the single
    /// global `tighten_dk` bound, so results are bit-identical at
    /// every threshold (swept by `tests/sharded_equivalence.rs`).
    ///
    /// `0` (the default) always materializes under fan-out — the
    /// pre-knob behavior. The default honours the
    /// `UDB_SHARD_MATERIALIZE_MIN` environment variable (`0`
    /// meaningful, unparsable input falls back). Irrelevant at
    /// `shard_threads == 1` (the lazy stream is always used).
    pub shard_materialize_min: usize,
    /// Capacity (in objects) of the owned [`crate::Engine`]'s
    /// **persistent** cross-batch decomposition cache: how many objects'
    /// kd-decomposition expansion levels survive between `run_batch` /
    /// per-query calls, so a stream of arrival batches re-hitting the
    /// same hot objects replays their decompositions instead of
    /// recomputing them. Least-recently-used entries beyond the capacity
    /// are evicted after each call; [`crate::Engine::remove`] /
    /// [`crate::Engine::update`] invalidate their object's entry.
    ///
    /// `0` disables cross-batch persistence entirely: every call builds
    /// a fresh per-call cache, exactly the pre-owned-engine semantics.
    /// Sharing is work-only either way — results are bit-identical at
    /// every capacity (property-tested), this knob trades memory for
    /// warm-serving throughput.
    ///
    /// The default (1024) honours the `UDB_DECOMP_CACHE_CAP` environment
    /// variable (CI shim: the `{0, 64}` matrix keeps the cache-off and
    /// eviction paths exercised on every push).
    pub decomp_cache_entries: usize,
    /// Enables the tier-1 min/max bound prefilter in front of the exact
    /// UGF refinement: each round first computes O(n)-per-pair CDF
    /// brackets ([`udb_genfunc::MinMaxCdf`]) and skips the exact
    /// aggregation whenever the brackets *prove* the round could neither
    /// decide the query nor meet the stop criterion. The cheap tier only
    /// ever decides whether the exact tier runs — never what it returns —
    /// so results are bit-identical with the prefilter on or off
    /// (property-tested); the knob trades a cheap extra pass on
    /// terminal rounds for skipping the O(k²)-per-pair UGF work on
    /// non-terminal ones.
    ///
    /// `false` (the default) keeps the exact-only semantics of previous
    /// releases. The default honours the `UDB_PREFILTER` environment
    /// variable (CI shim: the `{0, 1}` matrix runs every default-config
    /// test through both tiers).
    pub prefilter: bool,
    /// Fsync cadence of a durable engine's WAL: the segment is forced
    /// to stable storage every this many appended records. `1` (the
    /// default: every record is durable the moment the mutation call
    /// returns) is the paper-trail-honest setting; larger values batch
    /// fsyncs — a crash may lose up to `wal_sync_every - 1` of the most
    /// recent acknowledged mutations (never a prefix gap, never a
    /// reorder). `0` syncs only at checkpoints and explicit
    /// [`crate::Engine::wal_sync`] calls. Ignored by in-memory engines.
    ///
    /// The default honours the `UDB_WAL_SYNC_EVERY` environment
    /// variable; like the cache knob, `0` is meaningful, so only
    /// unparsable input falls back to the default.
    pub wal_sync_every: usize,
    /// Automatic checkpoint cadence of a durable engine: after this
    /// many logged mutations the engine takes a checkpoint (database
    /// snapshot + WAL rotation + tombstone compaction + R-tree
    /// rebuild). `0` disables automatic checkpoints — only
    /// [`crate::Engine::checkpoint`] and the open-time checkpoint run.
    /// Ignored by in-memory engines.
    ///
    /// The default (1024) honours the `UDB_CHECKPOINT_EVERY`
    /// environment variable (`0` meaningful, unparsable input falls
    /// back).
    pub checkpoint_every: usize,
}

/// Reads a thread-count environment variable once (values `< 1` and junk
/// fall back to the sequential default of 1).
fn env_threads(cell: &'static std::sync::OnceLock<usize>, var: &str) -> usize {
    *cell.get_or_init(|| {
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1)
    })
}

fn default_snapshot_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    env_threads(&THREADS, "UDB_SNAPSHOT_THREADS")
}

fn default_candidate_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    env_threads(&THREADS, "UDB_CANDIDATE_THREADS")
}

fn default_batch_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    env_threads(&THREADS, "UDB_BATCH_THREADS")
}

fn default_shard_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    env_threads(&THREADS, "UDB_SHARD_THREADS")
}

/// Default capacity of the engine-owned decomposition cache; unlike the
/// thread shims, `0` is a meaningful value (cache off, per-call
/// semantics), so only unparsable input falls back to the default.
fn default_decomp_cache_entries() -> usize {
    static CAP: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("UDB_DECOMP_CACHE_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1024)
    })
}

/// Default WAL fsync cadence; `0` is meaningful (sync only at
/// checkpoints), so only unparsable input falls back to 1.
fn default_wal_sync_every() -> usize {
    static EVERY: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *EVERY.get_or_init(|| {
        std::env::var("UDB_WAL_SYNC_EVERY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1)
    })
}

/// Default automatic-checkpoint cadence; `0` is meaningful (manual
/// checkpoints only), so only unparsable input falls back to 1024.
fn default_checkpoint_every() -> usize {
    static EVERY: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *EVERY.get_or_init(|| {
        std::env::var("UDB_CHECKPOINT_EVERY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1024)
    })
}

/// Default prefilter setting: `UDB_PREFILTER=1` (or any non-zero
/// integer) switches the two-tier pipeline on; `0`, junk or an unset
/// variable keep the exact-only path.
fn default_prefilter() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("UDB_PREFILTER")
            .ok()
            .and_then(|v| v.parse::<i64>().ok())
            .is_some_and(|v| v != 0)
    })
}

/// Default materialization threshold of the sharded candidate fan-out;
/// `0` is meaningful (always materialize under fan-out), so only
/// unparsable input falls back to 0.
fn default_shard_materialize_min() -> usize {
    static MIN: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *MIN.get_or_init(|| {
        std::env::var("UDB_SHARD_MATERIALIZE_MIN")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0)
    })
}

impl Default for IdcaConfig {
    fn default() -> Self {
        IdcaConfig {
            norm: LpNorm::L2,
            criterion: DominationCriterion::Optimal,
            split_strategy: SplitStrategy::LongestExtent,
            max_iterations: 8,
            uncertainty_target: 1e-3,
            snapshot_threads: default_snapshot_threads(),
            candidate_threads: default_candidate_threads(),
            batch_threads: default_batch_threads(),
            shard_threads: default_shard_threads(),
            shard_materialize_min: default_shard_materialize_min(),
            decomp_cache_entries: default_decomp_cache_entries(),
            prefilter: default_prefilter(),
            wal_sync_every: default_wal_sync_every(),
            checkpoint_every: default_checkpoint_every(),
        }
    }
}

/// A query predicate that lets the refiner terminate early (§VI).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predicate {
    /// Refine the full domination-count PDF (inverse ranking, expected
    /// rank).
    FullPdf,
    /// Only `P(DomCount < k)` matters (kNN / RkNN without a threshold):
    /// enables the `O(k²·|Cand|)` UGF truncation.
    CountBelow {
        /// The `k` of the query.
        k: usize,
    },
    /// Decide `P(DomCount < k) > τ` (threshold kNN / RkNN): truncation
    /// *and* early termination as soon as the bounds separate from `τ`.
    Threshold {
        /// The `k` of the query.
        k: usize,
        /// The probability threshold `τ`.
        tau: f64,
    },
}

impl Predicate {
    /// The truncation point, if the predicate allows one.
    pub fn k(&self) -> Option<usize> {
        match self {
            Predicate::FullPdf => None,
            Predicate::CountBelow { k } | Predicate::Threshold { k, .. } => Some(*k),
        }
    }
}

/// The query-outcome context threaded through early-exit candidate
/// refinement (the mid-loop pruning of [`crate::Engine`]): the `k`
/// every candidate's predicate shares, plus the decision threshold when
/// the query has one.
///
/// [`crate::refine_lockstep`] uses the goal to retire candidates the
/// moment their outcome is decided instead of refining each one to
/// convergence; rank-style queries ([`crate::refine_top_m`]) leave `tau`
/// unset and decide cross-candidate instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineGoal {
    /// The `k` of the query: every candidate refines `P(DomCount < k)`.
    pub k: usize,
    /// Decision threshold `τ` of a threshold query; `None` for queries
    /// that need converged bounds rather than a per-candidate decision.
    pub tau: Option<f64>,
}

impl RefineGoal {
    /// Goal of a threshold query: decide `P(DomCount < k) > τ`.
    pub fn threshold(k: usize, tau: f64) -> Self {
        RefineGoal { k, tau: Some(tau) }
    }

    /// Goal of a rank-style query: converge `P(DomCount < k)` bounds.
    pub fn count_below(k: usize) -> Self {
        RefineGoal { k, tau: None }
    }

    /// The per-candidate predicate this goal refines under.
    pub fn predicate(&self) -> Predicate {
        match self.tau {
            Some(tau) => Predicate::Threshold { k: self.k, tau },
            None => Predicate::CountBelow { k: self.k },
        }
    }

    /// Whether `snap` decides this goal for a single candidate (always
    /// `false` without a `tau`: convergence is then the only
    /// per-candidate stop, and cross-candidate logic does the retiring).
    pub fn decided(&self, snap: &crate::refiner::DomCountSnapshot) -> bool {
        self.tau.is_some_and(|tau| snap.decided(tau).is_some())
    }
}

/// A reference to either a database object or an external (ad-hoc) query
/// object. The paper's queries need both: kNN targets are database
/// objects while the query `Q` is ad-hoc, and RkNN reverses the roles.
#[derive(Debug, Clone, Copy)]
pub enum ObjRef<'a> {
    /// An object stored in the database (excluded from its own
    /// domination count).
    Db(ObjectId),
    /// An external object.
    External(&'a UncertainObject),
}

impl<'a> ObjRef<'a> {
    /// Resolves to the underlying object.
    pub fn resolve(&self, db: &'a Database) -> &'a UncertainObject {
        match self {
            ObjRef::Db(id) => db.get(*id),
            ObjRef::External(o) => o,
        }
    }

    /// The database id, when the reference points into the database.
    pub fn id(&self) -> Option<ObjectId> {
        match self {
            ObjRef::Db(id) => Some(*id),
            ObjRef::External(_) => None,
        }
    }
}

impl From<ObjectId> for ObjRef<'_> {
    fn from(id: ObjectId) -> Self {
        ObjRef::Db(id)
    }
}

impl<'a> From<&'a UncertainObject> for ObjRef<'a> {
    fn from(o: &'a UncertainObject) -> Self {
        ObjRef::External(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_geometry::Point;

    #[test]
    fn defaults_are_paper_settings() {
        let c = IdcaConfig::default();
        assert_eq!(c.norm, LpNorm::L2);
        assert_eq!(c.criterion, DominationCriterion::Optimal);
        assert_eq!(c.max_iterations, 8);
    }

    #[test]
    fn predicate_k() {
        assert_eq!(Predicate::FullPdf.k(), None);
        assert_eq!(Predicate::CountBelow { k: 5 }.k(), Some(5));
        assert_eq!(Predicate::Threshold { k: 3, tau: 0.5 }.k(), Some(3));
    }

    #[test]
    fn refine_goal_builds_matching_predicate() {
        assert_eq!(
            RefineGoal::threshold(3, 0.5).predicate(),
            Predicate::Threshold { k: 3, tau: 0.5 }
        );
        assert_eq!(
            RefineGoal::count_below(1).predicate(),
            Predicate::CountBelow { k: 1 }
        );
        assert_eq!(RefineGoal::threshold(3, 0.5).k, 3);
        assert_eq!(RefineGoal::count_below(2).tau, None);
    }

    #[test]
    fn objref_resolution() {
        let db = Database::from_objects(vec![UncertainObject::certain(Point::from([1.0, 2.0]))]);
        let r: ObjRef = ObjectId(0).into();
        assert_eq!(r.id(), Some(ObjectId(0)));
        assert_eq!(r.resolve(&db).mean(), Point::from([1.0, 2.0]));
        let ext = UncertainObject::certain(Point::from([5.0, 5.0]));
        let e: ObjRef = (&ext).into();
        assert_eq!(e.id(), None);
        assert_eq!(e.resolve(&db).mean(), Point::from([5.0, 5.0]));
    }
}
