//! IDCA — Iterative Domination Count Approximation — and the probabilistic
//! similarity query layer built on it (§V and §VI of the paper).
//!
//! The central object is the [`Refiner`], a faithful implementation of the
//! paper's Algorithm 1:
//!
//! 1. **Complete-domination filter** — every database object is classified
//!    against the target `B` and reference `R` with the optimal spatial
//!    criterion: certain dominators increment a counter, certainly
//!    dominated objects are dropped, and the rest form the
//!    *influence-object* set.
//! 2. **Iterative refinement** — each iteration deepens the kd-tree
//!    decomposition of `B`, `R` and all influence objects by one level;
//!    for every partition pair `(B', R')` the per-object domination bounds
//!    (independent by Lemma 5) feed an uncertain generating function, and
//!    the per-pair count bounds aggregate weighted by `P(B')·P(R')`
//!    (§IV-E).
//! 3. **Stop criterion** — iteration/uncertainty limits or, for threshold
//!    predicates, the moment the probability bounds decide the predicate.
//!
//! The [`queries`] module maps the domination-count machinery onto the
//! query types of §VI: probabilistic inverse ranking (Corollary 3),
//! probabilistic threshold kNN (Corollary 4), threshold RkNN (Corollary 5)
//! and expected-rank ranking (Corollary 6).

pub mod batch;
pub mod config;
pub mod durable;
pub mod engine;
pub mod parallel;
pub mod queries;
pub mod refiner;
pub(crate) mod router;
pub mod shard;
pub mod standing;
pub mod wal;

pub use batch::{DecompCache, QueryBatch, QuerySpec, SharedDecomp, SharedRefineCtx};
pub use config::{IdcaConfig, ObjRef, Predicate, RefineGoal};
pub use durable::{DurableError, RecoveryReport};
pub use engine::Engine;
pub use parallel::{par_knn_threshold, PoolHandle, WorkerPool};
pub use queries::{ExpectedRankEntry, QueryEngine, RankDistribution, ThresholdResult};
pub use refiner::{
    refine_lockstep, refine_top_m, DbView, DomCountSnapshot, RefineStats, Refiner, ScratchPool,
};
pub use shard::{env_shards, ShardedEngine};
pub use standing::{ResultDelta, StandingQuery, StandingSpec, StandingStats};
pub use wal::{
    read_wal_bytes, CrashPoint, DurableIo, FaultIo, FaultMode, FileIo, WalDefect, WalRecord,
};
