//! The append-only mutation log: record framing, checksums, crash-point
//! fault injection and the IO abstraction the durability layer writes
//! through.
//!
//! ## Frame format
//!
//! Every WAL record and checkpoint body is one *frame*:
//!
//! ```text
//! [ len: u32 LE ][ crc: u32 LE ][ payload: len bytes of JSON ]
//! ```
//!
//! `crc` is the CRC-32 (IEEE) of the payload bytes; the payload is the
//! compat-serde JSON encoding of a [`WalRecord`] (externally tagged, the
//! same wire format `tests/serialization.rs` proves round-trips). A
//! reader trusts a log *up to the first invalid frame*: a frame whose
//! header or payload extends past the end of the file is **torn** (the
//! tail of a crashed write — dropped with a warning), one whose checksum
//! or JSON fails to decode is **corrupt** (surfaced, never silently
//! skipped; replay stops there so no record can apply to a state it was
//! not logged against).
//!
//! ## Fault injection
//!
//! All durable writes go through the [`DurableIo`] trait and pass named
//! [`CrashPoint`] gates. The production [`FileIo`] honours the
//! `UDB_CRASH_POINT=<name>[:n]` environment shim — the process aborts
//! (`std::process::abort`, no destructors, exactly like a crash) at the
//! `n`-th crossing of that gate — which is how
//! `examples/durable_serving.rs` and the CI fault-injection job kill
//! real child processes at every site. [`FaultIo`] simulates the same
//! crashes in-process for deterministic tests: in
//! [`FaultMode::WriteThrough`] every appended byte reaches the file (a
//! crash tears the current write mid-record), in
//! [`FaultMode::WriteBack`] appended bytes live in a page-cache stand-in
//! until `sync` (a crash loses every unsynced record).

use serde::{Deserialize, Serialize};
use udb_object::UncertainObject;

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frames cannot be larger than this (64 MiB); a length field beyond it
/// is treated as corruption, not as an instruction to allocate.
pub const MAX_FRAME: usize = 64 << 20;

/// Encodes one frame: `[len][crc][payload]`.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME, "frame payload too large");
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why frame decoding stopped before the end of the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalDefect {
    /// The final frame extends past the end of the file — the tail of a
    /// write that crashed mid-record. Dropping it is safe: its record
    /// was never acknowledged as durable.
    Torn {
        /// Byte offset of the torn frame's header.
        offset: usize,
    },
    /// A frame whose checksum or payload decoding failed — bytes on
    /// disk changed after they were written. Replay must stop here:
    /// later records were logged against a state that includes this one.
    Corrupt {
        /// Byte offset of the corrupt frame's header.
        offset: usize,
        /// What failed.
        reason: String,
    },
}

impl std::fmt::Display for WalDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalDefect::Torn { offset } => {
                write!(f, "torn final record at byte {offset} dropped")
            }
            WalDefect::Corrupt { offset, reason } => {
                write!(f, "corrupt record at byte {offset}: {reason}")
            }
        }
    }
}

/// Decodes every complete, valid frame in `bytes`, stopping at the
/// first defect (see [`WalDefect`] for the torn/corrupt distinction).
pub fn decode_frames(bytes: &[u8]) -> (Vec<&[u8]>, Option<WalDefect>) {
    let mut frames = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let rest = &bytes[off..];
        if rest.len() < 8 {
            return (frames, Some(WalDefect::Torn { offset: off }));
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return (
                frames,
                Some(WalDefect::Corrupt {
                    offset: off,
                    reason: format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
                }),
            );
        }
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if rest.len() - 8 < len {
            return (frames, Some(WalDefect::Torn { offset: off }));
        }
        let payload = &rest[8..8 + len];
        let actual = crc32(payload);
        if actual != crc {
            return (
                frames,
                Some(WalDefect::Corrupt {
                    offset: off,
                    reason: format!(
                        "checksum mismatch (stored {crc:#010x}, actual {actual:#010x})"
                    ),
                }),
            );
        }
        frames.push(payload);
        off += 8 + len;
    }
    (frames, None)
}

/// One logged mutation, in the order the engine applied it. The wire
/// format is the compat-serde externally-tagged JSON encoding — the
/// same data model that serializes [`udb_object::Database`] — so a log
/// is readable by anything that can read a stored database.
///
/// Object payloads are boxed: a record is a transient envelope and the
/// two object-free variants should not pay an inline [`UncertainObject`]
/// footprint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WalRecord {
    /// [`crate::Engine::insert`]: the appended object. Replay re-derives
    /// the assigned id — id assignment is deterministic (next fresh id),
    /// so replaying the sequence reproduces the exact ids.
    Insert {
        /// The inserted object.
        object: Box<UncertainObject>,
    },
    /// [`crate::Engine::remove`]: the tombstoned id.
    Remove {
        /// The removed object's id (`ObjectId.0`).
        id: u32,
    },
    /// [`crate::Engine::update`]: the replaced id and its new object.
    Update {
        /// The replaced object's id (`ObjectId.0`).
        id: u32,
        /// The new object behind the id.
        object: Box<UncertainObject>,
    },
}

impl WalRecord {
    /// Encodes the record as one frame (JSON payload).
    pub fn encode(&self) -> Vec<u8> {
        let json = serde_json::to_string(self).expect("WAL records contain only finite floats");
        encode_frame(json.as_bytes())
    }

    /// Decodes a record from a frame payload.
    ///
    /// # Errors
    /// Fails when the payload is not valid UTF-8 JSON for a record.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("not UTF-8: {e}"))?;
        serde_json::from_str(text).map_err(|e| format!("not a WAL record: {e}"))
    }
}

/// The result of reading one WAL segment: the decoded records up to the
/// first defect, plus the defect itself (if any).
#[derive(Debug)]
pub struct WalReadOutcome {
    /// Every record before the first defect, in log order.
    pub records: Vec<WalRecord>,
    /// The defect that stopped decoding, if the segment was not clean.
    pub defect: Option<WalDefect>,
}

/// Decodes a WAL segment's bytes into records (see [`WalReadOutcome`]).
/// A frame whose payload is valid per checksum but does not decode as a
/// record is reported as corrupt at that frame's offset.
pub fn read_wal_bytes(bytes: &[u8]) -> WalReadOutcome {
    let (frames, mut defect) = decode_frames(bytes);
    let mut records = Vec::with_capacity(frames.len());
    let mut off = 0usize;
    for payload in frames {
        match WalRecord::decode(payload) {
            Ok(rec) => records.push(rec),
            Err(reason) => {
                defect = Some(WalDefect::Corrupt {
                    offset: off,
                    reason,
                });
                break;
            }
        }
        off += 8 + payload.len();
    }
    WalReadOutcome { records, defect }
}

// ---------------------------------------------------------------------------
// Crash points
// ---------------------------------------------------------------------------

/// Every stage a durable write can die at. The durability layer crosses
/// the matching [`DurableIo::gate`] at each stage, so a crash — real
/// (`UDB_CRASH_POINT` + [`FileIo`]) or simulated ([`FaultIo`]) — can be
/// injected at any of them. `tests/crash_recovery.rs` and the CI
/// fault-injection job sweep all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Half of a WAL record's frame has been appended.
    WalMidRecord,
    /// A full record is appended but not yet fsynced.
    WalBeforeSync,
    /// The record is appended and fsynced.
    WalAfterSync,
    /// Half of the checkpoint temp file has been written.
    CheckpointMidWrite,
    /// The checkpoint temp file is complete and fsynced, but not yet
    /// renamed into place.
    CheckpointBeforeRename,
    /// The checkpoint is renamed into place (and the directory synced),
    /// but the old checkpoint/WAL files are not yet pruned.
    CheckpointAfterRename,
    /// Alias stage just before pruning begins (after the post-rename
    /// WAL rotation bookkeeping).
    CheckpointBeforePrune,
}

impl CrashPoint {
    /// Every registered crash point, in pipeline order.
    pub const ALL: [CrashPoint; 7] = [
        CrashPoint::WalMidRecord,
        CrashPoint::WalBeforeSync,
        CrashPoint::WalAfterSync,
        CrashPoint::CheckpointMidWrite,
        CrashPoint::CheckpointBeforeRename,
        CrashPoint::CheckpointAfterRename,
        CrashPoint::CheckpointBeforePrune,
    ];

    /// The kebab-case name used by `UDB_CRASH_POINT`.
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::WalMidRecord => "wal-mid-record",
            CrashPoint::WalBeforeSync => "wal-before-sync",
            CrashPoint::WalAfterSync => "wal-after-sync",
            CrashPoint::CheckpointMidWrite => "checkpoint-mid-write",
            CrashPoint::CheckpointBeforeRename => "checkpoint-before-rename",
            CrashPoint::CheckpointAfterRename => "checkpoint-after-rename",
            CrashPoint::CheckpointBeforePrune => "checkpoint-before-prune",
        }
    }

    /// Parses a kebab-case crash-point name.
    pub fn from_name(name: &str) -> Option<CrashPoint> {
        CrashPoint::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Parses `UDB_CRASH_POINT` syntax: `<name>` or `<name>:<n>` (crash at
/// the `n`-th crossing, 1-based; bare names mean the first).
pub fn parse_crash_spec(spec: &str) -> Option<(CrashPoint, u32)> {
    let (name, n) = match spec.split_once(':') {
        Some((name, n)) => (name, n.parse::<u32>().ok().filter(|&n| n >= 1)?),
        None => (spec, 1),
    };
    CrashPoint::from_name(name).map(|p| (p, n))
}

// ---------------------------------------------------------------------------
// IO abstraction
// ---------------------------------------------------------------------------

/// The filesystem operations the durability layer performs, with a
/// crash gate at every registered [`CrashPoint`]. Production uses
/// [`FileIo`]; tests inject [`FaultIo`] to simulate crashes
/// deterministically in-process.
pub trait DurableIo: Send {
    /// Appends bytes to `path`, creating it if missing.
    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Forces `path`'s appended bytes to stable storage.
    fn sync(&mut self, path: &Path) -> io::Result<()>;
    /// Creates (or truncates) `path` with `bytes`.
    fn write_new(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` to `to`.
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;
    /// Deletes `path` (missing files are not an error).
    fn remove_file(&mut self, path: &Path) -> io::Result<()>;
    /// Forces directory metadata (renames, removals) to stable storage.
    fn sync_dir(&mut self, dir: &Path) -> io::Result<()>;
    /// Crosses a crash point: returns `Ok(())` to continue, aborts the
    /// process ([`FileIo`] under `UDB_CRASH_POINT`) or returns an error
    /// ([`FaultIo`] with an armed crash) to die here.
    fn gate(&mut self, point: CrashPoint) -> io::Result<()>;
}

/// The production [`DurableIo`]: real files, plus the
/// `UDB_CRASH_POINT=<name>[:n]` abort gate (parsed once at
/// construction, so spawned child processes — the fault-injection
/// example — each honour their own environment).
pub struct FileIo {
    crash: Option<(CrashPoint, u32)>,
    /// The currently open append handle (one segment is hot at a time).
    open: Option<(PathBuf, File)>,
}

impl Default for FileIo {
    fn default() -> Self {
        FileIo::new()
    }
}

impl FileIo {
    /// A file IO layer honouring the current `UDB_CRASH_POINT`.
    pub fn new() -> Self {
        let crash = std::env::var("UDB_CRASH_POINT")
            .ok()
            .and_then(|spec| parse_crash_spec(&spec));
        FileIo { crash, open: None }
    }

    fn handle(&mut self, path: &Path) -> io::Result<&mut File> {
        let stale = match &self.open {
            Some((p, _)) => p != path,
            None => true,
        };
        if stale {
            let file = OpenOptions::new().create(true).append(true).open(path)?;
            self.open = Some((path.to_path_buf(), file));
        }
        Ok(&mut self.open.as_mut().expect("just opened").1)
    }

    fn forget(&mut self, path: &Path) {
        if self.open.as_ref().is_some_and(|(p, _)| p == path) {
            self.open = None;
        }
    }
}

impl DurableIo for FileIo {
    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.handle(path)?.write_all(bytes)
    }

    fn sync(&mut self, path: &Path) -> io::Result<()> {
        self.handle(path)?.sync_all()
    }

    fn write_new(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.forget(path);
        let mut file = File::create(path)?;
        file.write_all(bytes)?;
        self.open = Some((path.to_path_buf(), file));
        Ok(())
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        self.forget(from);
        self.forget(to);
        std::fs::rename(from, to)
    }

    fn remove_file(&mut self, path: &Path) -> io::Result<()> {
        self.forget(path);
        match std::fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn sync_dir(&mut self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }

    fn gate(&mut self, point: CrashPoint) -> io::Result<()> {
        if let Some((p, n)) = &mut self.crash {
            if *p == point {
                if *n <= 1 {
                    eprintln!("udb: UDB_CRASH_POINT: aborting at `{}`", point.name());
                    std::process::abort();
                }
                *n -= 1;
            }
        }
        Ok(())
    }
}

/// What [`FaultIo`] pretends the OS does with appended bytes before a
/// crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Every appended byte reaches the file immediately; `sync` is a
    /// no-op. A crash mid-append leaves a **torn** half-record.
    WriteThrough,
    /// Appended bytes sit in a page-cache stand-in until `sync` flushes
    /// them. A crash **loses every unsynced byte** — the other half of
    /// the real-world outcome space.
    WriteBack,
}

/// Deterministic in-process crash simulation: writes to real files in a
/// test directory, but an armed [`CrashPoint`] makes the gate fail and
/// every later operation return an error — the files are then exactly
/// what a process killed at that point would have left behind (modulo
/// [`FaultMode`]). Recovery is tested by reopening the directory with a
/// fresh engine.
pub struct FaultIo {
    mode: FaultMode,
    armed: Option<(CrashPoint, u32)>,
    crashed: bool,
    /// Unsynced bytes per path ([`FaultMode::WriteBack`] only).
    pending: HashMap<PathBuf, Vec<u8>>,
}

impl FaultIo {
    /// A fault IO layer with no armed crash.
    pub fn new(mode: FaultMode) -> Self {
        FaultIo {
            mode,
            armed: None,
            crashed: false,
            pending: HashMap::new(),
        }
    }

    /// Arms a crash at the `nth` crossing (1-based) of `point`.
    pub fn armed(mode: FaultMode, point: CrashPoint, nth: u32) -> Self {
        assert!(nth >= 1, "crossings are 1-based");
        FaultIo {
            mode,
            armed: Some((point, nth)),
            crashed: false,
            pending: HashMap::new(),
        }
    }

    /// Whether the armed crash has fired.
    pub fn has_crashed(&self) -> bool {
        self.crashed
    }

    fn check(&self) -> io::Result<()> {
        if self.crashed {
            Err(io::Error::other("simulated crash: process is dead"))
        } else {
            Ok(())
        }
    }

    fn fs_append(path: &Path, bytes: &[u8]) -> io::Result<()> {
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?
            .write_all(bytes)
    }
}

impl DurableIo for FaultIo {
    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.check()?;
        match self.mode {
            FaultMode::WriteThrough => FaultIo::fs_append(path, bytes),
            FaultMode::WriteBack => {
                self.pending
                    .entry(path.to_path_buf())
                    .or_default()
                    .extend_from_slice(bytes);
                Ok(())
            }
        }
    }

    fn sync(&mut self, path: &Path) -> io::Result<()> {
        self.check()?;
        if let Some(bytes) = self.pending.remove(path) {
            FaultIo::fs_append(path, &bytes)?;
        }
        Ok(())
    }

    fn write_new(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.check()?;
        match self.mode {
            FaultMode::WriteThrough => std::fs::write(path, bytes),
            FaultMode::WriteBack => {
                // metadata (the file's existence) reaches disk; content
                // stays pending until the sync
                std::fs::write(path, [])?;
                self.pending.insert(path.to_path_buf(), bytes.to_vec());
                Ok(())
            }
        }
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        self.check()?;
        if let Some(bytes) = self.pending.remove(from) {
            self.pending.insert(to.to_path_buf(), bytes);
        }
        std::fs::rename(from, to)
    }

    fn remove_file(&mut self, path: &Path) -> io::Result<()> {
        self.check()?;
        self.pending.remove(path);
        match std::fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn sync_dir(&mut self, _dir: &Path) -> io::Result<()> {
        self.check()
    }

    fn gate(&mut self, point: CrashPoint) -> io::Result<()> {
        self.check()?;
        if let Some((p, n)) = &mut self.armed {
            if *p == point {
                if *n <= 1 {
                    self.crashed = true;
                    // unsynced page-cache contents die with the machine
                    self.pending.clear();
                    return Err(io::Error::other(format!(
                        "simulated crash at `{}`",
                        point.name()
                    )));
                }
                *n -= 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_geometry::Point;

    #[test]
    fn crc32_known_vector() {
        // the canonical IEEE check value
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip() {
        let payload = b"hello frame";
        let bytes = encode_frame(payload);
        let (frames, defect) = decode_frames(&bytes);
        assert!(defect.is_none());
        assert_eq!(frames, vec![&payload[..]]);
    }

    #[test]
    fn torn_tail_detected_at_every_cut() {
        let mut bytes = encode_frame(b"first");
        bytes.extend_from_slice(&encode_frame(b"second record"));
        let whole = decode_frames(&bytes);
        assert_eq!(whole.0.len(), 2);
        assert!(whole.1.is_none());
        let first_len = 8 + b"first".len();
        for cut in 1..bytes.len() {
            let (frames, defect) = decode_frames(&bytes[..cut]);
            if cut < first_len {
                assert!(frames.is_empty(), "cut={cut}");
                assert_eq!(defect, Some(WalDefect::Torn { offset: 0 }), "cut={cut}");
            } else if cut == first_len {
                // exactly one whole frame: a clean (shorter) log, not torn
                assert_eq!(frames.len(), 1, "cut={cut}");
                assert!(defect.is_none(), "cut={cut}");
            } else if cut < bytes.len() {
                assert_eq!(frames.len(), 1, "cut={cut}");
                assert_eq!(
                    defect,
                    Some(WalDefect::Torn { offset: first_len }),
                    "cut={cut}"
                );
            }
        }
    }

    #[test]
    fn corrupt_byte_detected_everywhere_after_header_len() {
        let payload = b"some record payload";
        let clean = encode_frame(payload);
        // flipping any byte of crc or payload must yield Corrupt; a
        // flipped length byte yields Corrupt (cap) or Torn (short read)
        for i in 4..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x40;
            let (frames, defect) = decode_frames(&bytes);
            assert!(frames.is_empty(), "byte {i}");
            assert!(
                matches!(defect, Some(WalDefect::Corrupt { .. })),
                "byte {i}: {defect:?}"
            );
        }
    }

    #[test]
    fn absurd_length_is_corruption_not_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let (frames, defect) = decode_frames(&bytes);
        assert!(frames.is_empty());
        assert!(matches!(defect, Some(WalDefect::Corrupt { .. })));
    }

    #[test]
    fn record_round_trip() {
        let obj = UncertainObject::certain(Point::from([1.5, -2.0]));
        for rec in [
            WalRecord::Insert {
                object: Box::new(obj.clone()),
            },
            WalRecord::Remove { id: 42 },
            WalRecord::Update {
                id: 7,
                object: Box::new(obj),
            },
        ] {
            let bytes = rec.encode();
            let out = read_wal_bytes(&bytes);
            assert!(out.defect.is_none());
            assert_eq!(out.records.len(), 1);
            match (&rec, &out.records[0]) {
                (WalRecord::Insert { object: a }, WalRecord::Insert { object: b }) => {
                    assert_eq!(a.mbr(), b.mbr());
                }
                (WalRecord::Remove { id: a }, WalRecord::Remove { id: b }) => assert_eq!(a, b),
                (
                    WalRecord::Update { id: a, object: ao },
                    WalRecord::Update { id: b, object: bo },
                ) => {
                    assert_eq!(a, b);
                    assert_eq!(ao.mbr(), bo.mbr());
                }
                other => panic!("variant changed in round trip: {other:?}"),
            }
        }
    }

    #[test]
    fn valid_frame_with_non_record_payload_is_corrupt() {
        let bytes = encode_frame(b"{\"NotARecord\":{}}");
        let out = read_wal_bytes(&bytes);
        assert!(out.records.is_empty());
        assert!(matches!(out.defect, Some(WalDefect::Corrupt { .. })));
    }

    #[test]
    fn crash_point_names_round_trip() {
        for p in CrashPoint::ALL {
            assert_eq!(CrashPoint::from_name(p.name()), Some(p));
        }
        assert_eq!(CrashPoint::from_name("nonsense"), None);
        assert_eq!(
            parse_crash_spec("wal-mid-record"),
            Some((CrashPoint::WalMidRecord, 1))
        );
        assert_eq!(
            parse_crash_spec("checkpoint-before-rename:3"),
            Some((CrashPoint::CheckpointBeforeRename, 3))
        );
        assert_eq!(parse_crash_spec("wal-mid-record:0"), None);
        assert_eq!(parse_crash_spec(""), None);
    }

    #[test]
    fn fault_io_write_back_loses_unsynced() {
        let dir = std::env::temp_dir().join(format!("udb-walt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.log");
        let _ = std::fs::remove_file(&path);
        let mut io = FaultIo::armed(FaultMode::WriteBack, CrashPoint::WalBeforeSync, 2);
        io.append(&path, b"one").unwrap();
        io.gate(CrashPoint::WalBeforeSync).unwrap();
        io.sync(&path).unwrap();
        io.append(&path, b"two").unwrap();
        assert!(io.gate(CrashPoint::WalBeforeSync).is_err());
        assert!(io.has_crashed());
        assert!(io.append(&path, b"x").is_err(), "dead after crash");
        // only the synced bytes survived
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
