//! The plane-generic query drivers and the sharded query plane.
//!
//! [`QueryPlane`] is the seam between *what a query does* and *where the
//! objects live*. The provided methods are the complete query pipeline —
//! candidate generation dispatch, the kNN/RkNN/top-`m` refinement
//! drivers, batch fan-out over worker-pool lanes — moved verbatim from
//! the single-engine `EngineRef`, which now implements only the storage
//! primitives (classify, candidate streams, prefilter probes) the
//! drivers are written against. [`ShardRef`] implements the same
//! primitives over N shard databases/indexes, so the sharded router and
//! the plain engine execute literally the same driver code: their
//! equality is structural, not a convention kept in sync by hand.
//!
//! # Why sharded results are bit-identical
//!
//! Refinement (`crate::refiner`) multiplies UGF factors in sorted-id
//! order, so result bits depend on *which ids* reach refinement and on
//! the objects behind them — never on index shape or candidate
//! discovery order. The sharded primitives preserve exactly those two
//! inputs:
//!
//! * **Ids are order-isomorphic.** [`crate::ShardedEngine`] interleaves
//!   global ids (`global = local · n + shard`, round-robin inserts), so
//!   sorted-global-id order equals the single engine's sorted-id order
//!   for the same arrival sequence.
//! * **Classify outcomes are tree-shape-independent.** The subtree
//!   filter answers per-object questions (`dominates` /
//!   `never_dominates` on the object MBR); running it per shard and
//!   summing the certain-dominator counts / merging the influence ids
//!   yields the single tree's outcome exactly.
//! * **Candidate sets are visit-order-independent.** The kNN pruning
//!   radius converges to the k-th smallest MaxDist over certainly
//!   existing objects — a property of the object set, not of the
//!   best-first stream that discovers it — so merging per-shard
//!   streams under one global `tighten_dk` bound reproduces the exact
//!   candidate set (`tests/sharded_equivalence.rs` proves all of this
//!   bit-for-bit at 1/2/4 shards).
//! * **The RkNN prefilter exchange only vetoes.** Each shard reports
//!   its capped certain-dominator count inside the probe radius; the
//!   router sums them and drops the candidate once the sum reaches
//!   `k`. A shard can veto a candidate, never add one, and
//!   `Σ_s min(count_s, k) ≥ k ⇔ Σ_s count_s ≥ k`, so the sharded
//!   prefilter skips exactly the objects the single-engine probe skips.
//!
//! Every per-shard unit above — the classify walk, the candidate-stream
//! materialization, the veto probe — is independent until its merge, so
//! [`IdcaConfig::shard_threads`] fans them over worker-pool lanes while
//! every merge and decision (the k-way merge under the global
//! `tighten_dk` bound, count summing, the influence sort) stays on the
//! calling thread. Parallelism is work-only: results are bit-identical
//! at every lane count, and `shard_threads == 1` is the sequential path.

use udb_domination::PairClassifier;
use udb_geometry::Rect;
use udb_index::{NodeDecision, RTree};
use udb_object::{Database, ObjectId, UncertainObject};

use std::sync::Arc;

use crate::batch::{QueryView, SharedRefineCtx};
use crate::config::{IdcaConfig, ObjRef, Predicate, RefineGoal};
use crate::engine::{attach, tighten_dk, BatchShared, SUBTREE_SCAN_CUTOFF};
use crate::parallel::PoolHandle;
use crate::queries::ThresholdResult;
use crate::refiner::{refine_lockstep, refine_top_m, DbView, RefineStats, Refiner, ScratchPool};

/// Per-query execution slot of one batch run (the `fan_each` item).
struct QueryTask<'a> {
    query: QueryView<'a>,
    /// Index-driven candidates from the grouped descent (kNN-style
    /// queries only; RkNN prefilters per database object instead).
    candidates: Vec<ObjectId>,
    out: Vec<ThresholdResult>,
}

/// The storage primitives a query pipeline runs against, plus the
/// pipeline itself as provided methods (see the module docs). `Copy`
/// because tasks fan out over worker-pool lanes by value; `Sync`
/// because those lanes borrow the plane concurrently.
pub(crate) trait QueryPlane<'a>: Copy + Sync {
    /// The engine configuration.
    fn cfg(&self) -> &'a IdcaConfig;

    /// The shared worker-pool handle for query-level fan-out.
    fn pool(&self) -> &'a PoolHandle;

    /// Index-accelerated domination-count refiner: the
    /// complete-domination filter of Algorithm 1 applied through the
    /// plane's index(es), yielding a refiner over the plane's storage.
    fn refiner(
        &self,
        target: ObjRef<'a>,
        reference: ObjRef<'a>,
        predicate: Predicate,
    ) -> Refiner<'a>;

    /// The live object behind an id (global id on a sharded plane).
    ///
    /// # Panics
    /// Panics if `id` is dead or out of range.
    fn object(&self, id: ObjectId) -> &'a UncertainObject;

    /// Index-driven spatial kNN candidate set: all objects not certainly
    /// dominated by at least `k` others w.r.t. `q` under the
    /// MinDist/MaxDist filter. Unsorted (discovery order).
    fn knn_candidates(&self, q: &Rect, k: usize) -> Vec<ObjectId>;

    /// Candidate sets for many `(query MBR, k)` requests; each set
    /// equals [`QueryPlane::knn_candidates`] for that request, sorted
    /// by id.
    fn knn_candidates_batch(&self, queries: &[(Rect, usize)]) -> Vec<Vec<ObjectId>>;

    /// Visits every live object in ascending id order (the RkNN
    /// pipeline's candidate enumeration).
    fn for_each_object(&self, f: impl FnMut(ObjectId, &'a UncertainObject));

    /// Index probe of the RkNN prefilter: `true` once `k` objects
    /// (other than `b_id`) certainly dominate `q` w.r.t. reference
    /// `b_obj`.
    fn certain_dominators_reach(
        &self,
        q: &UncertainObject,
        b_obj: &UncertainObject,
        b_id: ObjectId,
        k: usize,
    ) -> bool;

    // ------------------------------------------------------------------
    // Provided drivers — the one query pipeline every entry point runs.
    // ------------------------------------------------------------------

    /// The kNN-threshold refinement pipeline: index-driven candidates,
    /// subtree-filtered refiners, and lock-step early-exit refinement
    /// that retires candidates mid-loop as soon as their
    /// `P(DomCount < k) ≷ τ` outcome is decided. Shared verbatim by
    /// every entry point so the surfaces cannot drift.
    fn knn_threshold_pipeline(
        &self,
        q: &'a UncertainObject,
        k: usize,
        tau: f64,
        candidates: Vec<ObjectId>,
        shared: BatchShared<'_>,
    ) -> Vec<ThresholdResult> {
        let goal = RefineGoal::threshold(k, tau);
        let refiners = candidates
            .into_iter()
            .map(|id| {
                (
                    id,
                    attach(
                        self.refiner(ObjRef::Db(id), ObjRef::External(q), goal.predicate()),
                        shared,
                    ),
                )
            })
            .collect();
        refine_lockstep(refiners, goal)
    }

    /// The RkNN-threshold pipeline (Corollary 5): every database object
    /// `B` is prefiltered with an index probe — counting objects that
    /// certainly dominate `q` w.r.t. `B` without building a refiner —
    /// and the survivors refine in lock-step with mid-loop retirement.
    fn rknn_threshold_pipeline(
        &self,
        q: &'a UncertainObject,
        k: usize,
        tau: f64,
        shared: BatchShared<'_>,
    ) -> Vec<ThresholdResult> {
        let goal = RefineGoal::threshold(k, tau);
        let mut refiners = Vec::new();
        self.for_each_object(|b_id, b_obj| {
            if self.certain_dominators_reach(q, b_obj, b_id, k) {
                return; // P(DomCount < k) is certainly 0
            }
            refiners.push((
                b_id,
                attach(
                    self.refiner(ObjRef::External(q), ObjRef::Db(b_id), goal.predicate()),
                    shared,
                ),
            ));
        });
        refine_lockstep(refiners, goal)
    }

    /// The top-`m` pipeline: candidates certainly outside the top `m`
    /// retire mid-loop instead of refining to convergence.
    fn top_probable_nn_pipeline(
        &self,
        q: &'a UncertainObject,
        m: usize,
        candidates: Vec<ObjectId>,
        shared: BatchShared<'_>,
    ) -> Vec<ThresholdResult> {
        let goal = RefineGoal::count_below(1);
        let refiners = candidates
            .into_iter()
            .map(|id| {
                (
                    id,
                    attach(
                        self.refiner(ObjRef::Db(id), ObjRef::External(q), goal.predicate()),
                        shared,
                    ),
                )
            })
            .collect();
        refine_top_m(refiners, m)
    }

    /// Executes a set of query views through one shared pass: grouped
    /// candidate generation, the context's decomposition cache, recycled
    /// refiner scratch, and query-level fan-out over
    /// [`crate::IdcaConfig::batch_threads`] worker-pool lanes. Returns
    /// one result vector per query, aligned with input order; each
    /// vector is exactly what the corresponding per-query entry point
    /// returns — bit-identical bounds, iteration counts and ordering, at
    /// every lane count and cache capacity.
    fn run_views(
        &self,
        views: &[QueryView<'a>],
        ctx: &SharedRefineCtx,
    ) -> Vec<Vec<ThresholdResult>> {
        // one grouped descent for every kNN-style candidate set
        let requests: Vec<(Rect, usize)> = views
            .iter()
            .filter_map(|view| match *view {
                QueryView::Knn { q, k, .. } => Some((q.mbr().clone(), k)),
                QueryView::TopM { q, .. } => Some((q.mbr().clone(), 1)),
                QueryView::Rknn { .. } => None,
            })
            .collect();
        // the grouped descent only pays off when there is sharing to
        // group: a batch-of-one (every per-query entry point) takes the
        // plain best-first stream instead — same candidate set (property
        // -tested), sorted to match the grouped path's deterministic
        // order, without the grouped walker's per-node bookkeeping
        let candidate_sets: Vec<Vec<ObjectId>> = if requests.len() <= 1 {
            requests
                .iter()
                .map(|(q, k)| {
                    let mut set = self.knn_candidates(q, *k);
                    set.sort_unstable();
                    set
                })
                .collect()
        } else {
            self.knn_candidates_batch(&requests)
        };
        let mut candidate_sets = candidate_sets.into_iter();
        let mut tasks: Vec<QueryTask<'a>> = views
            .iter()
            .map(|&query| QueryTask {
                query,
                candidates: match query {
                    QueryView::Rknn { .. } => Vec::new(),
                    _ => candidate_sets
                        .next()
                        .expect("one candidate set per request"),
                },
                out: Vec::new(),
            })
            .collect();
        let lanes = self.cfg().batch_threads;
        self.pool().clone().fan_each(lanes, &mut tasks, |task| {
            task.out = self.run_one(task.query, std::mem::take(&mut task.candidates), ctx);
        });
        tasks.into_iter().map(|t| t.out).collect()
    }

    /// Executes one query against the shared context: the *same*
    /// pipeline function the per-query entry points run, joined to the
    /// context's decomposition cache, scratch pool and the query
    /// object's shared decomposition.
    fn run_one(
        &self,
        query: QueryView<'a>,
        candidates: Vec<ObjectId>,
        ctx: &SharedRefineCtx,
    ) -> Vec<ThresholdResult> {
        match query {
            QueryView::Knn { q, k, tau } => {
                let q_dec = ctx.external_decomp(q.pdf());
                self.knn_threshold_pipeline(q, k, tau, candidates, Some((ctx, &q_dec)))
            }
            QueryView::Rknn { q, k, tau } => {
                let q_dec = ctx.external_decomp(q.pdf());
                self.rknn_threshold_pipeline(q, k, tau, Some((ctx, &q_dec)))
            }
            QueryView::TopM { q, m } => {
                let q_dec = ctx.external_decomp(q.pdf());
                self.top_probable_nn_pipeline(q, m, candidates, Some((ctx, &q_dec)))
            }
        }
    }
}

/// The borrowed parts the sharded query pipeline runs against: the
/// shard databases and indexes (position = shard tag) plus the
/// *router-owned* config, pool, scratch and stats — one refinement
/// plane spanning all shards, assembled per call by
/// [`crate::ShardedEngine`].
#[derive(Clone, Copy)]
pub(crate) struct ShardRef<'a> {
    pub(crate) dbs: &'a [&'a Database],
    pub(crate) trees: &'a [&'a RTree<ObjectId>],
    pub(crate) cfg: &'a IdcaConfig,
    pub(crate) pool: &'a PoolHandle,
    pub(crate) scratch: &'a ScratchPool,
    pub(crate) stats: &'a Arc<RefineStats>,
}

impl<'a> ShardRef<'a> {
    /// Shard count (≥ 2 — a one-shard engine takes the plain path).
    fn n(&self) -> u32 {
        self.dbs.len() as u32
    }

    /// Global id of shard `s`'s local id (`global = local · n + s`).
    fn global(&self, s: usize, local: ObjectId) -> ObjectId {
        ObjectId(local.0 * self.n() + s as u32)
    }

    /// Per-shard fan-out width ([`IdcaConfig::shard_threads`], clamped
    /// to the shard count). `1` runs every per-shard loop inline on the
    /// calling thread — the sequential path.
    fn shard_lanes(&self) -> usize {
        self.cfg.shard_threads.min(self.dbs.len())
    }

    /// One shard's complete-domination classify: walks shard `s`'s tree
    /// with the pair filter and returns its certain-dominator count plus
    /// its influence ids (mapped to global ids, unsorted). Per-object
    /// verdicts are index-shape independent, so per-shard outcomes
    /// merge by summing counts and concatenating ids — the fan-out unit
    /// of [`ShardRef::refiner`].
    fn classify_shard(
        &self,
        s: usize,
        pc: &PairClassifier,
        excluded: &[Option<ObjectId>; 2],
    ) -> (usize, Vec<ObjectId>) {
        let tree = self.trees[s];
        let db = self.dbs[s];
        let mut complete = 0usize;
        let mut influence: Vec<ObjectId> = Vec::new();
        self.scratch.with_classify(|scratch| {
            tree.classify_entries_with(scratch, SUBTREE_SCAN_CUTOFF, |mbr| {
                match pc.classify(mbr).decision {
                    Some(false) => NodeDecision::DropAll,
                    Some(true) => NodeDecision::TakeAll,
                    None => NodeDecision::Descend,
                }
            });
            for &local in &scratch.taken {
                let gid = self.global(s, local);
                if excluded.contains(&Some(gid)) {
                    continue;
                }
                if db.get(local).existence() >= 1.0 {
                    complete += 1;
                } else {
                    influence.push(gid);
                }
            }
            influence.extend(
                scratch
                    .undecided
                    .iter()
                    .map(|&local| self.global(s, local))
                    .filter(|gid| !excluded.contains(&Some(*gid))),
            );
        });
        (complete, influence)
    }

    /// Materializes shard `s`'s best-first candidate stream under its
    /// **shard-local** pruning bound: the stream stops once MinDist
    /// exceeds the k-th smallest MaxDist over the shard's own certainly
    /// existing objects. The local bound can only be *looser* than the
    /// global merge's bound (the global `tighten_dk` sees every shard's
    /// certain objects, a superset of this shard's), and the k objects
    /// pinning the local bound are consumed by the merge before anything
    /// past it, so the materialized prefix always covers what the merged
    /// stream would have consumed lazily — the fan-out unit of the
    /// parallel [`ShardRef::knn_candidates`] path.
    fn collect_shard_candidates(&self, q: &Rect, k: usize, s: usize) -> Vec<(f64, ObjectId)> {
        let norm = self.cfg.norm;
        let db = self.dbs[s];
        let mut entries: Vec<(f64, ObjectId)> = Vec::new();
        let mut local_kth = f64::INFINITY;
        let mut k_smallest: Vec<f64> = Vec::with_capacity(k + 1);
        for n in self.trees[s].knn_iter(q, norm) {
            if n.dist > local_kth {
                break;
            }
            entries.push((n.dist, n.payload));
            let obj = db.get(n.payload);
            if obj.existence() < 1.0 {
                continue;
            }
            let max_d = obj.mbr().max_dist_rect(q, norm);
            if let Some(d_k) = tighten_dk(&mut k_smallest, k, max_d) {
                local_kth = d_k;
            }
        }
        entries
    }

    /// The k-way candidate merge under **one** global pruning bound:
    /// the head with the smallest MinDist is consumed next (ties break
    /// to the lowest shard), every certainly existing object tightens
    /// the same `d_k` the single-engine stream maintains, and the merge
    /// stops when the smallest head exceeds `d_k`. Identical whether the
    /// per-shard streams are lazy iterators or pre-materialized vectors
    /// — the consumption sequence depends only on `(MinDist, shard)`
    /// order, which both carry.
    fn merge_shard_streams<I>(&self, q: &Rect, k: usize, streams: Vec<I>) -> Vec<ObjectId>
    where
        I: Iterator<Item = (f64, ObjectId)>,
    {
        let norm = self.cfg.norm;
        let mut streams: Vec<_> = streams.into_iter().map(Iterator::peekable).collect();
        let mut seen: Vec<(ObjectId, f64)> = Vec::new(); // (gid, min_dist)
        let mut kth_max = f64::INFINITY;
        let mut k_smallest: Vec<f64> = Vec::with_capacity(k + 1);
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (s, stream) in streams.iter_mut().enumerate() {
                if let Some(&(dist, _)) = stream.peek() {
                    if best.is_none_or(|(_, d)| dist < d) {
                        best = Some((s, dist));
                    }
                }
            }
            let Some((s, dist)) = best else {
                break; // every shard stream is exhausted
            };
            if dist > kth_max {
                break; // every further object has MinDist > d_k
            }
            let (min_d, local) = streams[s].next().expect("peeked head");
            let gid = self.global(s, local);
            let obj = self.dbs[s].get(local);
            seen.push((gid, min_d));
            if obj.existence() < 1.0 {
                continue; // cannot contribute to d_k
            }
            let max_d = obj.mbr().max_dist_rect(q, norm);
            if let Some(d_k) = tighten_dk(&mut k_smallest, k, max_d) {
                kth_max = d_k;
            }
        }
        seen.into_iter()
            .filter(|(_, min_d)| *min_d <= kth_max)
            .map(|(id, _)| id)
            .collect()
    }

    /// One shard's certain-dominator probe inside the veto radius,
    /// stopping early once `cap` dominators are found (`cap` dominators
    /// from one report already decide the veto) — the fan-out unit of
    /// [`ShardRef::certain_dominators_reach`].
    fn count_shard_dominators(
        &self,
        s: usize,
        q: &UncertainObject,
        b_obj: &UncertainObject,
        b_id: ObjectId,
        radius: f64,
        cap: usize,
    ) -> usize {
        let cfg = self.cfg;
        let db = self.dbs[s];
        let mut count = 0usize;
        self.trees[s].for_each_within_distance(b_obj.mbr(), radius, cfg.norm, &mut |&local| {
            let a = db.get(local);
            // only certainly existing objects are certain dominators
            if self.global(s, local) != b_id
                && a.existence() >= 1.0
                && cfg
                    .criterion
                    .dominates(a.mbr(), q.mbr(), b_obj.mbr(), cfg.norm)
            {
                count += 1;
            }
            count < cap
        });
        count
    }
}

impl<'a> QueryPlane<'a> for ShardRef<'a> {
    fn cfg(&self) -> &'a IdcaConfig {
        self.cfg
    }

    fn pool(&self) -> &'a PoolHandle {
        self.pool
    }

    /// The merged complete-domination filter: each shard's index is
    /// classified independently (per-object verdicts are index-shape
    /// independent), certain-dominator counts sum, and influence ids
    /// map to global ids and merge sorted — exactly the single index's
    /// filter outcome over the union. The per-shard classifies fan out
    /// over [`IdcaConfig::shard_threads`] pool lanes; summed counts are
    /// order-free and the concatenated ids are sorted after the merge,
    /// so the outcome is identical at every lane count.
    fn refiner(
        &self,
        target: ObjRef<'a>,
        reference: ObjRef<'a>,
        predicate: Predicate,
    ) -> Refiner<'a> {
        let cfg = self.cfg;
        let view = DbView::Sharded(self.dbs);
        let target_obj = view.resolve(target);
        let reference_obj = view.resolve(reference);
        let excluded = [target.id(), reference.id()];

        let pc = PairClassifier::new(
            target_obj.mbr(),
            reference_obj.mbr(),
            cfg.criterion,
            cfg.norm,
        );
        let mut tasks: Vec<(usize, usize, Vec<ObjectId>)> =
            (0..self.trees.len()).map(|s| (s, 0, Vec::new())).collect();
        self.pool.fan_each(
            self.shard_lanes(),
            &mut tasks,
            |(s, complete, influence)| {
                (*complete, *influence) = self.classify_shard(*s, &pc, &excluded);
            },
        );
        let mut complete = 0usize;
        let mut influence: Vec<ObjectId> = Vec::new();
        for (_, shard_complete, shard_influence) in tasks {
            complete += shard_complete;
            influence.extend(shard_influence);
        }
        influence.sort_unstable();
        Refiner::with_filter_result_view(
            view,
            target,
            reference,
            cfg.clone(),
            predicate,
            complete,
            influence,
        )
        .with_pool(self.pool.clone())
        .with_stats(Arc::clone(self.stats))
    }

    /// Global-id lookup: shard `id mod n`, local slot `id div n`.
    fn object(&self, id: ObjectId) -> &'a UncertainObject {
        let n = self.n();
        self.dbs[(id.0 % n) as usize].get(ObjectId(id.0 / n))
    }

    /// K-way merge of the per-shard best-first streams under **one**
    /// global pruning bound (see [`ShardRef::merge_shard_streams`]), so
    /// far shards stop contributing as soon as a near shard has pinned
    /// the radius. At `shard_threads == 1` the merge consumes the lazy
    /// per-shard iterators directly; above it each shard first
    /// materializes its stream under its shard-local bound on a pool
    /// lane ([`ShardRef::collect_shard_candidates`]) — a provable
    /// superset of what the merge consumes, since the local bound is
    /// never tighter than the global one — and the calling thread
    /// replays the identical merge over the vectors. Same consumption
    /// sequence, same `tighten_dk` call order, same candidate set.
    ///
    /// Materialization only pays for its buffers when shards are large
    /// enough to keep a lane busy: when every shard holds fewer than
    /// [`IdcaConfig::shard_materialize_min`] objects the lazy merged
    /// path runs even under `shard_threads` fan-out (both paths produce
    /// the identical candidate set, so the threshold is purely a cost
    /// knob).
    fn knn_candidates(&self, q: &Rect, k: usize) -> Vec<ObjectId> {
        assert!(k >= 1);
        let lanes = self.shard_lanes();
        let worth_materializing = self
            .dbs
            .iter()
            .any(|db| db.len() >= self.cfg.shard_materialize_min);
        if lanes <= 1 || !worth_materializing {
            let norm = self.cfg.norm;
            let streams: Vec<_> = self
                .trees
                .iter()
                .map(|tree| tree.knn_iter(q, norm).map(|n| (n.dist, n.payload)))
                .collect();
            return self.merge_shard_streams(q, k, streams);
        }
        let mut tasks: Vec<(usize, Vec<(f64, ObjectId)>)> =
            (0..self.trees.len()).map(|s| (s, Vec::new())).collect();
        self.pool.fan_each(lanes, &mut tasks, |(s, entries)| {
            *entries = self.collect_shard_candidates(q, k, *s);
        });
        let streams: Vec<_> = tasks
            .into_iter()
            .map(|(_, entries)| entries.into_iter())
            .collect();
        self.merge_shard_streams(q, k, streams)
    }

    /// Per-request merged streams (no cross-shard grouped descent yet
    /// — grouped and per-query candidate sets are equal by the property
    /// the single engine tests, so this is a cost choice, not a
    /// semantic one), sorted by id like the grouped path.
    fn knn_candidates_batch(&self, queries: &[(Rect, usize)]) -> Vec<Vec<ObjectId>> {
        queries
            .iter()
            .map(|(q, k)| {
                let mut set = self.knn_candidates(q, *k);
                set.sort_unstable();
                set
            })
            .collect()
    }

    /// Ascending *global* id order — which is ascending arrival order,
    /// matching the single engine's ascending-id scan of the union.
    fn for_each_object(&self, mut f: impl FnMut(ObjectId, &'a UncertainObject)) {
        let mut ids: Vec<ObjectId> = Vec::new();
        for (s, db) in self.dbs.iter().enumerate() {
            ids.extend(db.ids().map(|local| self.global(s, local)));
        }
        ids.sort_unstable();
        let n = self.n();
        for gid in ids {
            let obj = self.dbs[(gid.0 % n) as usize].get(ObjectId(gid.0 / n));
            f(gid, obj);
        }
    }

    /// The cross-shard veto exchange: each shard reports its
    /// certain-dominator count inside the probe radius (capped at `k` —
    /// its probe stops early like the single-engine one), the router
    /// sums the reports and vetoes the candidate once the global count
    /// reaches `k`. Capping is lossless for the veto decision:
    /// `Σ min(count_s, k) ≥ k ⇔ Σ count_s ≥ k` — which also makes the
    /// per-shard probes order-free, so above `shard_threads == 1` they
    /// run as pool lanes (each capped at `k`) and only the sum is taken
    /// on the calling thread; at one lane the shards probe in order and
    /// later shards stop at the remaining deficit, exactly the
    /// sequential exchange.
    fn certain_dominators_reach(
        &self,
        q: &UncertainObject,
        b_obj: &UncertainObject,
        b_id: ObjectId,
        k: usize,
    ) -> bool {
        let radius = q.mbr().min_dist_rect(b_obj.mbr(), self.cfg.norm);
        if radius <= 0.0 {
            // overlapping MBRs: in some world q is at distance 0 from B,
            // which no object can strictly beat — no shard is probed
            return false;
        }
        let lanes = self.shard_lanes();
        if lanes <= 1 {
            let mut count = 0usize;
            for s in 0..self.trees.len() {
                if count >= k {
                    break; // the summed reports already veto
                }
                count += self.count_shard_dominators(s, q, b_obj, b_id, radius, k - count);
            }
            return count >= k;
        }
        let mut counts: Vec<(usize, usize)> = (0..self.trees.len()).map(|s| (s, 0)).collect();
        self.pool.fan_each(lanes, &mut counts, |(s, count)| {
            *count = self.count_shard_dominators(*s, q, b_obj, b_id, radius, k);
        });
        counts.iter().map(|(_, count)| count).sum::<usize>() >= k
    }
}
