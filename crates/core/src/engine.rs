//! The owned, lifetime-free serving engine — and the one internal query
//! pipeline every entry point (owned or borrowed, per-query or batched)
//! runs through.
//!
//! [`Engine`] owns its [`Database`], R-tree, worker pool and — unlike
//! the borrowed snapshot engine it replaced — a
//! **persistent, bounded, invalidation-aware** decomposition cache
//! ([`crate::DecompCache`]) plus scratch pool that live *across*
//! `run_batch` calls. A serving system re-hitting the same hot objects
//! over a stream of arrival batches replays their kd-decomposition
//! expansions from the cache instead of recomputing them every batch;
//! [`crate::IdcaConfig::decomp_cache_entries`] bounds the memory (LRU
//! eviction after every call, `0` = per-call caches, the old
//! semantics).
//!
//! The engine is **mutable in place**: [`Engine::insert`] /
//! [`Engine::remove`] / [`Engine::update`] maintain the R-tree
//! incrementally (R*-flavoured insert, condensing delete) and
//! invalidate exactly the touched object's cache entry — no rebuild,
//! no full cache flush. Queries take `&self`, mutations `&mut self`;
//! the borrow checker serializes them, so no query can observe a
//! half-applied mutation.
//!
//! All sharing is work-only: query results are bit-identical to the
//! scan-based [`crate::QueryEngine`] reference paths at every thread
//! count and every cache capacity (property-tested in
//! `tests/owned_engine.rs`, `tests/batch_equivalence.rs` and
//! `tests/early_exit_equivalence.rs`).
//!
//! An engine can also be **durable**: [`Engine::open`] binds it to a
//! directory holding a checkpoint + write-ahead log
//! ([`crate::durable`]), every mutation is logged before it is applied,
//! and reopening the directory after a crash recovers a state that
//! answers queries bit-identically to the never-crashed engine
//! (adversarially tested in `tests/crash_recovery.rs`).

use udb_domination::PairClassifier;
use udb_geometry::Rect;
use udb_index::{NodeDecision, RTree};
use udb_object::{Database, ObjectId, UncertainObject};

use std::path::Path;
use std::sync::Arc;

use crate::batch::{DecompCache, QueryBatch, QueryView, SharedDecomp, SharedRefineCtx};
use crate::config::{IdcaConfig, ObjRef, Predicate};
use crate::durable::{rebuild_tree, recover, Durability, DurableError, RecoveryReport};
use crate::parallel::PoolHandle;
use crate::queries::ThresholdResult;
use crate::refiner::{RefineStats, Refiner, ScratchPool};
use crate::router::QueryPlane;
use crate::standing::{
    self, validate_spec, ResultDelta, StandingRegistry, StandingSpec, StandingStats,
};
use crate::wal::{DurableIo, FileIo, WalRecord};

/// The batch-sharing state a query pipeline may run under: the batch's
/// shared context plus the query object's per-query shared
/// decomposition. `None` is the plain per-query execution.
pub(crate) type BatchShared<'s> = Option<(&'s SharedRefineCtx, &'s SharedDecomp)>;

/// Entry-count cutoff of the per-candidate subtree filter: a `Descend`
/// verdict on a subtree holding at most this many entries switches to
/// the scan filter (per-entry tests, no interior MBR tests below).
/// Results are cutoff-invariant for the monotone domination criterion —
/// this is purely a cost knob: near the decision boundary small subtrees
/// overwhelmingly answer `Descend` at every level, so their interior
/// node tests are wasted work. One leaf level (fan-out 16) plus slack.
pub(crate) const SUBTREE_SCAN_CUTOFF: usize = 24;

/// Joins a refiner to a batch's shared state, or leaves it untouched for
/// plain per-query execution (the only difference between the two
/// pipeline shapes).
pub(crate) fn attach<'b>(refiner: Refiner<'b>, shared: BatchShared<'_>) -> Refiner<'b> {
    match shared {
        Some((ctx, q_dec)) => refiner.with_shared_ctx(ctx).with_external_decomp(q_dec),
        None => refiner,
    }
}

/// Maintains the `k` smallest MaxDists seen over *certainly existing*
/// objects (`k_smallest`, kept sorted ascending): inserts `max_d` if it
/// belongs, and returns the updated pruning radius `d_k` once `k` values
/// are held. Shared by the per-query candidate stream, the grouped
/// batch descent and the sharded merged stream so the pruning rule
/// cannot diverge between them.
pub(crate) fn tighten_dk(k_smallest: &mut Vec<f64>, k: usize, max_d: f64) -> Option<f64> {
    let pos = k_smallest
        .binary_search_by(|d| d.partial_cmp(&max_d).expect("NaN"))
        .unwrap_or_else(|p| p);
    if pos < k {
        k_smallest.insert(pos, max_d);
        k_smallest.truncate(k);
        if k_smallest.len() == k {
            return Some(k_smallest[k - 1]);
        }
    }
    None
}

/// The borrowed parts every query pipeline runs against. Every entry
/// point — per-query or batched — assembles one of these per call and
/// executes the *same* methods, so the public surfaces cannot drift:
/// their equality is structural, not a convention kept in sync by hand.
#[derive(Clone, Copy)]
pub(crate) struct EngineRef<'a> {
    pub(crate) db: &'a Database,
    pub(crate) cfg: &'a IdcaConfig,
    pub(crate) pool: &'a PoolHandle,
    pub(crate) tree: &'a RTree<ObjectId>,
    pub(crate) scratch: &'a ScratchPool,
    pub(crate) stats: &'a Arc<RefineStats>,
}

impl<'a> QueryPlane<'a> for EngineRef<'a> {
    fn cfg(&self) -> &'a IdcaConfig {
        self.cfg
    }

    fn pool(&self) -> &'a PoolHandle {
        self.pool
    }

    /// Index-accelerated domination-count refiner: the complete-domination
    /// filter of Algorithm 1 applied to whole R-tree subtrees instead of a
    /// linear scan. Sound because both criteria are monotone under MBR
    /// containment: shrinking an object's rectangle only decreases its
    /// MaxDist and increases its MinDist terms, so a subtree-level
    /// `dominates` / `never_dominates` verdict holds for every object
    /// below. Existentially uncertain objects accepted at subtree level
    /// are demoted to influence objects (they are never *certain*
    /// dominators).
    ///
    /// The traversal checks a reusable traversal scratch out of the
    /// engine's [`ScratchPool`] (no allocation per candidate, no
    /// serialization across concurrent batch lanes), precomputes the
    /// `(B, R)` criterion halves once per candidate ([`PairClassifier`]
    /// — every node and entry test then evaluates only the subtree-side
    /// terms) and scans small undecided subtrees flat instead of testing
    /// their interior nodes (`SUBTREE_SCAN_CUTOFF`).
    fn refiner(
        &self,
        target: ObjRef<'a>,
        reference: ObjRef<'a>,
        predicate: Predicate,
    ) -> Refiner<'a> {
        let db = self.db;
        let cfg = self.cfg;
        let target_obj = target.resolve(db);
        let reference_obj = reference.resolve(db);
        let (b_mbr, r_mbr) = (target_obj.mbr(), reference_obj.mbr());
        let excluded = [target.id(), reference.id()];

        let pc = PairClassifier::new(b_mbr, r_mbr, cfg.criterion, cfg.norm);
        let (complete, influence) = self.scratch.with_classify(|scratch| {
            self.tree
                .classify_entries_with(scratch, SUBTREE_SCAN_CUTOFF, |mbr| {
                    // same decisions as the scan filter's classify (the
                    // criterion tests are mutually exclusive)
                    match pc.classify(mbr).decision {
                        Some(false) => NodeDecision::DropAll,
                        Some(true) => NodeDecision::TakeAll,
                        None => NodeDecision::Descend,
                    }
                });
            let mut complete = 0usize;
            let mut influence = Vec::with_capacity(scratch.undecided.len());
            for &id in &scratch.taken {
                if excluded.contains(&Some(id)) {
                    continue;
                }
                if db.get(id).existence() >= 1.0 {
                    complete += 1;
                } else {
                    influence.push(id);
                }
            }
            influence.extend(
                scratch
                    .undecided
                    .iter()
                    .copied()
                    .filter(|id| !excluded.contains(&Some(*id))),
            );
            (complete, influence)
        });
        let mut influence = influence;
        influence.sort_unstable();
        Refiner::with_filter_result(
            db,
            target,
            reference,
            cfg.clone(),
            predicate,
            complete,
            influence,
        )
        .with_pool(self.pool.clone())
        .with_stats(Arc::clone(self.stats))
    }

    /// Database slot lookup.
    fn object(&self, id: ObjectId) -> &'a UncertainObject {
        self.db.get(id)
    }

    /// Index-driven spatial kNN candidate set: all objects that are *not*
    /// certainly dominated by at least `k` others w.r.t. `q` under the
    /// MinDist/MaxDist filter. Sound superset of every object with
    /// non-zero kNN probability. Only certainly existing objects tighten
    /// the pruning bound `d_k` (an object that may be absent guarantees
    /// no domination), matching [`crate::QueryEngine::knn_candidates`].
    fn knn_candidates(&self, q: &Rect, k: usize) -> Vec<ObjectId> {
        assert!(k >= 1);
        let norm = self.cfg.norm;
        let mut seen: Vec<(ObjectId, f64)> = Vec::new(); // (id, max_dist)
        let mut kth_max = f64::INFINITY;
        let mut k_smallest: Vec<f64> = Vec::with_capacity(k + 1);
        let db = self.db;
        for n in self.tree.knn_iter(q, norm) {
            if n.dist > kth_max {
                break; // every further object has MinDist > d_k
            }
            let obj = db.get(n.payload);
            seen.push((n.payload, n.dist));
            if obj.existence() < 1.0 {
                continue; // cannot contribute to d_k
            }
            let max_d = obj.mbr().max_dist_rect(q, norm);
            if let Some(d_k) = tighten_dk(&mut k_smallest, k, max_d) {
                kth_max = d_k;
            }
        }
        seen.into_iter()
            .filter(|(_, min_d)| *min_d <= kth_max)
            .map(|(id, _)| id)
            .collect()
    }

    /// Grouped spatial kNN candidate generation: the candidate sets of
    /// many `(query MBR, k)` requests from **one** best-first R-tree
    /// descent ([`RTree::for_each_grouped`]) instead of one descent per
    /// query. Each request's set equals [`EngineRef::knn_candidates`]
    /// for the same `(q, k)` — the per-query pruning rule (only certainly
    /// existing objects tighten `d_k`; survivors have `MinDist ≤ d_k`) is
    /// applied with per-query state while the tree is walked once, so
    /// subtrees shared by clustered queries are tested once. Returned
    /// sets are sorted by id (candidate order does not affect query
    /// results; a deterministic order keeps the batched pipeline
    /// reproducible).
    ///
    /// # Panics
    /// Panics if any request has `k == 0`.
    fn knn_candidates_batch(&self, queries: &[(Rect, usize)]) -> Vec<Vec<ObjectId>> {
        struct QState {
            /// `(id, MinDist)` of every object visited within the
            /// query's (then-current) radius; filtered by the final
            /// radius at the end, like the per-query stream.
            seen: Vec<(ObjectId, f64)>,
            /// The `k` smallest MaxDists over certain objects so far.
            k_smallest: Vec<f64>,
        }
        for (_, k) in queries {
            assert!(*k >= 1, "k must be positive");
        }
        let norm = self.cfg.norm;
        let db = self.db;
        let rects: Vec<Rect> = queries.iter().map(|(r, _)| r.clone()).collect();
        let mut radii = vec![f64::INFINITY; queries.len()];
        let mut states: Vec<QState> = queries
            .iter()
            .map(|(_, k)| QState {
                seen: Vec::new(),
                k_smallest: Vec::with_capacity(k + 1),
            })
            .collect();
        self.tree
            .for_each_grouped(&rects, norm, &mut radii, |i, &id, min_d, radii| {
                let st = &mut states[i];
                st.seen.push((id, min_d));
                let obj = db.get(id);
                if obj.existence() < 1.0 {
                    return; // cannot contribute to d_k
                }
                let (q, k) = &queries[i];
                let max_d = obj.mbr().max_dist_rect(q, norm);
                if let Some(d_k) = tighten_dk(&mut st.k_smallest, *k, max_d) {
                    radii[i] = d_k;
                }
            });
        states
            .into_iter()
            .zip(radii)
            .map(|(st, d_k)| {
                let mut out: Vec<ObjectId> = st
                    .seen
                    .into_iter()
                    .filter(|(_, min_d)| *min_d <= d_k)
                    .map(|(id, _)| id)
                    .collect();
                out.sort_unstable();
                out
            })
            .collect()
    }

    /// Ascending id order: the database's slot order.
    fn for_each_object(&self, mut f: impl FnMut(ObjectId, &'a UncertainObject)) {
        for (id, obj) in self.db.iter() {
            f(id, obj);
        }
    }

    /// Index probe of the RkNN prefilter: `true` once `k` objects (other
    /// than `B`) certainly dominate `q` w.r.t. reference `B`. Any
    /// dominating `A` satisfies `MinDist(A, B) < MinDist(q, B)` (for
    /// every placement `a`, `b`: `d(a, b) < d(q, b)`), so a bounded tree
    /// probe within that radius — recursive and allocation-free via
    /// [`RTree::for_each_within_distance`] — covers every possible
    /// dominator; the criterion test itself matches the scan path's, so
    /// the two prefilters skip exactly the same objects.
    fn certain_dominators_reach(
        &self,
        q: &UncertainObject,
        b_obj: &UncertainObject,
        b_id: ObjectId,
        k: usize,
    ) -> bool {
        let cfg = self.cfg;
        let radius = q.mbr().min_dist_rect(b_obj.mbr(), cfg.norm);
        if radius <= 0.0 {
            // overlapping MBRs: in some world q is at distance 0 from B,
            // which no object can strictly beat
            return false;
        }
        let db = self.db;
        let mut count = 0usize;
        self.tree
            .for_each_within_distance(b_obj.mbr(), radius, cfg.norm, &mut |&id| {
                let a = db.get(id);
                // only certainly existing objects are certain dominators
                if id != b_id
                    && a.existence() >= 1.0
                    && cfg
                        .criterion
                        .dominates(a.mbr(), q.mbr(), b_obj.mbr(), cfg.norm)
                {
                    count += 1;
                }
                count < k
            });
        count >= k
    }
}

/// The owned, lifetime-free serving engine: owns its [`Database`],
/// R-tree, worker pool and the persistent cross-batch decomposition
/// cache / scratch pool (see the module docs). Mutate in place with
/// [`Engine::insert`] / [`Engine::remove`] / [`Engine::update`]; query
/// with the per-query entry points or [`Engine::run_batch`] — the
/// per-query methods are batch-of-one wrappers over the same internal
/// pipeline, so everything benefits from the warm cache.
///
/// ```
/// use udb_core::{Engine, QueryBatch};
/// use udb_geometry::Point;
/// use udb_object::{Database, UncertainObject};
///
/// let db = Database::from_objects(vec![
///     UncertainObject::certain(Point::from([1.0, 0.0])),
///     UncertainObject::certain(Point::from([2.0, 0.0])),
/// ]);
/// let mut engine = Engine::new(db);
/// let q = UncertainObject::certain(Point::from([0.0, 0.0]));
/// let hits = engine.knn_threshold(&q, 1, 0.5);
/// assert_eq!(hits.len(), 1);
///
/// // in-place mutation: no rebuild, the index and caches follow along
/// let id = engine.insert(UncertainObject::certain(Point::from([0.5, 0.0])));
/// let hits = engine.knn_threshold(&q, 1, 0.5);
/// assert!(hits.iter().any(|r| r.id == id && r.is_hit(0.5)));
/// engine.remove(id);
/// ```
pub struct Engine {
    db: Database,
    cfg: IdcaConfig,
    pool: PoolHandle,
    tree: RTree<ObjectId>,
    /// The persistent cross-batch decomposition cache (unused when
    /// [`IdcaConfig::decomp_cache_entries`] is 0).
    decomps: Arc<DecompCache>,
    /// The persistent refiner/filter scratch pool.
    scratch: Arc<ScratchPool>,
    /// Two-tier refinement counters, shared by every refiner the engine
    /// builds across all calls.
    stats: Arc<RefineStats>,
    /// The WAL + checkpoint sidecar of a durable engine; `None` keeps
    /// the engine purely in-memory.
    durable: Option<Durability>,
    /// Mutations applied over the engine's lifetime (checkpointed +
    /// live) — in-memory engines count from construction, recovered
    /// engines continue the persisted count.
    mutations: u64,
    /// What recovery found, when this engine came from [`Engine::open`].
    recovery: Option<RecoveryReport>,
    /// Registered standing queries and their queued result deltas.
    /// In-memory only — subscriptions do not survive a durable reopen.
    standing: StandingRegistry,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("objects", &self.db.len())
            .field("tree_entries", &self.tree.len())
            .field("decomp_cache_len", &self.decomps.len())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

/// Test-suite shim: `UDB_WAL=1` (any non-zero integer) makes every
/// engine built through [`Engine::new`] / [`Engine::with_config`]
/// durable, backed by a fresh auto-removed temp directory — the CI
/// matrix's lever for routing the *entire* suite (every mutation
/// oracle, every serve equivalence test) through the WAL path.
/// Durability is work-only, so all results are unchanged.
fn wal_autodir_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("UDB_WAL")
            .ok()
            .and_then(|v| v.parse::<i64>().ok())
            .is_some_and(|v| v != 0)
    })
}

impl Engine {
    /// Takes ownership of `db` and builds the index (STR bulk load) over
    /// its MBRs, with the default configuration.
    pub fn new(db: Database) -> Self {
        Engine::with_config(db, IdcaConfig::default())
    }

    /// Takes ownership of `db` with an explicit configuration. The
    /// engine is in-memory — unless the `UDB_WAL` CI shim is set, which
    /// backs it by an auto-removed temp WAL directory so the whole test
    /// suite exercises the durable path; [`Engine::open`] makes a real
    /// durable engine.
    pub fn with_config(db: Database, cfg: IdcaConfig) -> Self {
        let mut engine = Engine::assemble(db, cfg);
        if wal_autodir_enabled() {
            use std::sync::atomic::{AtomicU64, Ordering};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "udb-wal-auto-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("UDB_WAL auto dir");
            let sync_every = engine.cfg.wal_sync_every;
            engine.durable = Some(
                Durability::new(dir, Box::new(FileIo::new()), 0, sync_every).with_auto_cleanup(),
            );
            engine
                .checkpoint()
                .expect("UDB_WAL auto-dir initial checkpoint");
        }
        engine
    }

    /// The shared construction path: indexes `db`, no durability.
    fn assemble(db: Database, cfg: IdcaConfig) -> Self {
        let tree = rebuild_tree(&db);
        Engine {
            db,
            tree,
            decomps: Arc::new(DecompCache::new(cfg.split_strategy)),
            scratch: Arc::new(ScratchPool::new()),
            pool: PoolHandle::default(),
            stats: Arc::new(RefineStats::default()),
            cfg,
            durable: None,
            mutations: 0,
            recovery: None,
            standing: StandingRegistry::default(),
        }
    }

    /// Opens (creating or recovering) a durable engine over `dir` with
    /// the default configuration: loads the newest valid checkpoint,
    /// replays the WAL tail, then takes a fresh checkpoint
    /// (*checkpoint-on-open* — recovery never appends to a possibly
    /// torn tail, and crashing during open is idempotent). The
    /// recovered state answers queries bit-identically to an engine
    /// that never crashed; [`Engine::recovery_report`] documents every
    /// degradation (torn tail dropped, corrupt checkpoint skipped).
    ///
    /// # Errors
    /// Fails on IO errors, or when checkpoints exist but none can be
    /// loaded ([`DurableError::NoValidCheckpoint`] — recovering an
    /// empty database over existing data would be a silent wrong
    /// answer).
    pub fn open(dir: impl AsRef<Path>) -> Result<Engine, DurableError> {
        Engine::open_with_config(dir, IdcaConfig::default())
    }

    /// [`Engine::open`] with an explicit configuration
    /// ([`IdcaConfig::wal_sync_every`] / [`IdcaConfig::checkpoint_every`]
    /// govern the durability cadence).
    pub fn open_with_config(
        dir: impl AsRef<Path>,
        cfg: IdcaConfig,
    ) -> Result<Engine, DurableError> {
        Engine::open_with_io(dir, cfg, Box::new(FileIo::new()))
    }

    /// [`Engine::open`] with an injected IO layer — the fault-injection
    /// hook: [`crate::wal::FaultIo`] simulates crashes at any
    /// [`crate::wal::CrashPoint`] deterministically in-process.
    pub fn open_with_io(
        dir: impl AsRef<Path>,
        cfg: IdcaConfig,
        io: Box<dyn DurableIo>,
    ) -> Result<Engine, DurableError> {
        let dir = dir.as_ref().to_path_buf();
        let state = recover(&dir)?;
        let mut engine = Engine::assemble(state.db, cfg);
        engine.mutations = state.mutations;
        engine.recovery = Some(state.report);
        let sync_every = engine.cfg.wal_sync_every;
        engine.durable = Some(Durability::new(dir, io, state.max_seq, sync_every));
        engine.checkpoint()?;
        Ok(engine)
    }

    /// The engine's two-tier refinement counters: how many rounds across
    /// all refiners were decided by the tier-1 prefilter vs. computed by
    /// the exact tier-2 UGF snapshot (see [`IdcaConfig::prefilter`]).
    pub fn refine_stats(&self) -> &Arc<RefineStats> {
        &self.stats
    }

    /// The owned database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The engine configuration.
    pub fn config(&self) -> &IdcaConfig {
        &self.cfg
    }

    /// The underlying R-tree.
    pub fn tree(&self) -> &RTree<ObjectId> {
        &self.tree
    }

    /// The engine's shared worker-pool handle.
    pub fn pool_handle(&self) -> &PoolHandle {
        &self.pool
    }

    /// Consumes the engine, handing the database back.
    pub fn into_db(self) -> Database {
        self.db
    }

    /// Whether this engine logs mutations to a WAL directory.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The durable directory, when the engine is durable.
    pub fn wal_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(Durability::dir)
    }

    /// Mutations applied over the engine's lifetime: in-memory engines
    /// count from construction, recovered engines continue the
    /// persisted count — so a recovered engine and the live engine it
    /// crashed from can be diffed op-for-op.
    pub fn mutations(&self) -> u64 {
        self.mutations
    }

    /// What recovery found and did, when this engine came from
    /// [`Engine::open`]: basis checkpoint, fallback count, replayed
    /// records and every degradation warning. `None` for engines that
    /// were constructed, not opened.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Number of objects currently held by the persistent decomposition
    /// cache (0 when [`IdcaConfig::decomp_cache_entries`] is 0 —
    /// per-call caches never land here).
    pub fn decomp_cache_len(&self) -> usize {
        self.decomps.len()
    }

    /// The borrowed parts the internal pipeline runs against.
    pub(crate) fn parts(&self) -> EngineRef<'_> {
        EngineRef {
            db: &self.db,
            cfg: &self.cfg,
            pool: &self.pool,
            tree: &self.tree,
            scratch: &self.scratch,
            stats: &self.stats,
        }
    }

    /// The shared context for one call: the engine's persistent cache
    /// when cross-batch caching is on, a fresh per-call cache when it is
    /// off (`decomp_cache_entries == 0` — the pre-owned-engine
    /// decomposition semantics). The scratch pool is the engine's
    /// persistent one either way: buffer recycling is pure allocation
    /// reuse (it cannot change results or skip work), so the cache knob
    /// governs only what it names.
    fn ctx(&self) -> SharedRefineCtx {
        if self.cfg.decomp_cache_entries == 0 {
            SharedRefineCtx::from_parts(
                Arc::new(DecompCache::new(self.cfg.split_strategy)),
                Arc::clone(&self.scratch),
            )
        } else {
            SharedRefineCtx::from_parts(Arc::clone(&self.decomps), Arc::clone(&self.scratch))
        }
    }

    /// Post-call cache maintenance: LRU-trim the persistent cache back
    /// to its configured capacity.
    fn trim_cache(&self) {
        if self.cfg.decomp_cache_entries > 0 {
            self.decomps.trim(self.cfg.decomp_cache_entries);
        }
    }

    // ------------------------------------------------------------------
    // In-place mutation
    // ------------------------------------------------------------------
    //
    // Durable engines are write-ahead: each mutation is pre-validated
    // (so a logged record is guaranteed to replay cleanly), logged,
    // *then* applied. The `try_*` variants surface WAL IO errors; the
    // plain variants keep the infallible in-memory signatures and
    // panic if the log rejects a write (a durable engine that cannot
    // log must not silently keep serving acknowledged-but-volatile
    // state).

    /// Inserts an object, returning its fresh id: the database appends,
    /// the R-tree takes the new MBR incrementally (R*-flavoured
    /// insertion) — no rebuild. The decomposition cache needs no
    /// invalidation: ids are never reused, so the fresh id cannot alias
    /// stale cached state.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch with the database, or when a
    /// durable engine fails to log ([`Engine::try_insert`] to handle).
    pub fn insert(&mut self, object: UncertainObject) -> ObjectId {
        self.try_insert(object).expect("WAL append failed")
    }

    /// [`Engine::insert`], surfacing WAL errors instead of panicking.
    ///
    /// # Errors
    /// Fails when the durable engine cannot log the record; the
    /// mutation is then **not** applied.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch with the database.
    pub fn try_insert(&mut self, object: UncertainObject) -> Result<ObjectId, DurableError> {
        if let Some(d) = self.db.dims() {
            assert_eq!(
                d,
                object.dims(),
                "object dimensionality must match the database"
            );
        }
        if let Some(d) = &mut self.durable {
            let rec = WalRecord::Insert {
                object: Box::new(object.clone()),
            };
            d.log(&rec)?;
        }
        let id = self.db.insert(object);
        self.tree.insert(self.db.get(id).mbr().clone(), id);
        self.after_mutation()?;
        if !self.standing.is_empty() {
            let m = standing::Mutation {
                id,
                old: None,
                new: Some(self.db.get(id).mbr().clone()),
            };
            self.maintain_standing(&m);
        }
        Ok(id)
    }

    /// Removes an object in place, returning it: the database slot
    /// becomes a tombstone (the id is dead forever), the R-tree entry is
    /// deleted with condensing, and the object's decomposition cache
    /// entry is invalidated — its cached expansions describe a PDF that
    /// no longer exists.
    ///
    /// # Panics
    /// Panics if `id` is not a live object, or when a durable engine
    /// fails to log ([`Engine::try_remove`] to handle).
    pub fn remove(&mut self, id: ObjectId) -> UncertainObject {
        self.try_remove(id).expect("WAL append failed")
    }

    /// [`Engine::remove`], surfacing WAL errors instead of panicking.
    ///
    /// # Errors
    /// Fails when the durable engine cannot log the record; the
    /// mutation is then **not** applied.
    ///
    /// # Panics
    /// Panics if `id` is not a live object.
    pub fn try_remove(&mut self, id: ObjectId) -> Result<UncertainObject, DurableError> {
        assert!(self.db.contains(id), "{id:?} is not a live object");
        if let Some(d) = &mut self.durable {
            d.log(&WalRecord::Remove { id: id.0 })?;
        }
        let object = self.db.remove(id);
        let removed = self.tree.remove(object.mbr(), &id);
        assert!(removed, "index entry missing for {id:?}");
        self.decomps.invalidate(id);
        self.after_mutation()?;
        if !self.standing.is_empty() {
            let m = standing::Mutation {
                id,
                old: Some(object.mbr().clone()),
                new: None,
            };
            self.maintain_standing(&m);
        }
        Ok(object)
    }

    /// Replaces the object behind a live id in place, returning the
    /// previous object: the R-tree entry moves to the new MBR
    /// (delete + insert) and the id's decomposition cache entry is
    /// invalidated so no stale expansion of the old PDF can ever replay.
    ///
    /// # Panics
    /// Panics if `id` is dead or the dimensionality differs, or when a
    /// durable engine fails to log ([`Engine::try_update`] to handle).
    pub fn update(&mut self, id: ObjectId, object: UncertainObject) -> UncertainObject {
        self.try_update(id, object).expect("WAL append failed")
    }

    /// [`Engine::update`], surfacing WAL errors instead of panicking.
    ///
    /// # Errors
    /// Fails when the durable engine cannot log the record; the
    /// mutation is then **not** applied.
    ///
    /// # Panics
    /// Panics if `id` is dead or the dimensionality differs.
    pub fn try_update(
        &mut self,
        id: ObjectId,
        object: UncertainObject,
    ) -> Result<UncertainObject, DurableError> {
        let old_dims = self
            .db
            .try_get(id)
            .unwrap_or_else(|| panic!("{id:?} is not a live object"))
            .dims();
        assert_eq!(
            old_dims,
            object.dims(),
            "object dimensionality must match the database"
        );
        if let Some(d) = &mut self.durable {
            let rec = WalRecord::Update {
                id: id.0,
                object: Box::new(object.clone()),
            };
            d.log(&rec)?;
        }
        let old = self.db.replace(id, object);
        let removed = self.tree.remove(old.mbr(), &id);
        assert!(removed, "index entry missing for {id:?}");
        self.tree.insert(self.db.get(id).mbr().clone(), id);
        self.decomps.invalidate(id);
        self.after_mutation()?;
        if !self.standing.is_empty() {
            let m = standing::Mutation {
                id,
                old: Some(old.mbr().clone()),
                new: Some(self.db.get(id).mbr().clone()),
            };
            self.maintain_standing(&m);
        }
        Ok(old)
    }

    /// Post-apply bookkeeping shared by every mutation: the lifetime
    /// counter, plus the automatic checkpoint cadence of durable
    /// engines ([`IdcaConfig::checkpoint_every`]).
    fn after_mutation(&mut self) -> Result<(), DurableError> {
        self.mutations += 1;
        let due = self.cfg.checkpoint_every > 0
            && self
                .durable
                .as_ref()
                .is_some_and(|d| d.since_checkpoint() >= self.cfg.checkpoint_every as u64);
        if due {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Takes a checkpoint **now**: compacts leading tombstones
    /// ([`Database::compact`] — ids stay stable), rebuilds the R-tree
    /// from scratch (undoing any degradation accumulated through
    /// incremental maintenance under churn), and — on a durable engine
    /// — snapshots the database, rotates the WAL and prunes superseded
    /// files. Queries before and after are bit-identical: candidate
    /// *sets* are tree-structure-independent (the same MinDist/MaxDist
    /// pruning rule decides membership), and refinement never depends
    /// on the tree shape.
    ///
    /// In-memory engines get the compaction + rebuild half — the churn
    /// maintenance hook — with no durability side effects.
    ///
    /// # Errors
    /// Fails when the durable snapshot cannot be written; the engine's
    /// in-memory state is still valid (and the previous checkpoint +
    /// WAL still recover it).
    pub fn checkpoint(&mut self) -> Result<(), DurableError> {
        self.db.compact();
        self.tree = rebuild_tree(&self.db);
        if let Some(d) = &mut self.durable {
            d.checkpoint(&self.db, self.mutations)?;
        }
        Ok(())
    }

    /// Forces every logged record to stable storage now — the explicit
    /// flush for `wal_sync_every > 1` / `= 0` cadences (clean shutdown,
    /// end-of-stream). A no-op on in-memory engines.
    ///
    /// # Errors
    /// Fails when the fsync fails.
    pub fn wal_sync(&mut self) -> Result<(), DurableError> {
        match &mut self.durable {
            Some(d) => d.sync(),
            None => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Standing queries
    // ------------------------------------------------------------------

    /// Registers a standing query: answers it once (bit-identical to the
    /// matching one-shot entry point) and keeps the result set
    /// incrementally maintained across every subsequent mutation (see
    /// [`crate::standing`]). Returns the subscription id and the
    /// initial results; changes arrive as [`ResultDelta`]s through
    /// [`Engine::take_standing_deltas`]. Subscriptions are in-memory
    /// only — they do not survive a durable reopen.
    ///
    /// # Panics
    /// Panics on invalid parameters (`k`/`m` must be positive, `tau`
    /// in `[0, 1)`), like the one-shot entry points.
    pub fn subscribe(
        &mut self,
        q: UncertainObject,
        spec: StandingSpec,
    ) -> (u64, Vec<ThresholdResult>) {
        validate_spec(&spec);
        let mut reg = std::mem::take(&mut self.standing);
        let out = {
            let ctx = self.ctx();
            standing::subscribe_registry(&mut reg, self.parts(), &ctx, q, spec)
        };
        self.trim_cache();
        self.standing = reg;
        out
    }

    /// Drops a subscription; `false` when the id is unknown.
    pub fn unsubscribe(&mut self, id: u64) -> bool {
        self.standing.unsubscribe(id)
    }

    /// The standing-query maintenance counters.
    pub fn standing_stats(&self) -> StandingStats {
        self.standing.stats()
    }

    /// Drains the result deltas queued by maintenance since the last
    /// call (in mutation, then registration order).
    pub fn take_standing_deltas(&mut self) -> Vec<ResultDelta> {
        self.standing.take_deltas()
    }

    /// The registered standing queries.
    pub fn standing_queries(&self) -> &[standing::StandingQuery] {
        self.standing.subscriptions()
    }

    /// The post-apply maintenance pass (see [`crate::standing`]): the
    /// registry is taken out of the engine while the plane borrows it,
    /// exactly like a query run, then put back with its queued deltas.
    fn maintain_standing(&mut self, m: &standing::Mutation) {
        let mut reg = std::mem::take(&mut self.standing);
        {
            let ctx = self.ctx();
            standing::maintain_registry(&mut reg, self.parts(), &ctx, m);
        }
        self.trim_cache();
        self.standing = reg;
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Index-accelerated domination-count refiner over this engine's
    /// database and index. Batch-shared state is not attached; use the
    /// query entry points for cached execution.
    pub fn refiner<'b>(
        &'b self,
        target: ObjRef<'b>,
        reference: ObjRef<'b>,
        predicate: Predicate,
    ) -> Refiner<'b> {
        self.parts().refiner(target, reference, predicate)
    }

    /// Index-driven spatial kNN candidate set (sound superset of every
    /// object with non-zero kNN probability).
    pub fn knn_candidates(&self, q: &Rect, k: usize) -> Vec<ObjectId> {
        self.parts().knn_candidates(q, k)
    }

    /// The id of the live object whose MBR is nearest to `probe` by
    /// MinDist (`None` on an empty database). Deterministic for a fixed
    /// engine state — workload drivers use it to pick mutation targets
    /// reproducibly (e.g. "delete the object nearest this hot spot").
    pub fn nearest(&self, probe: &Rect) -> Option<ObjectId> {
        self.tree
            .knn_iter(probe, self.cfg.norm)
            .next()
            .map(|n| n.payload)
    }

    /// Grouped spatial kNN candidate generation for many `(MBR, k)`
    /// requests through one best-first descent; each returned set equals
    /// [`Engine::knn_candidates`] for that request, sorted by id.
    pub fn knn_candidates_batch(&self, queries: &[(Rect, usize)]) -> Vec<Vec<ObjectId>> {
        self.parts().knn_candidates_batch(queries)
    }

    /// Probabilistic threshold kNN (Corollary 4), fully index-integrated
    /// and warm-cache-served: a batch-of-one through the same internal
    /// pipeline as [`Engine::run_batch`]. Results are identical to
    /// [`crate::QueryEngine::knn_threshold`] (sorted by id) at every
    /// cache capacity.
    pub fn knn_threshold(&self, q: &UncertainObject, k: usize, tau: f64) -> Vec<ThresholdResult> {
        assert!(k >= 1, "k must be positive");
        assert!((0.0..1.0).contains(&tau), "tau must be in [0, 1)");
        self.run_single(QueryView::Knn { q, k, tau })
    }

    /// Probabilistic threshold reverse kNN (Corollary 5), semantics of
    /// [`crate::QueryEngine::rknn_threshold`] (sorted by id).
    pub fn rknn_threshold(&self, q: &UncertainObject, k: usize, tau: f64) -> Vec<ThresholdResult> {
        assert!(k >= 1, "k must be positive");
        assert!((0.0..1.0).contains(&tau), "tau must be in [0, 1)");
        self.run_single(QueryView::Rknn { q, k, tau })
    }

    /// Top-`m` probable nearest neighbours, semantics of
    /// [`crate::QueryEngine::top_probable_nn`].
    pub fn top_probable_nn(&self, q: &UncertainObject, m: usize) -> Vec<ThresholdResult> {
        assert!(m >= 1, "m must be positive");
        self.run_single(QueryView::TopM { q, m })
    }

    /// Executes a mixed [`QueryBatch`] through one shared pass (grouped
    /// candidate generation, the engine's persistent decomposition
    /// cache, recycled refiner scratch, query-level fan-out over
    /// [`IdcaConfig::batch_threads`] lanes). Returns one result vector
    /// per query, aligned with the batch's insertion order; each vector
    /// is exactly what the corresponding per-query entry point returns.
    pub fn run_batch(&self, batch: &QueryBatch) -> Vec<Vec<ThresholdResult>> {
        let views: Vec<QueryView<'_>> = batch.queries().iter().map(|spec| spec.view()).collect();
        let ctx = self.ctx();
        let out = self.parts().run_views(&views, &ctx);
        self.trim_cache();
        out
    }

    /// One query through the internal batch pipeline.
    fn run_single(&self, view: QueryView<'_>) -> Vec<ThresholdResult> {
        let ctx = self.ctx();
        let mut out = self.parts().run_views(&[view], &ctx);
        self.trim_cache();
        out.pop().expect("one result set per query")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::QueryEngine;
    use udb_geometry::{LpNorm, Point};
    use udb_pdf::Pdf;
    use udb_workload::{QuerySet, SyntheticConfig};

    /// The whole point of the lifetime-free redesign: an engine (and an
    /// owned batch) can move across threads — into a spawned serving
    /// task, a shard worker, a queue consumer.
    #[test]
    fn engine_and_batch_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Engine>();
        assert_send::<QueryBatch>();
    }

    fn synthetic(n: usize) -> (Database, SyntheticConfig) {
        let cfg = SyntheticConfig {
            n,
            max_extent: 0.01,
            ..Default::default()
        };
        (cfg.generate(), cfg)
    }

    #[test]
    fn indexed_filter_matches_scan_filter() {
        let (db, cfg) = synthetic(600);
        let qs = QuerySet::generate(&db, &cfg, 5, 10, LpNorm::L2, 79);
        let engine = Engine::new(db.clone());
        let scan = QueryEngine::new(&db);
        for (r, b) in qs.iter() {
            let via_index = engine.refiner(ObjRef::Db(b), ObjRef::External(r), Predicate::FullPdf);
            let via_scan = scan.refiner(ObjRef::Db(b), ObjRef::External(r), Predicate::FullPdf);
            assert_eq!(via_index.complete_count(), via_scan.complete_count());
            let mut a: Vec<_> = via_index.influence_ids().collect();
            let mut s: Vec<_> = via_scan.influence_ids().collect();
            a.sort_unstable();
            s.sort_unstable();
            assert_eq!(a, s);
        }
    }

    #[test]
    fn indexed_refiner_produces_identical_bounds() {
        let (db, cfg) = synthetic(300);
        let qs = QuerySet::generate(&db, &cfg, 2, 10, LpNorm::L2, 80);
        let idca = IdcaConfig {
            max_iterations: 4,
            uncertainty_target: 0.0,
            ..Default::default()
        };
        let engine = Engine::with_config(db.clone(), idca.clone());
        let scan = QueryEngine::with_config(&db, idca);
        for (r, b) in qs.iter() {
            let snap_a = engine
                .refiner(ObjRef::Db(b), ObjRef::External(r), Predicate::FullPdf)
                .run();
            let snap_b = scan
                .refiner(ObjRef::Db(b), ObjRef::External(r), Predicate::FullPdf)
                .run();
            assert_eq!(snap_a.bounds.len(), snap_b.bounds.len());
            for k in 0..snap_a.bounds.len() {
                assert!((snap_a.bounds.lower(k) - snap_b.bounds.lower(k)).abs() < 1e-12);
                assert!((snap_a.bounds.upper(k) - snap_b.bounds.upper(k)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn indexed_filter_demotes_existential_dominators() {
        // a certain dominator with existence 0.5 must land in the
        // influence set, not the complete count
        let dominator = UncertainObject::with_existence(
            Pdf::uniform(Rect::from_point(&Point::from([1.0, 0.0]))),
            0.5,
        );
        let target = UncertainObject::certain(Point::from([3.0, 0.0]));
        let db = Database::from_objects(vec![dominator, target]);
        let engine = Engine::new(db);
        let q = UncertainObject::certain(Point::from([0.0, 0.0]));
        let refiner = engine.refiner(
            ObjRef::Db(ObjectId(1)),
            ObjRef::External(&q),
            Predicate::FullPdf,
        );
        assert_eq!(refiner.complete_count(), 0);
        assert_eq!(
            refiner.influence_ids().collect::<Vec<_>>(),
            vec![ObjectId(0)]
        );
    }

    #[test]
    fn indexed_candidates_match_scan_filter() {
        let (db, cfg) = synthetic(500);
        let qs = QuerySet::generate(&db, &cfg, 4, 10, LpNorm::L2, 77);
        let engine = Engine::new(db.clone());
        let scan = QueryEngine::new(&db);
        for (r, _) in qs.iter() {
            for k in [1usize, 5, 10] {
                let mut a = engine.knn_candidates(r.mbr(), k);
                // scan-based candidates via the threshold query at tau = 0
                let mut b: Vec<ObjectId> = scan
                    .knn_threshold(r, k, 0.0)
                    .into_iter()
                    .map(|res| res.id)
                    .collect();
                a.sort_unstable();
                b.sort_unstable();
                // indexed candidate set must cover the scan-based one (it
                // is computed from the identical MinDist/MaxDist rule, so
                // it must actually be a superset of the surviving objects)
                for id in &b {
                    assert!(
                        a.contains(id),
                        "k={k}: {id} missing from indexed candidates"
                    );
                }
            }
        }
    }

    #[test]
    fn owned_knn_threshold_matches_scan_exactly() {
        let (db, cfg) = synthetic(400);
        let qs = QuerySet::generate(&db, &cfg, 3, 10, LpNorm::L2, 78);
        let engine = Engine::new(db.clone());
        let scan = QueryEngine::new(&db);
        for (r, _) in qs.iter() {
            let a = engine.knn_threshold(r, 3, 0.5);
            let mut b = scan.knn_threshold(r, 3, 0.5);
            b.sort_by_key(|x| x.id);
            // the early-exit path replicates run()'s per-candidate
            // operation sequence: same result set, bit-identical bounds
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.prob_lower, y.prob_lower);
                assert_eq!(x.prob_upper, y.prob_upper);
                assert_eq!(x.iterations, y.iterations);
            }
        }
    }

    #[test]
    fn owned_rknn_threshold_matches_scan_exactly() {
        let (db, cfg) = synthetic(250);
        let qs = QuerySet::generate(&db, &cfg, 3, 10, LpNorm::L2, 81);
        let engine = Engine::new(db.clone());
        let scan = QueryEngine::new(&db);
        for (r, _) in qs.iter() {
            let a = engine.rknn_threshold(r, 2, 0.5);
            let mut b = scan.rknn_threshold(r, 2, 0.5);
            b.sort_by_key(|x| x.id);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.prob_lower, y.prob_lower);
                assert_eq!(x.prob_upper, y.prob_upper);
            }
        }
    }

    #[test]
    fn owned_top_probable_nn_matches_scan_set() {
        let (db, cfg) = synthetic(300);
        let qs = QuerySet::generate(&db, &cfg, 4, 10, LpNorm::L2, 82);
        let idca = IdcaConfig {
            max_iterations: 5,
            uncertainty_target: 0.0,
            ..Default::default()
        };
        let engine = Engine::with_config(db.clone(), idca.clone());
        let scan = QueryEngine::with_config(&db, idca);
        for (r, _) in qs.iter() {
            for m in [1usize, 3] {
                let a = engine.top_probable_nn(r, m);
                let b = scan.top_probable_nn(r, m);
                let mut a_ids: Vec<ObjectId> = a.iter().map(|x| x.id).collect();
                let mut b_ids: Vec<ObjectId> = b.iter().map(|x| x.id).collect();
                a_ids.sort_unstable();
                b_ids.sort_unstable();
                // cross-candidate retirement may freeze an also-ran's
                // bounds early, but the returned top-m *set* must match
                // the run-to-convergence path
                assert_eq!(a_ids, b_ids, "m={m}");
                // and the winners' own bounds are fully refined in both
                for x in &a {
                    let y = b.iter().find(|y| y.id == x.id).unwrap();
                    assert_eq!(x.prob_lower, y.prob_lower);
                    assert_eq!(x.prob_upper, y.prob_upper);
                }
            }
        }
    }

    #[test]
    fn rknn_prefilter_probe_matches_scan_prefilter() {
        // the within-distance probe must skip exactly the objects the
        // scan path's certain-dominator cap skips: compare the surviving
        // id sets end-to-end at a tau where everything undecided survives
        let (db, cfg) = synthetic(200);
        let qs = QuerySet::generate(&db, &cfg, 2, 10, LpNorm::L2, 83);
        let engine = Engine::new(db.clone());
        let scan = QueryEngine::new(&db);
        for (r, _) in qs.iter() {
            let a: Vec<ObjectId> = engine
                .rknn_threshold(r, 1, 0.0)
                .iter()
                .map(|x| x.id)
                .collect();
            let mut b: Vec<ObjectId> = scan
                .rknn_threshold(r, 1, 0.0)
                .iter()
                .map(|x| x.id)
                .collect();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn candidate_stream_terminates_early() {
        // a dense cluster near the query and a huge far-away bulk: the
        // index must not touch the far objects
        let mut objects = Vec::new();
        for i in 0..5 {
            objects.push(UncertainObject::certain(Point::from([
                i as f64 * 0.01,
                0.0,
            ])));
        }
        for i in 0..200 {
            objects.push(UncertainObject::certain(Point::from([
                100.0 + i as f64,
                100.0,
            ])));
        }
        let engine = Engine::new(Database::from_objects(objects));
        let q = Rect::from_point(&Point::from([0.0, 0.0]));
        let cands = engine.knn_candidates(&q, 2);
        assert!(cands.len() <= 5, "far bulk leaked in: {}", cands.len());
    }

    #[test]
    fn works_with_uncertain_query_region() {
        let engine = Engine::new(Database::from_objects(vec![
            UncertainObject::new(Pdf::uniform(Rect::centered(
                &Point::from([1.0, 0.0]),
                &[0.3, 0.3],
            ))),
            UncertainObject::certain(Point::from([5.0, 0.0])),
        ]));
        let q = UncertainObject::new(Pdf::uniform(Rect::centered(
            &Point::from([0.0, 0.0]),
            &[0.5, 0.5],
        )));
        let res = engine.knn_threshold(&q, 1, 0.5);
        assert!(res.iter().any(|r| r.id == ObjectId(0) && r.is_hit(0.5)));
    }

    #[test]
    fn batch_results_align_with_insertion_order() {
        let (db, cfg) = synthetic(250);
        let qs = QuerySet::generate(&db, &cfg, 3, 10, LpNorm::L2, 91);
        let engine = Engine::new(db);
        let mut batch = QueryBatch::new();
        batch
            .knn_threshold(qs.references[0].clone(), 3, 0.5)
            .top_probable_nn(qs.references[1].clone(), 2)
            .rknn_threshold(qs.references[2].clone(), 2, 0.5);
        assert_eq!(batch.len(), 3);
        let results = engine.run_batch(&batch);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0], engine.knn_threshold(&qs.references[0], 3, 0.5));
        assert_eq!(results[1], engine.top_probable_nn(&qs.references[1], 2));
        assert_eq!(results[2], engine.rknn_threshold(&qs.references[2], 2, 0.5));
    }

    #[test]
    fn empty_batch_is_fine() {
        let (db, _) = synthetic(50);
        let engine = Engine::new(db);
        assert!(engine.run_batch(&QueryBatch::new()).is_empty());
    }

    #[test]
    fn mutations_maintain_index_and_results() {
        let (db, cfg) = synthetic(120);
        let qs = QuerySet::generate(&db, &cfg, 2, 10, LpNorm::L2, 92);
        let mut engine = Engine::new(db.clone());
        let q = &qs.references[0];
        // remove a handful, update one, insert one
        engine.remove(ObjectId(3));
        engine.remove(ObjectId(77));
        let moved = db.get(ObjectId(10)).clone();
        engine.update(ObjectId(11), moved);
        let new_id = engine.insert(db.get(ObjectId(5)).clone());
        assert_eq!(new_id, ObjectId(120));
        engine.tree().check_invariants();
        assert_eq!(engine.db().len(), 119);
        assert_eq!(engine.tree().len(), 119);
        // a freshly built engine over the mutated database is the oracle
        let fresh = Engine::new(engine.db().clone());
        assert_eq!(
            engine.knn_threshold(q, 3, 0.4),
            fresh.knn_threshold(q, 3, 0.4)
        );
        assert_eq!(
            engine.rknn_threshold(q, 2, 0.4),
            fresh.rknn_threshold(q, 2, 0.4)
        );
        assert_eq!(engine.top_probable_nn(q, 2), fresh.top_probable_nn(q, 2));
    }

    #[test]
    fn persistent_cache_fills_and_trims() {
        let (db, cfg) = synthetic(150);
        let qs = QuerySet::generate(&db, &cfg, 2, 10, LpNorm::L2, 93);
        let idca = IdcaConfig {
            max_iterations: 3,
            decomp_cache_entries: 4,
            ..Default::default()
        };
        let engine = Engine::with_config(db, idca);
        let warm = engine.knn_threshold(&qs.references[0], 3, 0.3);
        assert!(engine.decomp_cache_len() <= 4, "trim respects capacity");
        // repeat batch: warm-cache results must be bit-identical
        let again = engine.knn_threshold(&qs.references[0], 3, 0.3);
        assert_eq!(warm, again);
        // cache off: nothing persists
        let (db2, _) = synthetic(150);
        let cold = Engine::with_config(
            db2,
            IdcaConfig {
                max_iterations: 3,
                decomp_cache_entries: 0,
                ..Default::default()
            },
        );
        cold.knn_threshold(&qs.references[0], 3, 0.3);
        assert_eq!(cold.decomp_cache_len(), 0);
    }
}
