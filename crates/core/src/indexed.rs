//! Index-supported query processing (the paper's §VIII future-work item:
//! "we will integrate our concepts into existing index supported kNN-
//! and RkNN-query algorithms").
//!
//! An [`IndexedEngine`] wraps a [`QueryEngine`] with an R-tree over the
//! object MBRs and keeps the index *inside* the refinement loop, not just
//! in front of it:
//!
//! * **Candidate generation** for kNN queries uses the best-first MinDist
//!   stream instead of a full scan: stream objects in MinDist order,
//!   maintaining the `k` smallest *MaxDist* values seen; once the
//!   stream's next MinDist exceeds the current `k`-th smallest MaxDist
//!   `d_k`, every remaining object is dominated by at least `k` objects
//!   in every possible world and is pruned soundly.
//! * **Per-candidate filtering** applies the complete-domination filter
//!   of Algorithm 1 to whole R-tree subtrees ([`IndexedEngine::refiner`])
//!   instead of scanning the database once per candidate.
//! * **Mid-loop pruning**: the threshold and top-`m` queries drive all
//!   candidate refiners in lock-step through [`crate::refine_lockstep`] /
//!   [`crate::refine_top_m`], retiring candidates the moment their
//!   outcome is decided (freeing their caches) instead of refining each
//!   one to its bitter end — the candidate set shrinks *during*
//!   refinement. Results are identical to the scan-based
//!   [`QueryEngine`] paths, which stay as the reference oracles.
//! * **RkNN prefiltering** probes the tree with
//!   [`RTree::within_distance_iter`] (no per-candidate allocation) to
//!   count certain dominators before a refiner is even built.

use std::sync::Mutex;

use udb_domination::PairClassifier;
use udb_geometry::Rect;
use udb_index::{ClassifyScratch, NodeDecision, RTree};
use udb_object::{Database, ObjectId, UncertainObject};

use crate::batch::{SharedDecomp, SharedRefineCtx};
use crate::config::{IdcaConfig, ObjRef, Predicate, RefineGoal};
use crate::queries::{QueryEngine, ThresholdResult};
use crate::refiner::{refine_lockstep, refine_top_m, Refiner};

/// The batch-sharing state a query pipeline may run under: the batch's
/// shared context plus the query object's per-query shared
/// decomposition. `None` is the plain per-query execution.
pub(crate) type BatchShared<'s> = Option<(&'s SharedRefineCtx, &'s SharedDecomp)>;

/// Entry-count cutoff of the per-candidate subtree filter: a `Descend`
/// verdict on a subtree holding at most this many entries switches to
/// the scan filter (per-entry tests, no interior MBR tests below).
/// Results are cutoff-invariant for the monotone domination criterion —
/// this is purely a cost knob: near the decision boundary small subtrees
/// overwhelmingly answer `Descend` at every level, so their interior
/// node tests are wasted work. One leaf level (fan-out 16) plus slack.
const SUBTREE_SCAN_CUTOFF: usize = 24;

/// Joins a refiner to a batch's shared state, or leaves it untouched for
/// plain per-query execution (the only difference between the two
/// pipeline shapes).
fn attach<'b>(refiner: Refiner<'b>, shared: BatchShared<'_>) -> Refiner<'b> {
    match shared {
        Some((ctx, q_dec)) => refiner.with_shared_ctx(ctx).with_external_decomp(q_dec),
        None => refiner,
    }
}

/// Maintains the `k` smallest MaxDists seen over *certainly existing*
/// objects (`k_smallest`, kept sorted ascending): inserts `max_d` if it
/// belongs, and returns the updated pruning radius `d_k` once `k` values
/// are held. Shared by the per-query candidate stream and the grouped
/// batch descent so the pruning rule cannot diverge between them.
fn tighten_dk(k_smallest: &mut Vec<f64>, k: usize, max_d: f64) -> Option<f64> {
    let pos = k_smallest
        .binary_search_by(|d| d.partial_cmp(&max_d).expect("NaN"))
        .unwrap_or_else(|p| p);
    if pos < k {
        k_smallest.insert(pos, max_d);
        k_smallest.truncate(k);
        if k_smallest.len() == k {
            return Some(k_smallest[k - 1]);
        }
    }
    None
}

/// A query engine with an R-tree accelerating spatial candidate
/// generation.
#[derive(Debug)]
pub struct IndexedEngine<'a> {
    engine: QueryEngine<'a>,
    tree: RTree<ObjectId>,
    /// Reusable traversal state for the per-candidate subtree filter
    /// ([`IndexedEngine::refiner`] classifies the whole tree once per
    /// candidate; the scratch makes that allocation-free). Behind a
    /// mutex only so the engine stays `Sync` — the lock is uncontended
    /// in the drivers, which build refiners on the query thread.
    scratch: Mutex<ClassifyScratch<ObjectId>>,
}

impl<'a> IndexedEngine<'a> {
    /// Builds the index (STR bulk load) over the database MBRs.
    pub fn new(db: &'a Database) -> Self {
        IndexedEngine::with_config(db, IdcaConfig::default())
    }

    /// Builds with an explicit configuration.
    pub fn with_config(db: &'a Database, cfg: IdcaConfig) -> Self {
        let tree = RTree::bulk_load(db.mbrs().map(|(id, r)| (r.clone(), id)).collect(), 16);
        IndexedEngine {
            engine: QueryEngine::with_config(db, cfg),
            tree,
            scratch: Mutex::new(ClassifyScratch::new()),
        }
    }

    /// The wrapped scan-based engine.
    pub fn engine(&self) -> &QueryEngine<'a> {
        &self.engine
    }

    /// The underlying R-tree.
    pub fn tree(&self) -> &RTree<ObjectId> {
        &self.tree
    }

    /// Index-accelerated domination-count refiner: the complete-domination
    /// filter of Algorithm 1 applied to whole R-tree subtrees instead of a
    /// linear scan. Sound because both criteria are monotone under MBR
    /// containment: shrinking an object's rectangle only decreases its
    /// MaxDist and increases its MinDist terms, so a subtree-level
    /// `dominates` / `never_dominates` verdict holds for every object
    /// below. Existentially uncertain objects accepted at subtree level
    /// are demoted to influence objects (they are never *certain*
    /// dominators).
    ///
    /// The traversal reuses the engine's [`ClassifyScratch`] (no
    /// allocation per candidate), precomputes the `(B, R)` criterion
    /// halves once per candidate ([`PairClassifier`] — every node and
    /// entry test then evaluates only the subtree-side terms) and scans
    /// small undecided subtrees flat instead of testing their interior
    /// nodes (`SUBTREE_SCAN_CUTOFF`).
    pub fn refiner<'b>(
        &'b self,
        target: ObjRef<'b>,
        reference: ObjRef<'b>,
        predicate: Predicate,
    ) -> Refiner<'b>
    where
        'a: 'b,
    {
        let db = self.engine.db();
        let cfg = self.engine.config();
        let target_obj = target.resolve(db);
        let reference_obj = reference.resolve(db);
        let (b_mbr, r_mbr) = (target_obj.mbr(), reference_obj.mbr());
        let excluded = [target.id(), reference.id()];

        let pc = PairClassifier::new(b_mbr, r_mbr, cfg.criterion, cfg.norm);
        let mut scratch = self
            .scratch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        self.tree
            .classify_entries_with(&mut scratch, SUBTREE_SCAN_CUTOFF, |mbr| {
                // same decisions as the scan filter's classify (the
                // criterion tests are mutually exclusive)
                match pc.classify(mbr).decision {
                    Some(false) => NodeDecision::DropAll,
                    Some(true) => NodeDecision::TakeAll,
                    None => NodeDecision::Descend,
                }
            });
        let mut complete = 0usize;
        let mut influence = Vec::with_capacity(scratch.undecided.len());
        for &id in &scratch.taken {
            if excluded.contains(&Some(id)) {
                continue;
            }
            if db.get(id).existence() >= 1.0 {
                complete += 1;
            } else {
                influence.push(id);
            }
        }
        influence.extend(
            scratch
                .undecided
                .iter()
                .copied()
                .filter(|id| !excluded.contains(&Some(*id))),
        );
        drop(scratch);
        influence.sort_unstable();
        Refiner::with_filter_result(
            db,
            target,
            reference,
            cfg.clone(),
            predicate,
            complete,
            influence,
        )
        .with_pool(self.engine.pool_handle().clone())
    }

    /// Index-driven spatial kNN candidate set: all objects that are *not*
    /// certainly dominated by at least `k` others w.r.t. `q` under the
    /// MinDist/MaxDist filter. Sound superset of every object with
    /// non-zero kNN probability. Only certainly existing objects tighten
    /// the pruning bound `d_k` (an object that may be absent guarantees
    /// no domination), matching [`QueryEngine::knn_candidates`].
    pub fn knn_candidates(&self, q: &Rect, k: usize) -> Vec<ObjectId> {
        assert!(k >= 1);
        let norm = self.engine.config().norm;
        let mut seen: Vec<(ObjectId, f64)> = Vec::new(); // (id, max_dist)
        let mut kth_max = f64::INFINITY;
        let mut k_smallest: Vec<f64> = Vec::with_capacity(k + 1);
        let db = self.engine.db();
        for n in self.tree.knn_iter(q, norm) {
            if n.dist > kth_max {
                break; // every further object has MinDist > d_k
            }
            let obj = db.get(n.payload);
            seen.push((n.payload, n.dist));
            if obj.existence() < 1.0 {
                continue; // cannot contribute to d_k
            }
            let max_d = obj.mbr().max_dist_rect(q, norm);
            if let Some(d_k) = tighten_dk(&mut k_smallest, k, max_d) {
                kth_max = d_k;
            }
        }
        seen.into_iter()
            .filter(|(_, min_d)| *min_d <= kth_max)
            .map(|(id, _)| id)
            .collect()
    }

    /// Grouped spatial kNN candidate generation: the candidate sets of
    /// many `(query MBR, k)` requests from **one** best-first R-tree
    /// descent ([`RTree::for_each_grouped`]) instead of one descent per
    /// query. Each request's set equals [`IndexedEngine::knn_candidates`]
    /// for the same `(q, k)` — the per-query pruning rule (only certainly
    /// existing objects tighten `d_k`; survivors have `MinDist ≤ d_k`) is
    /// applied with per-query state while the tree is walked once, so
    /// subtrees shared by clustered queries are tested once. Returned
    /// sets are sorted by id (candidate order does not affect query
    /// results; a deterministic order keeps the batched pipeline
    /// reproducible).
    ///
    /// # Panics
    /// Panics if any request has `k == 0`.
    pub fn knn_candidates_batch(&self, queries: &[(Rect, usize)]) -> Vec<Vec<ObjectId>> {
        struct QState {
            /// `(id, MinDist)` of every object visited within the
            /// query's (then-current) radius; filtered by the final
            /// radius at the end, like the per-query stream.
            seen: Vec<(ObjectId, f64)>,
            /// The `k` smallest MaxDists over certain objects so far.
            k_smallest: Vec<f64>,
        }
        for (_, k) in queries {
            assert!(*k >= 1, "k must be positive");
        }
        let norm = self.engine.config().norm;
        let db = self.engine.db();
        let rects: Vec<Rect> = queries.iter().map(|(r, _)| r.clone()).collect();
        let mut radii = vec![f64::INFINITY; queries.len()];
        let mut states: Vec<QState> = queries
            .iter()
            .map(|(_, k)| QState {
                seen: Vec::new(),
                k_smallest: Vec::with_capacity(k + 1),
            })
            .collect();
        self.tree
            .for_each_grouped(&rects, norm, &mut radii, |i, &id, min_d, radii| {
                let st = &mut states[i];
                st.seen.push((id, min_d));
                let obj = db.get(id);
                if obj.existence() < 1.0 {
                    return; // cannot contribute to d_k
                }
                let (q, k) = &queries[i];
                let max_d = obj.mbr().max_dist_rect(q, norm);
                if let Some(d_k) = tighten_dk(&mut st.k_smallest, *k, max_d) {
                    radii[i] = d_k;
                }
            });
        states
            .into_iter()
            .zip(radii)
            .map(|(st, d_k)| {
                let mut out: Vec<ObjectId> = st
                    .seen
                    .into_iter()
                    .filter(|(_, min_d)| *min_d <= d_k)
                    .map(|(id, _)| id)
                    .collect();
                out.sort_unstable();
                out
            })
            .collect()
    }

    /// Probabilistic threshold kNN, fully index-integrated: index-driven
    /// candidates, subtree-filtered refiners, and lock-step early-exit
    /// refinement that retires candidates mid-loop as soon as their
    /// `P(DomCount < k) ≷ τ` outcome is decided. Results are identical to
    /// [`QueryEngine::knn_threshold`] (sorted by id).
    pub fn knn_threshold(
        &self,
        q: &'a UncertainObject,
        k: usize,
        tau: f64,
    ) -> Vec<ThresholdResult> {
        assert!(k >= 1, "k must be positive");
        assert!((0.0..1.0).contains(&tau), "tau must be in [0, 1)");
        self.knn_threshold_pipeline(q, k, tau, self.knn_candidates(q.mbr(), k), None)
    }

    /// The kNN-threshold refinement pipeline, shared verbatim by
    /// [`IndexedEngine::knn_threshold`] and the batched executor
    /// ([`crate::QueryBatch`]) so the two paths cannot drift — the
    /// batched results' bit-identity with the per-query entry point is
    /// structural, not a convention kept in sync by hand.
    pub(crate) fn knn_threshold_pipeline(
        &self,
        q: &'a UncertainObject,
        k: usize,
        tau: f64,
        candidates: Vec<ObjectId>,
        shared: BatchShared<'_>,
    ) -> Vec<ThresholdResult> {
        let goal = RefineGoal::threshold(k, tau);
        let refiners = candidates
            .into_iter()
            .map(|id| {
                (
                    id,
                    attach(
                        self.refiner(ObjRef::Db(id), ObjRef::External(q), goal.predicate()),
                        shared,
                    ),
                )
            })
            .collect();
        refine_lockstep(refiners, goal)
    }

    /// Probabilistic threshold reverse kNN (Corollary 5), semantics of
    /// [`QueryEngine::rknn_threshold`] (sorted by id): every database
    /// object `B` is prefiltered with an index probe — counting objects
    /// that certainly dominate `q` w.r.t. `B` without building a refiner
    /// — and the survivors refine in lock-step with mid-loop retirement.
    pub fn rknn_threshold(
        &self,
        q: &'a UncertainObject,
        k: usize,
        tau: f64,
    ) -> Vec<ThresholdResult> {
        assert!(k >= 1, "k must be positive");
        assert!((0.0..1.0).contains(&tau), "tau must be in [0, 1)");
        self.rknn_threshold_pipeline(q, k, tau, None)
    }

    /// The RkNN-threshold pipeline (prefilter probe + lock-step
    /// refinement), shared verbatim by [`IndexedEngine::rknn_threshold`]
    /// and the batched executor.
    pub(crate) fn rknn_threshold_pipeline(
        &self,
        q: &'a UncertainObject,
        k: usize,
        tau: f64,
        shared: BatchShared<'_>,
    ) -> Vec<ThresholdResult> {
        let goal = RefineGoal::threshold(k, tau);
        let mut refiners = Vec::new();
        for (b_id, b_obj) in self.engine.db().iter() {
            if self.certain_dominators_reach(q, b_obj, b_id, k) {
                continue; // P(DomCount < k) is certainly 0
            }
            refiners.push((
                b_id,
                attach(
                    self.refiner(ObjRef::External(q), ObjRef::Db(b_id), goal.predicate()),
                    shared,
                ),
            ));
        }
        refine_lockstep(refiners, goal)
    }

    /// Top-`m` probable nearest neighbours, semantics of
    /// [`QueryEngine::top_probable_nn`]: candidates certainly outside the
    /// top `m` retire mid-loop instead of refining to convergence.
    pub fn top_probable_nn(&self, q: &'a UncertainObject, m: usize) -> Vec<ThresholdResult> {
        assert!(m >= 1, "m must be positive");
        self.top_probable_nn_pipeline(q, m, self.knn_candidates(q.mbr(), 1), None)
    }

    /// The top-`m` pipeline, shared verbatim by
    /// [`IndexedEngine::top_probable_nn`] and the batched executor.
    pub(crate) fn top_probable_nn_pipeline(
        &self,
        q: &'a UncertainObject,
        m: usize,
        candidates: Vec<ObjectId>,
        shared: BatchShared<'_>,
    ) -> Vec<ThresholdResult> {
        let goal = RefineGoal::count_below(1);
        let refiners = candidates
            .into_iter()
            .map(|id| {
                (
                    id,
                    attach(
                        self.refiner(ObjRef::Db(id), ObjRef::External(q), goal.predicate()),
                        shared,
                    ),
                )
            })
            .collect();
        refine_top_m(refiners, m)
    }

    /// Index probe of the RkNN prefilter: `true` once `k` objects (other
    /// than `B`) certainly dominate `q` w.r.t. reference `B`. Any
    /// dominating `A` satisfies `MinDist(A, B) < MinDist(q, B)` (for
    /// every placement `a`, `b`: `d(a, b) < d(q, b)`), so a bounded tree
    /// probe within that radius — recursive and allocation-free via
    /// [`RTree::for_each_within_distance`] — covers every possible
    /// dominator; the criterion test itself matches the scan path's, so
    /// the two prefilters skip exactly the same objects.
    fn certain_dominators_reach(
        &self,
        q: &UncertainObject,
        b_obj: &UncertainObject,
        b_id: ObjectId,
        k: usize,
    ) -> bool {
        let cfg = self.engine.config();
        let radius = q.mbr().min_dist_rect(b_obj.mbr(), cfg.norm);
        if radius <= 0.0 {
            // overlapping MBRs: in some world q is at distance 0 from B,
            // which no object can strictly beat
            return false;
        }
        let db = self.engine.db();
        let mut count = 0usize;
        self.tree
            .for_each_within_distance(b_obj.mbr(), radius, cfg.norm, &mut |&id| {
                let a = db.get(id);
                // only certainly existing objects are certain dominators
                if id != b_id
                    && a.existence() >= 1.0
                    && cfg
                        .criterion
                        .dominates(a.mbr(), q.mbr(), b_obj.mbr(), cfg.norm)
                {
                    count += 1;
                }
                count < k
            });
        count >= k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_geometry::{LpNorm, Point};
    use udb_pdf::Pdf;
    use udb_workload::{QuerySet, SyntheticConfig};

    fn synthetic(n: usize) -> (Database, SyntheticConfig) {
        let cfg = SyntheticConfig {
            n,
            max_extent: 0.01,
            ..Default::default()
        };
        (cfg.generate(), cfg)
    }

    #[test]
    fn indexed_filter_matches_scan_filter() {
        let (db, cfg) = synthetic(600);
        let qs = QuerySet::generate(&db, &cfg, 5, 10, LpNorm::L2, 79);
        let indexed = IndexedEngine::new(&db);
        let scan = QueryEngine::new(&db);
        for (r, b) in qs.iter() {
            let via_index = indexed.refiner(ObjRef::Db(b), ObjRef::External(r), Predicate::FullPdf);
            let via_scan = scan.refiner(ObjRef::Db(b), ObjRef::External(r), Predicate::FullPdf);
            assert_eq!(via_index.complete_count(), via_scan.complete_count());
            let mut a: Vec<_> = via_index.influence_ids().collect();
            let mut s: Vec<_> = via_scan.influence_ids().collect();
            a.sort_unstable();
            s.sort_unstable();
            assert_eq!(a, s);
        }
    }

    #[test]
    fn indexed_refiner_produces_identical_bounds() {
        let (db, cfg) = synthetic(300);
        let qs = QuerySet::generate(&db, &cfg, 2, 10, LpNorm::L2, 80);
        let idca = IdcaConfig {
            max_iterations: 4,
            uncertainty_target: 0.0,
            ..Default::default()
        };
        let indexed = IndexedEngine::with_config(&db, idca.clone());
        let scan = QueryEngine::with_config(&db, idca);
        for (r, b) in qs.iter() {
            let snap_a = indexed
                .refiner(ObjRef::Db(b), ObjRef::External(r), Predicate::FullPdf)
                .run();
            let snap_b = scan
                .refiner(ObjRef::Db(b), ObjRef::External(r), Predicate::FullPdf)
                .run();
            assert_eq!(snap_a.bounds.len(), snap_b.bounds.len());
            for k in 0..snap_a.bounds.len() {
                assert!((snap_a.bounds.lower(k) - snap_b.bounds.lower(k)).abs() < 1e-12);
                assert!((snap_a.bounds.upper(k) - snap_b.bounds.upper(k)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn indexed_filter_demotes_existential_dominators() {
        // a certain dominator with existence 0.5 must land in the
        // influence set, not the complete count
        let dominator = UncertainObject::with_existence(
            Pdf::uniform(Rect::from_point(&Point::from([1.0, 0.0]))),
            0.5,
        );
        let target = UncertainObject::certain(Point::from([3.0, 0.0]));
        let db = Database::from_objects(vec![dominator, target]);
        let indexed = IndexedEngine::new(&db);
        let q = UncertainObject::certain(Point::from([0.0, 0.0]));
        let refiner = indexed.refiner(
            ObjRef::Db(ObjectId(1)),
            ObjRef::External(&q),
            Predicate::FullPdf,
        );
        assert_eq!(refiner.complete_count(), 0);
        assert_eq!(
            refiner.influence_ids().collect::<Vec<_>>(),
            vec![ObjectId(0)]
        );
    }

    #[test]
    fn indexed_candidates_match_scan_filter() {
        let (db, cfg) = synthetic(500);
        let qs = QuerySet::generate(&db, &cfg, 4, 10, LpNorm::L2, 77);
        let indexed = IndexedEngine::new(&db);
        let scan = QueryEngine::new(&db);
        for (r, _) in qs.iter() {
            for k in [1usize, 5, 10] {
                let mut a = indexed.knn_candidates(r.mbr(), k);
                // scan-based candidates via the threshold query at tau = 0
                let mut b: Vec<ObjectId> = scan
                    .knn_threshold(r, k, 0.0)
                    .into_iter()
                    .map(|res| res.id)
                    .collect();
                a.sort_unstable();
                b.sort_unstable();
                // indexed candidate set must cover the scan-based one (it
                // is computed from the identical MinDist/MaxDist rule, so
                // it must actually be a superset of the surviving objects)
                for id in &b {
                    assert!(
                        a.contains(id),
                        "k={k}: {id} missing from indexed candidates"
                    );
                }
            }
        }
    }

    #[test]
    fn indexed_knn_threshold_matches_scan_exactly() {
        let (db, cfg) = synthetic(400);
        let qs = QuerySet::generate(&db, &cfg, 3, 10, LpNorm::L2, 78);
        let indexed = IndexedEngine::new(&db);
        let scan = QueryEngine::new(&db);
        for (r, _) in qs.iter() {
            let a = indexed.knn_threshold(r, 3, 0.5);
            let mut b = scan.knn_threshold(r, 3, 0.5);
            b.sort_by_key(|x| x.id);
            // the early-exit path replicates run()'s per-candidate
            // operation sequence: same result set, bit-identical bounds
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.prob_lower, y.prob_lower);
                assert_eq!(x.prob_upper, y.prob_upper);
                assert_eq!(x.iterations, y.iterations);
            }
        }
    }

    #[test]
    fn indexed_rknn_threshold_matches_scan_exactly() {
        let (db, cfg) = synthetic(250);
        let qs = QuerySet::generate(&db, &cfg, 3, 10, LpNorm::L2, 81);
        let indexed = IndexedEngine::new(&db);
        let scan = QueryEngine::new(&db);
        for (r, _) in qs.iter() {
            let a = indexed.rknn_threshold(r, 2, 0.5);
            let mut b = scan.rknn_threshold(r, 2, 0.5);
            b.sort_by_key(|x| x.id);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.prob_lower, y.prob_lower);
                assert_eq!(x.prob_upper, y.prob_upper);
            }
        }
    }

    #[test]
    fn indexed_top_probable_nn_matches_scan_set() {
        let (db, cfg) = synthetic(300);
        let qs = QuerySet::generate(&db, &cfg, 4, 10, LpNorm::L2, 82);
        let idca = IdcaConfig {
            max_iterations: 5,
            uncertainty_target: 0.0,
            ..Default::default()
        };
        let indexed = IndexedEngine::with_config(&db, idca.clone());
        let scan = QueryEngine::with_config(&db, idca);
        for (r, _) in qs.iter() {
            for m in [1usize, 3] {
                let a = indexed.top_probable_nn(r, m);
                let b = scan.top_probable_nn(r, m);
                let mut a_ids: Vec<ObjectId> = a.iter().map(|x| x.id).collect();
                let mut b_ids: Vec<ObjectId> = b.iter().map(|x| x.id).collect();
                a_ids.sort_unstable();
                b_ids.sort_unstable();
                // cross-candidate retirement may freeze an also-ran's
                // bounds early, but the returned top-m *set* must match
                // the run-to-convergence path
                assert_eq!(a_ids, b_ids, "m={m}");
                // and the winners' own bounds are fully refined in both
                for x in &a {
                    let y = b.iter().find(|y| y.id == x.id).unwrap();
                    assert_eq!(x.prob_lower, y.prob_lower);
                    assert_eq!(x.prob_upper, y.prob_upper);
                }
            }
        }
    }

    #[test]
    fn rknn_prefilter_probe_matches_scan_prefilter() {
        // the within_distance_iter probe must skip exactly the objects
        // the scan path's certain-dominator cap skips: compare the
        // surviving id sets end-to-end at a tau where everything
        // undecided survives
        let (db, cfg) = synthetic(200);
        let qs = QuerySet::generate(&db, &cfg, 2, 10, LpNorm::L2, 83);
        let indexed = IndexedEngine::new(&db);
        let scan = QueryEngine::new(&db);
        for (r, _) in qs.iter() {
            let a: Vec<ObjectId> = indexed
                .rknn_threshold(r, 1, 0.0)
                .iter()
                .map(|x| x.id)
                .collect();
            let mut b: Vec<ObjectId> = scan
                .rknn_threshold(r, 1, 0.0)
                .iter()
                .map(|x| x.id)
                .collect();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn candidate_stream_terminates_early() {
        // a dense cluster near the query and a huge far-away bulk: the
        // index must not touch the far objects
        let mut objects = Vec::new();
        for i in 0..5 {
            objects.push(UncertainObject::certain(Point::from([
                i as f64 * 0.01,
                0.0,
            ])));
        }
        for i in 0..200 {
            objects.push(UncertainObject::certain(Point::from([
                100.0 + i as f64,
                100.0,
            ])));
        }
        let db = Database::from_objects(objects);
        let indexed = IndexedEngine::new(&db);
        let q = Rect::from_point(&Point::from([0.0, 0.0]));
        let cands = indexed.knn_candidates(&q, 2);
        assert!(cands.len() <= 5, "far bulk leaked in: {}", cands.len());
    }

    #[test]
    fn works_with_uncertain_query_region() {
        let db = Database::from_objects(vec![
            UncertainObject::new(Pdf::uniform(Rect::centered(
                &Point::from([1.0, 0.0]),
                &[0.3, 0.3],
            ))),
            UncertainObject::certain(Point::from([5.0, 0.0])),
        ]);
        let indexed = IndexedEngine::new(&db);
        let q = UncertainObject::new(Pdf::uniform(Rect::centered(
            &Point::from([0.0, 0.0]),
            &[0.5, 0.5],
        )));
        let res = indexed.knn_threshold(&q, 1, 0.5);
        assert!(res.iter().any(|r| r.id == ObjectId(0) && r.is_hit(0.5)));
    }
}
