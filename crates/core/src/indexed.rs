//! The borrowed index-supported engine — now a thin compatibility shim
//! over the owned [`crate::Engine`]'s internal pipeline.
//!
//! [`IndexedEngine`] predates the owned engine: it borrows a
//! [`Database`] snapshot for `'a`, cannot mutate it, and builds a fresh
//! decomposition cache on every [`IndexedEngine::run_batch`] call (only
//! its refiner/filter scratch pool persists across calls — buffer reuse
//! cannot change results). It survives for one release as a migration
//! shim — every method delegates to the *same* internal pipeline
//! ([`crate::engine`]) the owned engine runs, so results are
//! structurally identical — and will be removed afterwards.
//!
//! # Migration
//!
//! | borrowed | owned |
//! | --- | --- |
//! | `IndexedEngine::new(&db)` | [`crate::Engine::new`]`(db)` (takes ownership; `db.clone()` to keep a copy) |
//! | `IndexedEngine::with_config(&db, cfg)` | [`crate::Engine::with_config`]`(db, cfg)` |
//! | rebuild on data change | [`crate::Engine::insert`] / [`crate::Engine::remove`] / [`crate::Engine::update`] (in place) |
//! | per-batch decomposition cache | engine-owned persistent cache ([`crate::IdcaConfig::decomp_cache_entries`]) |
//!
//! Query methods carry over verbatim (`knn_threshold`, `rknn_threshold`,
//! `top_probable_nn`, `run_batch`, `knn_candidates`, `refiner`). One
//! batch-construction change applies to shim users too:
//! [`QueryBatch`] is now owned and lifetime-free, so its push methods
//! take the query object **by value** (`batch.knn_threshold(q.clone(),
//! k, tau)` where a borrow was passed before), and the borrowed
//! `BatchQuery<'a>` enum is replaced by the owned [`crate::QuerySpec`].

use udb_geometry::Rect;
use udb_index::RTree;
use udb_object::{Database, ObjectId, UncertainObject};

use crate::batch::{QueryBatch, QueryView, SharedRefineCtx};
use crate::config::{IdcaConfig, ObjRef, Predicate};
use crate::engine::EngineRef;
use crate::queries::{QueryEngine, ThresholdResult};
use crate::refiner::{Refiner, ScratchPool};

/// A query engine over a **borrowed** database snapshot, with an R-tree
/// accelerating spatial candidate generation.
///
/// Deprecated in favour of the owned [`crate::Engine`], which adds
/// in-place mutation and cross-batch caching on the same pipeline; see
/// the [module docs](self) for the migration table.
#[derive(Debug)]
pub struct IndexedEngine<'a> {
    engine: QueryEngine<'a>,
    tree: RTree<ObjectId>,
    /// Reusable traversal/arena scratch for the subtree filters (checked
    /// out per call — concurrent batch lanes never serialize on it).
    scratch: ScratchPool,
}

impl<'a> IndexedEngine<'a> {
    /// Builds the index (STR bulk load) over the database MBRs.
    #[deprecated(
        since = "0.2.0",
        note = "use the owned `udb_core::Engine::new(db)` — it adds in-place \
                mutation and a persistent cross-batch decomposition cache \
                on the same query pipeline"
    )]
    pub fn new(db: &'a Database) -> Self {
        #[allow(deprecated)]
        IndexedEngine::with_config(db, IdcaConfig::default())
    }

    /// Builds with an explicit configuration.
    #[deprecated(
        since = "0.2.0",
        note = "use the owned `udb_core::Engine::with_config(db, cfg)`"
    )]
    pub fn with_config(db: &'a Database, cfg: IdcaConfig) -> Self {
        let tree = RTree::bulk_load(db.mbrs().map(|(id, r)| (r.clone(), id)).collect(), 16);
        IndexedEngine {
            engine: QueryEngine::with_config(db, cfg),
            tree,
            scratch: ScratchPool::new(),
        }
    }

    /// The wrapped scan-based engine.
    pub fn engine(&self) -> &QueryEngine<'a> {
        &self.engine
    }

    /// The underlying R-tree.
    pub fn tree(&self) -> &RTree<ObjectId> {
        &self.tree
    }

    /// The borrowed parts the shared internal pipeline runs against.
    fn parts<'b>(&'b self) -> EngineRef<'b>
    where
        'a: 'b,
    {
        EngineRef {
            db: self.engine.db(),
            cfg: self.engine.config(),
            pool: self.engine.pool_handle(),
            tree: &self.tree,
            scratch: &self.scratch,
            stats: self.engine.refine_stats(),
        }
    }

    /// Index-accelerated domination-count refiner (see
    /// [`crate::Engine::refiner`]).
    pub fn refiner<'b>(
        &'b self,
        target: ObjRef<'b>,
        reference: ObjRef<'b>,
        predicate: Predicate,
    ) -> Refiner<'b>
    where
        'a: 'b,
    {
        self.parts().refiner(target, reference, predicate)
    }

    /// Index-driven spatial kNN candidate set (see
    /// [`crate::Engine::knn_candidates`]).
    pub fn knn_candidates(&self, q: &Rect, k: usize) -> Vec<ObjectId> {
        self.parts().knn_candidates(q, k)
    }

    /// Grouped spatial kNN candidate generation (see
    /// [`crate::Engine::knn_candidates_batch`]).
    pub fn knn_candidates_batch(&self, queries: &[(Rect, usize)]) -> Vec<Vec<ObjectId>> {
        self.parts().knn_candidates_batch(queries)
    }

    /// Probabilistic threshold kNN, fully index-integrated; results are
    /// identical to [`QueryEngine::knn_threshold`] (sorted by id).
    pub fn knn_threshold<'b>(
        &'b self,
        q: &'b UncertainObject,
        k: usize,
        tau: f64,
    ) -> Vec<ThresholdResult>
    where
        'a: 'b,
    {
        assert!(k >= 1, "k must be positive");
        assert!((0.0..1.0).contains(&tau), "tau must be in [0, 1)");
        let parts = self.parts();
        let candidates = parts.knn_candidates(q.mbr(), k);
        parts.knn_threshold_pipeline(q, k, tau, candidates, None)
    }

    /// Probabilistic threshold reverse kNN (Corollary 5), semantics of
    /// [`QueryEngine::rknn_threshold`] (sorted by id).
    pub fn rknn_threshold<'b>(
        &'b self,
        q: &'b UncertainObject,
        k: usize,
        tau: f64,
    ) -> Vec<ThresholdResult>
    where
        'a: 'b,
    {
        assert!(k >= 1, "k must be positive");
        assert!((0.0..1.0).contains(&tau), "tau must be in [0, 1)");
        self.parts().rknn_threshold_pipeline(q, k, tau, None)
    }

    /// Top-`m` probable nearest neighbours, semantics of
    /// [`QueryEngine::top_probable_nn`].
    pub fn top_probable_nn<'b>(&'b self, q: &'b UncertainObject, m: usize) -> Vec<ThresholdResult>
    where
        'a: 'b,
    {
        assert!(m >= 1, "m must be positive");
        let parts = self.parts();
        let candidates = parts.knn_candidates(q.mbr(), 1);
        parts.top_probable_nn_pipeline(q, m, candidates, None)
    }

    /// Executes a mixed [`QueryBatch`] through one shared pass. The
    /// shim's sharing is **batch-local**: the decomposition cache and
    /// scratch pool are created here and dropped with the call (the
    /// owned [`crate::Engine::run_batch`] keeps them across calls).
    pub fn run_batch(&self, batch: &QueryBatch) -> Vec<Vec<ThresholdResult>> {
        let ctx = SharedRefineCtx::new(self.engine.config().split_strategy);
        let views: Vec<QueryView<'_>> = batch.queries().iter().map(|spec| spec.view()).collect();
        self.parts().run_views(&views, &ctx)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use udb_geometry::LpNorm;
    use udb_workload::{QuerySet, SyntheticConfig};

    fn synthetic(n: usize) -> (Database, SyntheticConfig) {
        let cfg = SyntheticConfig {
            n,
            max_extent: 0.01,
            ..Default::default()
        };
        (cfg.generate(), cfg)
    }

    /// The shim and the owned engine run the same pipeline: spot-check
    /// bit-identity end to end for all three query types.
    #[test]
    fn shim_matches_owned_engine_exactly() {
        let (db, cfg) = synthetic(250);
        let qs = QuerySet::generate(&db, &cfg, 3, 10, LpNorm::L2, 84);
        let shim = IndexedEngine::new(&db);
        let owned = Engine::new(db.clone());
        for (r, _) in qs.iter() {
            assert_eq!(
                shim.knn_threshold(r, 3, 0.5),
                owned.knn_threshold(r, 3, 0.5)
            );
            assert_eq!(
                shim.rknn_threshold(r, 2, 0.5),
                owned.rknn_threshold(r, 2, 0.5)
            );
            assert_eq!(shim.top_probable_nn(r, 2), owned.top_probable_nn(r, 2));
        }
    }

    #[test]
    fn shim_batch_matches_owned_batch() {
        let (db, cfg) = synthetic(200);
        let qs = QuerySet::generate(&db, &cfg, 3, 10, LpNorm::L2, 85);
        let mut batch = QueryBatch::new();
        batch
            .knn_threshold(qs.references[0].clone(), 3, 0.5)
            .top_probable_nn(qs.references[1].clone(), 2)
            .rknn_threshold(qs.references[2].clone(), 2, 0.5);
        let shim = IndexedEngine::new(&db);
        let owned = Engine::new(db.clone());
        assert_eq!(shim.run_batch(&batch), owned.run_batch(&batch));
    }
}
