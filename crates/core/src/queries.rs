//! Probabilistic similarity queries on top of the domination count (§VI).

use std::sync::Arc;

use udb_genfunc::CountDistributionBounds;
use udb_geometry::Rect;
use udb_object::{Database, ObjectId, UncertainObject};

use crate::config::{IdcaConfig, ObjRef, Predicate};
use crate::parallel::PoolHandle;
use crate::refiner::{DomCountSnapshot, RefineStats, Refiner};

/// High-level query interface over an uncertain database.
#[derive(Debug, Clone)]
pub struct QueryEngine<'a> {
    db: &'a Database,
    cfg: IdcaConfig,
    /// The engine's persistent worker pool (created lazily, shared by
    /// every refiner this engine builds and by the parallel executor).
    pool: PoolHandle,
    /// Two-tier refinement counters, shared by every refiner this engine
    /// builds (clones of the engine keep sharing them).
    stats: Arc<RefineStats>,
}

/// Per-object outcome of a threshold query.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdResult {
    /// The candidate object.
    pub id: ObjectId,
    /// Final lower bound on the predicate probability
    /// `P(DomCount < k)`.
    pub prob_lower: f64,
    /// Final upper bound.
    pub prob_upper: f64,
    /// Refinement iterations spent on this candidate.
    pub iterations: usize,
}

impl ThresholdResult {
    /// Certainly satisfies `P > τ`.
    pub fn is_hit(&self, tau: f64) -> bool {
        self.prob_lower > tau
    }

    /// Certainly fails `P > τ`.
    pub fn is_drop(&self, tau: f64) -> bool {
        self.prob_upper <= tau
    }

    /// Bounds did not separate from `τ` within the iteration budget; the
    /// bounds themselves are the user's confidence statement (§V).
    pub fn is_undecided(&self, tau: f64) -> bool {
        !self.is_hit(tau) && !self.is_drop(tau)
    }
}

/// The probabilistic rank distribution of an object (Corollary 3):
/// `P(Rank = i) = P(DomCount = i − 1)`.
#[derive(Debug, Clone)]
pub struct RankDistribution {
    /// Bounds on the underlying domination count.
    pub counts: CountDistributionBounds,
    /// The refinement snapshot the distribution came from.
    pub snapshot: DomCountSnapshot,
}

impl RankDistribution {
    /// Bounds on `P(Rank = rank)` (1-based).
    pub fn rank_bounds(&self, rank: usize) -> (f64, f64) {
        assert!(rank >= 1, "ranks are 1-based");
        (self.counts.lower(rank - 1), self.counts.upper(rank - 1))
    }

    /// Bounds on `P(Rank <= rank)`.
    pub fn rank_cdf_bounds(&self, rank: usize) -> (f64, f64) {
        self.counts.cdf_bounds(rank)
    }

    /// Bounds on the expected rank (Corollary 6).
    pub fn expected_rank_bounds(&self) -> (f64, f64) {
        self.counts.expected_rank_bounds()
    }
}

/// One entry of an expected-rank ranking (Corollary 6).
#[derive(Debug, Clone)]
pub struct ExpectedRankEntry {
    /// The ranked object.
    pub id: ObjectId,
    /// Lower bound on `E[Rank]`.
    pub lower: f64,
    /// Upper bound on `E[Rank]`.
    pub upper: f64,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine over `db` with the default configuration.
    pub fn new(db: &'a Database) -> Self {
        QueryEngine::with_config(db, IdcaConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(db: &'a Database, cfg: IdcaConfig) -> Self {
        QueryEngine {
            db,
            cfg,
            pool: PoolHandle::default(),
            stats: Arc::new(RefineStats::default()),
        }
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        self.db
    }

    /// The engine configuration.
    pub fn config(&self) -> &IdcaConfig {
        &self.cfg
    }

    /// The engine's shared worker-pool handle (refiners built through
    /// [`QueryEngine::refiner`] and the parallel executor all draw from
    /// this pool).
    pub fn pool_handle(&self) -> &PoolHandle {
        &self.pool
    }

    /// The engine's two-tier refinement counters: how many rounds across
    /// all refiners were decided by the tier-1 prefilter vs. computed by
    /// the exact tier-2 UGF snapshot (see [`IdcaConfig::prefilter`]).
    pub fn refine_stats(&self) -> &Arc<RefineStats> {
        &self.stats
    }

    /// Builds a refiner for an ad-hoc domination-count computation.
    pub fn refiner(
        &self,
        target: ObjRef<'a>,
        reference: ObjRef<'a>,
        predicate: Predicate,
    ) -> Refiner<'a> {
        Refiner::new(self.db, target, reference, self.cfg.clone(), predicate)
            .with_pool(self.pool.clone())
            .with_stats(Arc::clone(&self.stats))
    }

    /// Fully refines the domination count of `target` w.r.t. `reference`.
    pub fn domination_count(&self, target: ObjRef<'a>, reference: ObjRef<'a>) -> DomCountSnapshot {
        self.refiner(target, reference, Predicate::FullPdf).run()
    }

    /// Probabilistic inverse ranking (Corollary 3, ref.\[21\]): the rank
    /// distribution of `target` among the database objects w.r.t.
    /// similarity to `reference`.
    pub fn inverse_ranking(&self, target: ObjRef<'a>, reference: ObjRef<'a>) -> RankDistribution {
        let snapshot = self.domination_count(target, reference);
        RankDistribution {
            counts: snapshot.bounds.clone(),
            snapshot,
        }
    }

    /// Probabilistic threshold kNN query (Corollary 4): all database
    /// objects whose probability of being among the `k` nearest neighbours
    /// of `q` is related to `τ`. Every candidate surviving the spatial
    /// filter is returned with its final probability bounds; use
    /// [`ThresholdResult::is_hit`] / [`ThresholdResult::is_drop`] /
    /// [`ThresholdResult::is_undecided`] to interpret them. Objects pruned
    /// by the filter (probability certainly 0) are omitted.
    pub fn knn_threshold(
        &self,
        q: &'a UncertainObject,
        k: usize,
        tau: f64,
    ) -> Vec<ThresholdResult> {
        assert!(k >= 1, "k must be positive");
        assert!((0.0..1.0).contains(&tau), "tau must be in [0, 1)");
        let candidates = self.knn_candidates(q.mbr(), k);
        let mut out = Vec::with_capacity(candidates.len());
        for id in candidates {
            let mut refiner = self.refiner(
                ObjRef::Db(id),
                ObjRef::External(q),
                Predicate::Threshold { k, tau },
            );
            let snap = refiner.run();
            let (lo, hi) = snap
                .predicate_cdf
                .expect("threshold predicate produces CDF");
            if hi <= 0.0 {
                continue; // certainly not a kNN
            }
            out.push(ThresholdResult {
                id,
                prob_lower: lo,
                prob_upper: hi,
                iterations: snap.iteration,
            });
        }
        out
    }

    /// Probabilistic threshold reverse kNN query (Corollary 5): objects
    /// `B` for which `q` is among `B`'s `k` nearest neighbours with
    /// probability related to `τ` — i.e. `P(DomCount(q, B) < k)` with `B`
    /// as the reference object.
    pub fn rknn_threshold(
        &self,
        q: &'a UncertainObject,
        k: usize,
        tau: f64,
    ) -> Vec<ThresholdResult> {
        assert!(k >= 1, "k must be positive");
        assert!((0.0..1.0).contains(&tau), "tau must be in [0, 1)");
        let mut out = Vec::new();
        for (b_id, b_obj) in self.db.iter() {
            // cheap sound prefilter: if at least k objects certainly
            // dominate q w.r.t. B, the probability is zero
            if self.certain_dominators_of(q, b_obj, b_id, k) >= k {
                continue;
            }
            let mut refiner = self.refiner(
                ObjRef::External(q),
                ObjRef::Db(b_id),
                Predicate::Threshold { k, tau },
            );
            let snap = refiner.run();
            let (lo, hi) = snap
                .predicate_cdf
                .expect("threshold predicate produces CDF");
            if hi <= 0.0 {
                continue;
            }
            out.push(ThresholdResult {
                id: b_id,
                prob_lower: lo,
                prob_upper: hi,
                iterations: snap.iteration,
            });
        }
        out
    }

    /// Ranks all database objects by their expected rank w.r.t. `q`
    /// (Corollary 6), ascending by the bound midpoint.
    pub fn expected_rank_ranking(&self, q: &'a UncertainObject) -> Vec<ExpectedRankEntry> {
        let mut out: Vec<ExpectedRankEntry> = self
            .db
            .ids()
            .map(|id| {
                let snap = self.domination_count(ObjRef::Db(id), ObjRef::External(q));
                let (lower, upper) = snap.bounds.expected_rank_bounds();
                ExpectedRankEntry { id, lower, upper }
            })
            .collect();
        out.sort_by(|a, b| {
            (a.lower + a.upper)
                .partial_cmp(&(b.lower + b.upper))
                .expect("NaN rank")
        });
        out
    }

    /// Top-`m` probable nearest neighbours (the query style of Beskales et
    /// al. ref.\[6\]): the `m` objects with the highest probability of being the
    /// 1NN of `q`, with their probability bounds. Candidates are refined
    /// until the top-`m` set is separated from the rest or the iteration
    /// budget is exhausted; undecided overlaps are resolved by the bound
    /// midpoint (and visible in the returned bounds).
    pub fn top_probable_nn(&self, q: &'a UncertainObject, m: usize) -> Vec<ThresholdResult> {
        assert!(m >= 1, "m must be positive");
        let candidates = self.knn_candidates(q.mbr(), 1);
        // refine every candidate's P(DomCount = 0) = P(count < 1)
        let mut results: Vec<ThresholdResult> = candidates
            .into_iter()
            .map(|id| {
                let mut refiner = self.refiner(
                    ObjRef::Db(id),
                    ObjRef::External(q),
                    Predicate::CountBelow { k: 1 },
                );
                let snap = refiner.run();
                let (lo, hi) = snap.predicate_cdf.expect("predicate produces CDF");
                ThresholdResult {
                    id,
                    prob_lower: lo,
                    prob_upper: hi,
                    iterations: snap.iteration,
                }
            })
            .filter(|r| r.prob_upper > 0.0)
            .collect();
        results.sort_by(|a, b| {
            (b.prob_lower + b.prob_upper)
                .partial_cmp(&(a.prob_lower + a.prob_upper))
                .expect("NaN probability")
                // deterministic tie-break, matching `refine_top_m`
                .then_with(|| a.id.cmp(&b.id))
        });
        results.truncate(m);
        results
    }

    /// The *expected-distance* ranking baseline (Ljosa & Singh, ref.\[22\]):
    /// objects ordered by `E[dist(o, q)]` between expected positions. The
    /// paper cites refs.\[19\]/\[25\] to argue this "does not adhere to the
    /// possible world semantics and may produce very inaccurate results";
    /// it is provided so the inaccuracy can be demonstrated against
    /// [`QueryEngine::expected_rank_ranking`].
    pub fn expected_distance_ranking(&self, q: &UncertainObject) -> Vec<(ObjectId, f64)> {
        let q_mean = q.mean();
        let mut out: Vec<(ObjectId, f64)> = self
            .db
            .iter()
            .map(|(id, o)| (id, self.cfg.norm.dist(&o.mean(), &q_mean)))
            .collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN distance"));
        out
    }

    /// Probabilistic similarity ranking (§VI, following refs.\[4\], \[14\], \[19\],
    /// \[25\]): the rank distribution of *every* database object w.r.t.
    /// `q`, in id order. The full answer to a probabilistic ranking query;
    /// `O(N)` refinements, so prefer the threshold queries when a
    /// predicate is available.
    pub fn ranking_distributions(&self, q: &'a UncertainObject) -> Vec<RankDistribution> {
        self.db
            .ids()
            .map(|id| self.inverse_ranking(ObjRef::Db(id), ObjRef::External(q)))
            .collect()
    }

    /// Spatial kNN candidate filter (scan-based): let `d_k` be the `k`-th
    /// smallest MaxDist of any *certainly existing* object to `q`; every
    /// object whose MinDist exceeds `d_k` is dominated by at least `k`
    /// objects in every world and can be pruned (probability exactly 0).
    /// Existentially uncertain objects must not contribute to `d_k` —
    /// they are absent in some worlds and therefore guarantee nothing.
    /// The reference implementation the index-driven
    /// [`crate::Engine::knn_candidates`] is checked against.
    pub fn knn_candidates(&self, q: &Rect, k: usize) -> Vec<ObjectId> {
        let n = self.db.len();
        if n == 0 {
            return Vec::new();
        }
        let mut max_dists: Vec<f64> = self
            .db
            .iter()
            .filter(|(_, o)| o.existence() >= 1.0)
            .map(|(_, o)| o.mbr().max_dist_rect(q, self.cfg.norm))
            .collect();
        max_dists.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
        // fewer than k certain objects: nothing can be pruned
        let dk = if max_dists.len() >= k {
            max_dists[k - 1]
        } else {
            f64::INFINITY
        };
        self.db
            .iter()
            .filter(|(_, o)| o.mbr().min_dist_rect(q, self.cfg.norm) <= dk)
            .map(|(id, _)| id)
            .collect()
    }

    /// Counts objects (other than `b`) that certainly dominate `q` w.r.t.
    /// reference `b`, stopping at `cap`. Only certainly existing objects
    /// qualify: an object that may be absent dominates in no world where
    /// it is missing.
    fn certain_dominators_of(
        &self,
        q: &UncertainObject,
        b_obj: &UncertainObject,
        b_id: ObjectId,
        cap: usize,
    ) -> usize {
        let mut count = 0;
        for (id, a) in self.db.iter() {
            if id == b_id || a.existence() < 1.0 {
                continue;
            }
            if self
                .cfg
                .criterion
                .dominates(a.mbr(), q.mbr(), b_obj.mbr(), self.cfg.norm)
            {
                count += 1;
                if count >= cap {
                    break;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_geometry::{Interval, LpNorm, Point};
    use udb_pdf::{MixturePdf, Pdf};

    fn certain(x: f64, y: f64) -> UncertainObject {
        UncertainObject::certain(Point::from([x, y]))
    }

    fn uniform_box(cx: f64, cy: f64, half: f64) -> UncertainObject {
        UncertainObject::new(Pdf::uniform(Rect::new(vec![
            Interval::new(cx - half, cx + half),
            Interval::new(cy - half, cy + half),
        ])))
    }

    /// A 1-D uniform segment embedded in 2-D (degenerate y), so distances
    /// reduce to |x| and hand-computed ground truths apply.
    fn uniform_seg(cx: f64, half: f64) -> UncertainObject {
        UncertainObject::new(Pdf::uniform(Rect::new(vec![
            Interval::new(cx - half, cx + half),
            Interval::point(0.0),
        ])))
    }

    /// Certain points on a line at x = 1..=5.
    fn line_db() -> Database {
        Database::from_objects((1..=5).map(|i| certain(i as f64, 0.0)).collect())
    }

    #[test]
    fn knn_threshold_on_certain_data_is_exact_knn() {
        let db = line_db();
        let engine = QueryEngine::new(&db);
        let q = certain(0.0, 0.0);
        let res = engine.knn_threshold(&q, 2, 0.5);
        let hits: Vec<ObjectId> = res.iter().filter(|r| r.is_hit(0.5)).map(|r| r.id).collect();
        assert_eq!(hits, vec![ObjectId(0), ObjectId(1)]);
        // everything else was pruned or dropped
        for r in &res {
            if !hits.contains(&r.id) {
                assert!(r.is_drop(0.5), "{r:?}");
            }
        }
    }

    #[test]
    fn knn_threshold_uncertain_boundary_object() {
        // objects at x = 1 (certain) and an uncertain object spanning
        // [1.5, 3.5]; query at 0; the certain x=2.5 object competes with
        // the uncertain one for the 2nd spot
        let db = Database::from_objects(vec![
            certain(1.0, 0.0),
            uniform_box(2.5, 0.0, 1.0),
            certain(2.5, 0.0),
        ]);
        let engine = QueryEngine::new(&db);
        let q = certain(0.0, 0.0);
        let res = engine.knn_threshold(&q, 1, 0.5);
        // only the x=1 object is certainly the 1NN
        let hit_ids: Vec<ObjectId> = res.iter().filter(|r| r.is_hit(0.5)).map(|r| r.id).collect();
        assert_eq!(hit_ids, vec![ObjectId(0)]);
    }

    #[test]
    fn knn_probabilities_sum_sensibly() {
        // over all objects, expected number of kNN members equals k when
        // probabilities are exact; bounds must bracket that
        let db = Database::from_objects(vec![
            uniform_box(1.0, 0.0, 0.4),
            uniform_box(1.5, 0.0, 0.4),
            uniform_box(2.0, 0.0, 0.4),
            uniform_box(3.0, 0.0, 0.4),
        ]);
        let engine = QueryEngine::with_config(
            &db,
            IdcaConfig {
                max_iterations: 6,
                uncertainty_target: 0.0,
                ..Default::default()
            },
        );
        let q = certain(0.0, 0.0);
        let k = 2;
        let res = engine.knn_threshold(&q, k, 0.0);
        let sum_lower: f64 = res.iter().map(|r| r.prob_lower).sum();
        let sum_upper: f64 = res.iter().map(|r| r.prob_upper).sum();
        assert!(sum_lower <= k as f64 + 1e-9, "sum lower {sum_lower}");
        assert!(sum_upper >= k as f64 - 1e-9, "sum upper {sum_upper}");
    }

    #[test]
    fn rknn_threshold_on_certain_data() {
        // db: points at 1..=5; q at 0. B has q among its 1NN iff no other
        // object is closer to B than q: true only for B at x=1 (dist 1;
        // the nearest other object is at dist 1 — tie, not strictly
        // closer... with x=2: q at dist 2 vs object at dist 1 -> no).
        let db = line_db();
        let engine = QueryEngine::new(&db);
        let q = certain(0.0, 0.0);
        let res = engine.rknn_threshold(&q, 1, 0.5);
        let hits: Vec<ObjectId> = res.iter().filter(|r| r.is_hit(0.5)).map(|r| r.id).collect();
        // B = x1: others at dist >= 1 are not strictly closer than q
        // (dist 1), so DomCount(q, B) = 0 < 1: hit
        assert_eq!(hits, vec![ObjectId(0)]);
    }

    #[test]
    fn inverse_ranking_certain_case() {
        let db = line_db();
        let engine = QueryEngine::new(&db);
        let q = certain(0.0, 0.0);
        // target x=3 is dominated by exactly 2 objects: rank 3
        let rd = engine.inverse_ranking(ObjRef::Db(ObjectId(2)), ObjRef::External(&q));
        let (lo, hi) = rd.rank_bounds(3);
        assert!((lo - 1.0).abs() < 1e-12);
        assert!((hi - 1.0).abs() < 1e-12);
        assert_eq!(rd.rank_bounds(1), (0.0, 0.0));
        let (elo, ehi) = rd.expected_rank_bounds();
        assert!((elo - 3.0).abs() < 1e-9);
        assert!((ehi - 3.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_ranking_uncertain_target() {
        // target uniform on [1.5, 3.5] among certain points at 1, 2, 3:
        // rank depends on where the target materializes
        let db = Database::from_objects(vec![
            certain(1.0, 0.0),
            certain(2.0, 0.0),
            certain(3.0, 0.0),
            uniform_seg(2.5, 1.0),
        ]);
        let engine = QueryEngine::with_config(
            &db,
            IdcaConfig {
                max_iterations: 8,
                uncertainty_target: 0.01,
                ..Default::default()
            },
        );
        let q = certain(0.0, 0.0);
        let rd = engine.inverse_ranking(ObjRef::Db(ObjectId(3)), ObjRef::External(&q));
        // target in (1.5, 2): rank 2 with prob 1/4; in (2, 3): rank 3 with
        // prob 1/2; in (3, 3.5): rank 4 with prob 1/4
        let (lo2, hi2) = rd.rank_bounds(2);
        let (lo3, hi3) = rd.rank_bounds(3);
        let (lo4, hi4) = rd.rank_bounds(4);
        assert!(lo2 <= 0.25 + 1e-9 && hi2 >= 0.25 - 1e-9, "[{lo2},{hi2}]");
        assert!(lo3 <= 0.50 + 1e-9 && hi3 >= 0.50 - 1e-9, "[{lo3},{hi3}]");
        assert!(lo4 <= 0.25 + 1e-9 && hi4 >= 0.25 - 1e-9, "[{lo4},{hi4}]");
        // converged reasonably tight
        assert!(hi3 - lo3 < 0.2, "width {}", hi3 - lo3);
    }

    #[test]
    fn expected_rank_ranking_orders_certain_points() {
        let db = line_db();
        let engine = QueryEngine::new(&db);
        let q = certain(0.0, 0.0);
        let ranking = engine.expected_rank_ranking(&q);
        let ids: Vec<ObjectId> = ranking.iter().map(|e| e.id).collect();
        assert_eq!(
            ids,
            vec![
                ObjectId(0),
                ObjectId(1),
                ObjectId(2),
                ObjectId(3),
                ObjectId(4)
            ]
        );
        for (i, e) in ranking.iter().enumerate() {
            assert!((e.lower - (i + 1) as f64).abs() < 1e-9);
            assert!((e.upper - (i + 1) as f64).abs() < 1e-9);
        }
    }

    /// An existentially uncertain object must not tighten the kNN
    /// pruning bound: in the worlds where it is absent, a farther
    /// certain object can still be the nearest neighbour.
    #[test]
    fn existential_objects_do_not_prune_knn_candidates() {
        let maybe = UncertainObject::with_existence(
            Pdf::uniform(Rect::from_point(&Point::from([0.1, 0.0]))),
            0.5,
        );
        let db = Database::from_objects(vec![maybe, certain(10.0, 0.0)]);
        let engine = QueryEngine::new(&db);
        let q = certain(0.0, 0.0);
        let res = engine.knn_threshold(&q, 1, 0.0);
        let far = res
            .iter()
            .find(|r| r.id == ObjectId(1))
            .expect("far certain object has 1NN probability 0.5 and must not be pruned");
        assert!((far.prob_lower - 0.5).abs() < 1e-9, "{far:?}");
        assert!((far.prob_upper - 0.5).abs() < 1e-9, "{far:?}");
    }

    /// The RkNN certain-dominator prefilter must ignore objects that may
    /// not exist: they dominate in no world where they are absent.
    #[test]
    fn existential_objects_do_not_prune_rknn_results() {
        let maybe = UncertainObject::with_existence(
            Pdf::uniform(Rect::from_point(&Point::from([0.1, 0.0]))),
            0.5,
        );
        let db = Database::from_objects(vec![maybe, certain(0.0, 0.0)]);
        let engine = QueryEngine::new(&db);
        let q = certain(5.0, 0.0);
        // in the worlds where the existential object is absent (p = 0.5),
        // q is B's nearest neighbour
        let res = engine.rknn_threshold(&q, 1, 0.0);
        let b = res
            .iter()
            .find(|r| r.id == ObjectId(1))
            .expect("B must survive the prefilter");
        assert!((b.prob_lower - 0.5).abs() < 1e-9, "{b:?}");
        assert!((b.prob_upper - 0.5).abs() < 1e-9, "{b:?}");
    }

    #[test]
    fn knn_candidates_prune_far_objects() {
        let db = line_db();
        let engine = QueryEngine::new(&db);
        let q = certain(0.0, 0.0);
        // k = 1: d1 = MaxDist to nearest object = 1; only x=1 qualifies
        let res = engine.knn_threshold(&q, 1, 0.1);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].id, ObjectId(0));
    }

    #[test]
    fn top_probable_nn_orders_by_probability() {
        // o0 is the 1NN in most worlds; o1 competes weakly
        let db = Database::from_objects(vec![
            uniform_seg(1.0, 0.4),
            uniform_seg(1.6, 0.4),
            certain(5.0, 0.0),
        ]);
        let engine = QueryEngine::with_config(
            &db,
            IdcaConfig {
                max_iterations: 7,
                uncertainty_target: 0.0,
                ..Default::default()
            },
        );
        let q = certain(0.0, 0.0);
        let top = engine.top_probable_nn(&q, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].id, ObjectId(0));
        assert_eq!(top[1].id, ObjectId(1));
        assert!(top[0].prob_lower > top[1].prob_upper, "{top:?}");
        // probabilities of being the 1NN sum to <= 1
        let total_upper: f64 = top.iter().map(|r| r.prob_upper).sum();
        let total_lower: f64 = top.iter().map(|r| r.prob_lower).sum();
        assert!(total_lower <= 1.0 + 1e-9);
        assert!(total_upper >= 1.0 - 1e-9, "o2 can never be 1NN");
    }

    #[test]
    fn expected_distance_baseline_can_disagree_with_expected_rank() {
        // the paper's criticism of expected distances: a bimodal object
        // whose *mean* is close to q but which is almost never the closest
        // in any actual world
        let bimodal = UncertainObject::new(
            MixturePdf::new(vec![
                (
                    1.0,
                    Pdf::uniform(Rect::new(vec![
                        Interval::new(-10.2, -9.8),
                        Interval::point(0.0),
                    ])),
                ),
                (
                    1.0,
                    Pdf::uniform(Rect::new(vec![
                        Interval::new(9.8, 10.2),
                        Interval::point(0.0),
                    ])),
                ),
            ])
            .into(),
        );
        // a certain object at distance 3
        let steady = certain(3.0, 0.0);
        let db = Database::from_objects(vec![bimodal, steady]);
        let q = certain(0.0, 0.0);
        let engine = QueryEngine::with_config(
            &db,
            IdcaConfig {
                max_iterations: 8,
                uncertainty_target: 0.0,
                ..Default::default()
            },
        );
        // expected-distance baseline ranks the bimodal object first (its
        // mean sits at x = 0, distance 0)
        let by_expected_dist = engine.expected_distance_ranking(&q);
        assert_eq!(by_expected_dist[0].0, ObjectId(0));
        // possible-world semantics rank the steady object first: in every
        // world the bimodal object sits at distance ~10 > 3
        let by_expected_rank = engine.expected_rank_ranking(&q);
        assert_eq!(by_expected_rank[0].id, ObjectId(1));
    }

    #[test]
    fn ranking_distributions_covers_all_objects() {
        let db = line_db();
        let engine = QueryEngine::new(&db);
        let q = certain(0.0, 0.0);
        let all = engine.ranking_distributions(&q);
        assert_eq!(all.len(), db.len());
        // certain points: object i has rank i+1 with certainty
        for (i, rd) in all.iter().enumerate() {
            let (lo, hi) = rd.rank_bounds(i + 1);
            assert!((lo - 1.0).abs() < 1e-9, "object {i}");
            assert!((hi - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn threshold_result_classification() {
        let r = ThresholdResult {
            id: ObjectId(0),
            prob_lower: 0.6,
            prob_upper: 0.9,
            iterations: 3,
        };
        assert!(r.is_hit(0.5));
        assert!(!r.is_drop(0.5));
        assert!(!r.is_undecided(0.5));
        assert!(r.is_undecided(0.7));
        assert!(r.is_drop(0.95));
    }

    #[test]
    fn engine_accessors() {
        let db = line_db();
        let engine = QueryEngine::new(&db);
        assert_eq!(engine.db().len(), 5);
        assert_eq!(engine.config().norm, LpNorm::L2);
    }
}
